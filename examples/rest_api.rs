//! The RESTful control API (§2.2.4) end to end over real HTTP: start a
//! workload, throttle it, switch the mixture to read-only, and read the
//! instantaneous feedback — from a plain TCP client.
//!
//! ```sh
//! cargo run --release --example rest_api
//! ```

use std::sync::Arc;

use benchpress::api::{http::http_request, ApiServer};
use benchpress::core::{Phase, PhaseScript, Rate, RunConfig};
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::json::Json;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

fn main() {
    // A live smallbank run.
    let db = Database::new(Personality::test());
    let workload = by_name("smallbank").unwrap();
    let mut conn = Connection::open(&db);
    workload.setup(&mut conn, 0.5, &mut Rng::new(1)).expect("load");
    let cfg = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), 20.0)]),
        collect_trace: false,
        ..Default::default()
    };
    let handle = benchpress::core::start(db, workload, wall_clock(), cfg);

    // Expose it over HTTP.
    let api = Arc::new(ApiServer::new());
    api.register("smallbank", handle.controller.clone());
    let server = api.serve_http("127.0.0.1:0").expect("bind");
    let addr = server.addr();
    println!("control API listening on http://{addr}");

    std::thread::sleep(std::time::Duration::from_millis(1500));

    // GET /workloads/smallbank — instantaneous feedback.
    let (status, body) = http_request(addr, "GET", "/workloads/smallbank", None).unwrap();
    println!("GET /workloads/smallbank -> {status}");
    println!(
        "  throughput: {:.0} tx/s (target 300)",
        body.get("status").and_then(|s| s.get("throughput")).and_then(Json::as_f64).unwrap_or(0.0)
    );

    // POST rate change.
    let (status, body) = http_request(
        addr,
        "POST",
        "/workloads/smallbank/rate",
        Some(&Json::obj().set("tps", 800.0)),
    )
    .unwrap();
    println!("POST rate 800 -> {status} (rate now {})", body.get("rate").unwrap());

    // POST mixture preset.
    let (status, body) = http_request(
        addr,
        "POST",
        "/workloads/smallbank/mixture",
        Some(&Json::obj().set("preset", "read_only")),
    )
    .unwrap();
    println!(
        "POST mixture read_only -> {status} (weights {})",
        body.get("mixture").unwrap()
    );

    std::thread::sleep(std::time::Duration::from_millis(2000));
    let (_, body) = http_request(addr, "GET", "/workloads/smallbank", None).unwrap();
    println!(
        "after changes: throughput {:.0} tx/s",
        body.get("status").and_then(|s| s.get("throughput")).and_then(Json::as_f64).unwrap_or(0.0)
    );

    // Stop.
    let (status, _) = http_request(addr, "POST", "/workloads/smallbank/stop", Some(&Json::obj())).unwrap();
    println!("POST stop -> {status}");
    handle.join();
}
