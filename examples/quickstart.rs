//! Quickstart: load a benchmark, run it throttled for a few seconds, change
//! the rate and mixture at runtime, and print the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use benchpress::core::{Phase, PhaseScript, Rate, RunConfig};
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

fn main() {
    // 1. Bring up the system under test: the embedded engine with the
    //    MySQL-like personality.
    let db = Database::new(Personality::mysql_like());

    // 2. Pick a benchmark from Table 1 and load it.
    let workload = by_name("voter").expect("voter is bundled");
    let mut conn = Connection::open(&db);
    let summary = workload
        .setup(&mut conn, 1.0, &mut Rng::new(42))
        .expect("load");
    println!(
        "loaded {}: {} rows across {} tables",
        workload.name(),
        summary.rows,
        summary.tables
    );

    // 3. Run: 2s at 200 tps, then 2s at 400 tps (a predefined phase script).
    let script = PhaseScript::new(vec![
        Phase::new(Rate::Limited(200.0), 2.0),
        Phase::new(Rate::Limited(400.0), 2.0),
    ]);
    let cfg = RunConfig { terminals: 4, script, ..Default::default() };
    let handle = benchpress::core::start(db, workload, wall_clock(), cfg);

    // 4. While it runs, poke the controller like the REST API would.
    let controller = handle.controller.clone();
    std::thread::sleep(std::time::Duration::from_millis(1000));
    let status = controller.status();
    println!(
        "t={:.1}s: throughput {:.0} tx/s, committed {}",
        status.elapsed_s, status.throughput, status.committed
    );

    // 5. Wait for the script to finish and print the summary.
    let controller = handle.join();
    println!("\nper-transaction-type summary:");
    for t in controller.stats().per_type_summary() {
        println!(
            "  {:<10} count={:<6} mean={:>8.0}µs p95={:>8}µs committed={} aborted={}",
            t.name, t.count, t.mean_us, t.p95_us, t.committed, t.user_aborted
        );
    }
    let series = controller.stats().throughput_series();
    println!("\nper-second delivered throughput: {:?}", series.iter().map(|v| *v as i64).collect::<Vec<_>>());
    let (p50, p95, max) = controller.stats().queue_delay();
    println!("queue delay: p50={p50}µs p95={p95}µs max={max}µs");
    let _ = Arc::strong_count(controller.database());
}
