//! BenchPress game demo: the autopilot plays the "steps" course against two
//! different DBMS stages on the deterministic simulator, rendering ASCII
//! frames (Fig. 2c in a terminal).
//!
//! ```sh
//! cargo run --release --example game_demo
//! ```

use benchpress::core::CapacityModel;
use benchpress::game::{
    chase_center_policy, render, Course, Game, GameSession, PhysicsConfig, SimBackend,
};
use benchpress::workloads::by_name;

fn play(model: CapacityModel) {
    println!("================ stage: {} ================", model.name);
    let course = Course::demo_set(1_000.0).remove(0); // steps
    let game = Game::new(
        "ycsb",
        model.name,
        course,
        PhysicsConfig { jump_tps: 60.0, gravity_tps_per_s: 40.0, max_tps: 1_500.0 },
    );
    let types = by_name("ycsb").unwrap().transaction_types();
    let backend = SimBackend::new(model, types, 42);
    let mut session = GameSession::new(game, backend);

    let mut frame_count = 0;
    while !session.game.is_over() && frame_count < 600 {
        let input = chase_center_policy(&session.game);
        session.tick(100_000, input);
        frame_count += 1;
        // Print a frame every simulated 5 seconds.
        if frame_count % 50 == 0 {
            println!("{}", render(&session.game, 64, 16, 12.0));
        }
    }
    println!("{}", render(&session.game, 64, 16, 12.0));
    println!();
}

fn main() {
    // Oracle: stable stage, the autopilot clears the course.
    play(CapacityModel::oracle_like());
    // Derby: oscillating throughput — expect a crash (and a DB reset).
    play(CapacityModel::derby_like());
}
