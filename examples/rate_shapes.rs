//! The §4.1.2 execution shapes on the deterministic simulator: steps,
//! sinusoid, peak and tunnel, printed as target-vs-delivered sparklines for
//! each DBMS stage.
//!
//! ```sh
//! cargo run --release --example rate_shapes
//! ```

use benchpress::core::{simulate_script, CapacityModel, Phase, PhaseScript, Rate, SimDbms};
use benchpress::workloads::by_name;

fn sparkline(values: &[f64], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let idx = ((v / max).clamp(0.0, 1.0) * 7.0).round() as usize;
            BARS[idx]
        })
        .collect()
}

fn shape_script(shape: &str, cap: f64, seconds: f64) -> PhaseScript {
    match shape {
        "steps" => PhaseScript::new(
            (1..=5)
                .map(|i| Phase::new(Rate::Limited(cap * 0.25 * i as f64), seconds / 5.0))
                .collect(),
        ),
        "sinusoid" => PhaseScript::new(
            (0..24)
                .map(|i| {
                    let level =
                        cap * (0.5 + 0.35 * (i as f64 / 24.0 * std::f64::consts::TAU * 2.0).sin());
                    Phase::new(Rate::Limited(level), seconds / 24.0)
                })
                .collect(),
        ),
        "peak" => PhaseScript::new(vec![
            Phase::new(Rate::Limited(cap * 0.3), seconds * 0.4),
            Phase::new(Rate::Limited(cap * 0.95), seconds * 0.2),
            Phase::new(Rate::Limited(cap * 0.3), seconds * 0.4),
        ]),
        "tunnel" => PhaseScript::constant(Rate::Limited(cap * 0.6), seconds),
        _ => unreachable!(),
    }
}

fn main() {
    let types = by_name("ycsb").unwrap().transaction_types();
    for shape in ["steps", "sinusoid", "peak", "tunnel"] {
        println!("== {shape} ==");
        for model in CapacityModel::all() {
            let cap = model.capacity(0.4, 1.0);
            let script = shape_script(shape, cap, 60.0);
            let mut dbms = SimDbms::new(model.clone(), 42);
            let run = simulate_script(&mut dbms, &script, &types, 1e5, 0.25);
            let max = cap * 1.2;
            // Downsample to ~60 chars.
            let step = (run.samples.len() / 60).max(1);
            let target: Vec<f64> = run.requested().iter().step_by(step).cloned().collect();
            let delivered: Vec<f64> = run.delivered().iter().step_by(step).cloned().collect();
            if model.name == "mysql" {
                println!("  target    {}", sparkline(&target, max));
            }
            println!("  {:<9} {}", model.name, sparkline(&delivered, max));
        }
        println!();
    }
    println!("(each stage is normalized to its own capacity; jitter is what sinks derby)");
}
