//! Multi-tenancy (§2.2.3): two benchmarks share one database instance; a
//! second tenant added on the fly degrades the first one's throughput.
//!
//! ```sh
//! cargo run --release --example multitenant
//! ```

use benchpress::core::{Phase, PhaseScript, Rate, RunConfig, Testbed};
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::workloads::by_name;

fn main() {
    let db = Database::new(Personality::mysql_like());
    let mut bed = Testbed::new(db, wall_clock());

    // Tenant 1: YCSB, open loop for 4 seconds.
    let ycsb = by_name("ycsb").unwrap();
    bed.setup_workload(ycsb.as_ref(), 0.5, 1).expect("load ycsb");
    let cfg = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(Rate::Unlimited, 4.0)]),
        collect_trace: false,
        ..Default::default()
    };
    bed.start_tenant("ycsb", ycsb, cfg.clone());

    // Let it run alone for 2 seconds, then add a noisy neighbor on the fly.
    std::thread::sleep(std::time::Duration::from_millis(2000));
    let solo = bed.tenants()[0].handle.controller.status().throughput;
    println!("ycsb alone:              {solo:>8.0} tx/s");

    let neighbor = by_name("smallbank").unwrap();
    bed.setup_workload(neighbor.as_ref(), 0.5, 2).expect("load smallbank");
    let cfg2 = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(Rate::Unlimited, 2.0)]),
        collect_trace: false,
        ..Default::default()
    };
    bed.start_tenant("smallbank", neighbor, cfg2);

    std::thread::sleep(std::time::Duration::from_millis(1500));
    let contended = bed.tenants()[0].handle.controller.status().throughput;
    let neighbor_tput = bed.tenants()[1].handle.controller.status().throughput;
    println!("ycsb with neighbor:      {contended:>8.0} tx/s");
    println!("smallbank (the neighbor):{neighbor_tput:>8.0} tx/s");
    println!(
        "interference:            {:>7.0}% slowdown",
        (1.0 - contended / solo.max(1.0)) * 100.0
    );

    for (name, controller) in bed.stop_all() {
        println!(
            "tenant {name}: {} committed, {} failed",
            controller.status().committed,
            controller.status().failed
        );
    }
}
