//! Crash recovery end to end: for every chaos crashpoint, a run that dies
//! mid-commit and recovers must land byte-for-byte on the committed prefix
//! of an identical run that never crashed — `BeforeAppend` and
//! `AfterAppendBeforeFsync` lose the dying transaction, `AfterFsync` keeps
//! it (durable despite the client-visible error). A mid-run checkpoint
//! bounds replay to the redo tail, and a recovered engine continues the
//! workload deterministically.

use std::sync::Arc;

use benchpress::chaos::{FaultKind, FaultPlan, FaultWindow};
use benchpress::storage::{
    Column, CrashPoint, DataType, Database, Personality, StorageError, TableSchema, Value,
};

/// The transaction index at which the crash runs die. Must be a committing
/// index under the abort rule below (11 % 5 != 4).
const CRASH_AT: u64 = 11;

fn fresh_db() -> Arc<Database> {
    let db = Database::new(Personality::test());
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![Column::new("id", DataType::Int), Column::new("balance", DataType::Int)],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

/// Apply transaction `i` of the fixed sequence: insert one row, sometimes
/// update or delete an earlier one, and abort every fifth transaction. The
/// ops are a pure function of `i`, so any two runs that commit the same
/// index set hold identical state.
fn apply_txn(db: &Arc<Database>, i: u64) -> Result<(), StorageError> {
    let t = db.table("accounts").unwrap();
    let mut s = db.session();
    s.begin()?;
    s.insert(&t, vec![Value::Int(i as i64 * 10), Value::Int(i as i64)])?;
    if i.is_multiple_of(3) && i > 0 {
        let key = [Value::Int((i as i64 - 1) * 10)];
        if let Some((rid, row)) = s.read_pk(&t, &key, true)? {
            let bumped = match row[1] {
                Value::Int(b) => b + 100,
                _ => unreachable!(),
            };
            s.update(&t, rid, vec![row[0].clone(), Value::Int(bumped)])?;
        }
    }
    if i % 7 == 3 && i >= 2 {
        let key = [Value::Int((i as i64 - 2) * 10)];
        if let Some((rid, _)) = s.read_pk(&t, &key, true)? {
            s.delete(&t, rid)?;
        }
    }
    if i % 5 == 4 {
        s.rollback()
    } else {
        s.commit()
    }
}

/// A reference run that commits transactions `0..n` and never crashes.
fn reference_digest(n: u64) -> Vec<u8> {
    let db = fresh_db();
    for i in 0..n {
        apply_txn(&db, i).unwrap();
    }
    db.state_digest()
}

fn arm_crash(db: &Arc<Database>, cp: CrashPoint) {
    db.chaos().arm(FaultPlan::new("crash", 1).with_window(FaultWindow::always(
        FaultKind::ServerCrash,
        1.0,
        cp.index(),
    )));
}

#[test]
fn crashpoint_matrix_recovers_to_committed_prefix() {
    for cp in CrashPoint::ALL {
        // AfterFsync crashes after the redo record is durable: the dying
        // transaction survives recovery even though its client saw an error.
        let survives = cp == CrashPoint::AfterFsync;
        let want = reference_digest(if survives { CRASH_AT + 1 } else { CRASH_AT });

        let db = fresh_db();
        for i in 0..CRASH_AT {
            apply_txn(&db, i).unwrap();
        }
        arm_crash(&db, cp);
        assert_eq!(apply_txn(&db, CRASH_AT), Err(StorageError::Crashed), "{}", cp.name());
        db.chaos().disarm();
        assert!(db.is_crashed());

        // Every operation fast-fails with the retryable error while down.
        assert_eq!(db.session().begin(), Err(StorageError::Crashed));

        let report = db.recover();
        assert!(!db.is_crashed());
        assert_eq!(db.state_digest(), want, "crashpoint {}", cp.name());
        if cp == CrashPoint::AfterAppendBeforeFsync {
            assert_eq!(report.torn_truncated, 1, "half-written record must be truncated");
        } else {
            assert_eq!(report.torn_truncated, 0, "{}", cp.name());
        }

        let status = db.recovery_status();
        assert_eq!(status.crashes, 1);
        assert_eq!(status.recoveries, 1);
        assert_eq!(status.last_crashpoint, Some(cp));

        let kinds: Vec<_> = db.journal().all().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"server_crash"), "{kinds:?}");
        assert!(kinds.contains(&"recovery_begin"), "{kinds:?}");
        assert!(kinds.contains(&"recovery_complete"), "{kinds:?}");
    }
}

#[test]
fn mid_run_checkpoint_bounds_replay_and_preserves_state() {
    let want = reference_digest(CRASH_AT);

    // Run A: no checkpoint — recovery replays the whole log.
    let a = fresh_db();
    for i in 0..CRASH_AT {
        apply_txn(&a, i).unwrap();
    }
    arm_crash(&a, CrashPoint::BeforeAppend);
    assert_eq!(apply_txn(&a, CRASH_AT), Err(StorageError::Crashed));
    let report_a = a.recover();
    assert_eq!(a.state_digest(), want);

    // Run B: checkpoint halfway — recovery replays only the tail.
    let b = fresh_db();
    for i in 0..CRASH_AT {
        apply_txn(&b, i).unwrap();
        if i == CRASH_AT / 2 {
            b.checkpoint().unwrap();
        }
    }
    arm_crash(&b, CrashPoint::BeforeAppend);
    assert_eq!(apply_txn(&b, CRASH_AT), Err(StorageError::Crashed));
    let report_b = b.recover();
    assert_eq!(b.state_digest(), want, "checkpointed run recovers to the same state");
    assert!(
        report_b.replayed_records < report_a.replayed_records,
        "checkpoint must shorten replay: {} vs {}",
        report_b.replayed_records,
        report_a.replayed_records,
    );
    assert!(report_b.checkpoint_lsn > 0);
    assert!(b.recovery_status().checkpoints >= 1);
}

#[test]
fn recovered_engine_continues_the_workload_deterministically() {
    const TOTAL: u64 = CRASH_AT + 6;
    let want = reference_digest(TOTAL);

    let db = fresh_db();
    for i in 0..CRASH_AT {
        apply_txn(&db, i).unwrap();
    }
    // BeforeAppend loses the dying transaction entirely, so the client-side
    // retry (here: just re-applying the same index) must reproduce it.
    arm_crash(&db, CrashPoint::BeforeAppend);
    assert_eq!(apply_txn(&db, CRASH_AT), Err(StorageError::Crashed));
    db.chaos().disarm();
    db.recover();
    for i in CRASH_AT..TOTAL {
        apply_txn(&db, i).unwrap();
    }
    assert_eq!(db.state_digest(), want, "post-recovery run diverged from the uncrashed run");
}
