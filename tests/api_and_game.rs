//! E9 + E7 live: the control API drives a running workload, and the game
//! plays against the *real* testbed through the API (not the simulator).

use std::sync::Arc;

use benchpress::api::{ApiServer, Launcher, Request};
use benchpress::core::{Controller, Phase, PhaseScript, Rate, RunConfig};
use benchpress::game::{ApiBackend, Course, Game, GameSession, Input, PhysicsConfig};
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::json::Json;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

fn start_voter(seconds: f64, rate: Rate) -> (Arc<Database>, benchpress::core::RunHandle) {
    let db = Database::new(Personality::test());
    let workload = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    workload.setup(&mut conn, 0.3, &mut Rng::new(3)).unwrap();
    let cfg = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(rate, seconds)]),
        collect_trace: false,
        ..Default::default()
    };
    let handle = benchpress::core::start(db.clone(), workload, wall_clock(), cfg);
    (db, handle)
}

#[test]
fn api_controls_live_run() {
    let (_db, handle) = start_voter(15.0, Rate::Limited(100.0));
    let api = Arc::new(ApiServer::new());
    api.register("voter", handle.controller.clone());

    std::thread::sleep(std::time::Duration::from_millis(1200));
    // Feedback: throughput near 100.
    let resp = api.handle(&Request::get("/workloads/voter"));
    assert!(resp.is_ok());
    let tput = resp
        .body
        .get("status")
        .and_then(|s| s.get("throughput"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!((60.0..=115.0).contains(&tput), "throughput {tput}");

    // Throttle up via the API.
    let resp = api.handle(&Request::post(
        "/workloads/voter/rate",
        Json::obj().set("tps", 400.0),
    ));
    assert!(resp.is_ok());
    std::thread::sleep(std::time::Duration::from_millis(2500));
    // The last complete second already runs at the new rate (the manager
    // generates arrivals per second, so the change lands within ~1s).
    let tput = handle.controller.stats().status(1).throughput;
    assert!(tput > 250.0, "rate change had no effect: {tput}");

    // Pause via the API blocks execution.
    api.handle(&Request::post("/workloads/voter/pause", Json::obj()));
    std::thread::sleep(std::time::Duration::from_millis(300));
    let before = handle.controller.stats().total_completed();
    std::thread::sleep(std::time::Duration::from_millis(500));
    let after = handle.controller.stats().total_completed();
    assert_eq!(before, after, "work executed while paused");

    api.handle(&Request::post("/workloads/voter/stop", Json::obj()));
    handle.join();
}

#[test]
fn game_plays_live_workload_and_crash_resets_database() {
    let (db, handle) = start_voter(30.0, Rate::Limited(1.0));
    let api = Arc::new(ApiServer::new());
    api.register("voter", handle.controller.clone());
    let rows_loaded = db.total_rows();
    assert!(rows_loaded > 0);

    // A course demanding 200 tps immediately — but the game never jumps,
    // so the measured rate stays near zero and the character crashes.
    let course = Course::from_xml(
        r#"<challenge name="wall">
            <obstacle start="1" end="8" low="200" high="260"/>
        </challenge>"#,
    )
    .unwrap();
    let game = Game::new(
        "voter",
        "embedded",
        course,
        PhysicsConfig { jump_tps: 50.0, gravity_tps_per_s: 30.0, max_tps: 500.0 },
    );
    let backend = ApiBackend::new(api.clone(), "voter");
    let mut session = GameSession::new(game, backend);

    // Real time: 16 ticks of 125ms ≈ 2s of play.
    for _ in 0..16 {
        if session.game.is_over() {
            break;
        }
        session.tick(125_000, Input::None);
        std::thread::sleep(std::time::Duration::from_millis(125));
    }
    assert!(
        matches!(session.game.screen(), benchpress::game::Screen::Crashed { .. }),
        "expected crash, got {:?}",
        session.game.screen()
    );
    // §4.1.1: the crash halted the benchmark and reset the database.
    assert!(handle.controller.is_stopped());
    assert_eq!(db.total_rows(), 0, "database must be reset after a crash");
    handle.join();
}

struct RealLauncher;

impl Launcher for RealLauncher {
    fn available(&self) -> Vec<String> {
        benchpress::workloads::all_workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect()
    }

    fn launch(&self, benchmark: &str, _body: &Json) -> Result<Controller, String> {
        let workload = by_name(benchmark).ok_or_else(|| format!("unknown benchmark {benchmark}"))?;
        let db = Database::new(Personality::test());
        let mut conn = Connection::open(&db);
        workload
            .setup(&mut conn, 0.2, &mut Rng::new(7))
            .map_err(|e| e.to_string())?;
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(50.0), 5.0)]),
            collect_trace: false,
            ..Default::default()
        };
        let handle = benchpress::core::start(db, workload, wall_clock(), cfg);
        Ok(handle.controller)
    }
}

#[test]
fn add_benchmark_on_the_fly_via_api() {
    let api = Arc::new(ApiServer::new().with_launcher(Arc::new(RealLauncher)));
    let resp = api.handle(&Request::get("/benchmarks"));
    assert!(resp.is_ok());
    assert_eq!(resp.body.as_arr().unwrap().len(), 15, "all of Table 1 available");

    let resp = api.handle(&Request::post("/workloads", Json::obj().set("benchmark", "ycsb")));
    assert!(resp.is_ok(), "{resp:?}");
    std::thread::sleep(std::time::Duration::from_millis(1500));
    let resp = api.handle(&Request::get("/workloads/ycsb"));
    let tput = resp
        .body
        .get("status")
        .and_then(|s| s.get("throughput"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(tput > 20.0, "launched workload not producing: {tput}");
    api.handle(&Request::post("/workloads/ycsb/stop", Json::obj()));
}
