//! The shipped sample configuration files stay loadable.

use benchpress::core::WorkloadConfig;
use benchpress::game::Course;
use benchpress::storage::Personality;
use benchpress::workloads::by_name;

#[test]
fn shipped_workload_configs_parse_and_resolve() {
    for file in ["configs/tpcc_mysql.xml", "configs/voter_readonly_burst.xml"] {
        let xml = std::fs::read_to_string(file).unwrap();
        let cfg = WorkloadConfig::parse(&xml).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(
            Personality::by_name(&cfg.dbtype).is_some(),
            "{file}: unknown dbtype {}",
            cfg.dbtype
        );
        assert!(by_name(&cfg.benchmark).is_some(), "{file}: unknown benchmark {}", cfg.benchmark);
        assert!(!cfg.script.phases.is_empty());
        assert!(cfg.script.total_duration_us() > 0);
    }
}

#[test]
fn shipped_observability_block_parses() {
    use benchpress::obs::SpanMode;
    let xml = std::fs::read_to_string("configs/voter_readonly_burst.xml").unwrap();
    let cfg = WorkloadConfig::parse(&xml).unwrap();
    assert_eq!(cfg.obs.mode, SpanMode::Sampled);
    assert_eq!(cfg.obs.sample_ratio, 0.25);
    assert_eq!(cfg.obs.ring_capacity, 4096);
    assert_eq!(cfg.run_config(1).obs, cfg.obs);
}

#[test]
fn shipped_challenge_parses() {
    let xml = std::fs::read_to_string("configs/challenge_custom.xml").unwrap();
    let course = Course::from_xml(&xml).unwrap();
    assert_eq!(course.name, "climb-and-hold");
    assert_eq!(course.obstacles.len(), 4);
    assert!(course.obstacles[2].autopilot);
    assert_eq!(course.duration_us, 70_000_000);
}
