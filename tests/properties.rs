//! Property-based tests over the core invariants.

use proptest::prelude::*;

use benchpress::core::{ArrivalDist, Mixture, RequestQueue};
use benchpress::sql::{parse, Dialect};
use benchpress::storage::Value;
use benchpress::util::clock::{sim_clock, MICROS_PER_SEC};
use benchpress::util::histogram::Histogram;
use benchpress::util::json::Json;
use benchpress::util::rng::{Discrete, Rng};

proptest! {
    /// The arrival generator emits exactly n offsets within the second,
    /// sorted, for both distributions.
    #[test]
    fn arrival_offsets_exact_and_sorted(n in 0usize..2_000, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for dist in [ArrivalDist::Uniform, ArrivalDist::Exponential] {
            let offs = dist.offsets(n, &mut rng);
            prop_assert_eq!(offs.len(), n);
            prop_assert!(offs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(offs.iter().all(|o| *o < MICROS_PER_SEC));
        }
    }

    /// Never-exceed: however the backlog looks, a gated queue dispatches at
    /// most `rate + 1` requests in any whole simulated second.
    #[test]
    fn queue_never_exceeds_rate(
        rate in 50u64..2_000,
        backlog in 1usize..3_000,
        seed in any::<u64>(),
    ) {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(rate as f64);
        let mut rng = Rng::new(seed);
        // Arbitrary past arrivals.
        q.push_arrivals((0..backlog).map(|_| rng.bounded(MICROS_PER_SEC)));
        sim.advance_to(2 * MICROS_PER_SEC);
        // Count dispatches over exactly one simulated second.
        let mut dispatched = 0u64;
        for _ in 0..1_000 {
            while q.try_pull().is_some() {
                dispatched += 1;
            }
            sim.advance(1_000);
        }
        prop_assert!(
            dispatched <= rate + 2,
            "dispatched {} in 1s at rate {}", dispatched, rate
        );
    }

    /// Histogram percentiles stay within the recorded min/max and are
    /// monotone in the percentile.
    #[test]
    fn histogram_percentile_bounds(values in prop::collection::vec(0u64..10_000_000, 1..400)) {
        let mut h = Histogram::latency();
        for v in &values {
            h.record(*v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut last = 0;
        for pct in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let p = h.percentile(pct);
            prop_assert!(p >= min && p <= max, "p{pct} = {p} outside [{min}, {max}]");
            prop_assert!(p >= last);
            last = p;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Mixture probabilities always sum to 1 and zero weights are never
    /// sampled.
    #[test]
    fn mixture_probabilities(weights in prop::collection::vec(0.0f64..100.0, 1..12), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let m = match Mixture::new(weights.clone()) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let total: f64 = (0..m.len()).map(|i| m.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let idx = m.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight index {idx}");
        }
    }

    /// Discrete sampling respects the support.
    #[test]
    fn discrete_sampler_in_support(weights in prop::collection::vec(0.01f64..10.0, 1..20), seed in any::<u64>()) {
        let d = Discrete::new(&weights);
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) < weights.len());
        }
    }

    /// JSON round-trips arbitrary (string, number, bool) objects.
    #[test]
    fn json_roundtrip(
        pairs in prop::collection::vec(("[a-z]{1,8}", -1e9f64..1e9), 0..10),
        flag in any::<bool>(),
        text in "[ -~]{0,40}",
    ) {
        let mut obj = Json::obj().set("flag", flag).set("text", text.as_str());
        for (k, v) in &pairs {
            obj = obj.set(k, *v);
        }
        let s = obj.to_string();
        let back = Json::parse(&s).unwrap();
        prop_assert_eq!(back, obj);
    }

    /// Every SQL statement our dialect layer renders from a parsed
    /// statement re-parses (idempotent rendering).
    #[test]
    fn dialect_render_reparse_roundtrip(
        table in "[a-z][a-z0-9_]{0,10}",
        col in "[a-z][a-z0-9_]{0,10}",
        v in -1_000_000i64..1_000_000,
        limit in 1i64..100,
    ) {
        let sql = format!(
            "SELECT {col} FROM {table} WHERE {col} >= {v} ORDER BY {col} DESC LIMIT {limit}"
        );
        let stmt = match parse(&sql) {
            Ok(s) => s,
            Err(_) => return Ok(()), // e.g. col collided with a keyword
        };
        for d in Dialect::all() {
            let rendered = d.render(&stmt);
            let reparsed = parse(&rendered);
            prop_assert!(reparsed.is_ok(), "{:?}: {} -> {:?}", d, rendered, reparsed.err());
            let rerendered = d.render(&reparsed.unwrap());
            prop_assert_eq!(&rendered, &rerendered, "{:?} rendering not idempotent", d);
        }
    }

    /// Storage Value ordering is a total order consistent with equality.
    #[test]
    fn value_ordering_total(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            prop_assert_eq!(b.cmp(&a), Ordering::Greater);
        }
        // Transitivity (on a sorted triple).
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9]{0,12}".prop_map(Value::Str),
    ]
}
