//! Property-based tests over the core invariants, written as deterministic
//! randomized loops over `bp_util::rng` with a fixed seed (the workspace is
//! hermetic — no `proptest`). Each property runs ≥ 256 generated cases
//! unless noted; failures print enough state to replay the case.

use benchpress::core::{ArrivalDist, Mixture, RequestQueue};
use benchpress::sql::{parse, Dialect};
use benchpress::storage::Value;
use benchpress::util::clock::{sim_clock, MICROS_PER_SEC};
use benchpress::util::histogram::Histogram;
use benchpress::util::json::Json;
use benchpress::util::rng::{Discrete, Rng};

const CASES: usize = 256;

/// Run `f` once per case with an independent, reproducible sub-rng.
fn for_each_case(f: impl Fn(&mut Rng)) {
    let mut root = Rng::new(0xB19C_95E5);
    for case in 0..CASES {
        let mut rng = root.fork(case as u64);
        f(&mut rng);
    }
}

/// Random lowercase identifier matching `[a-z][a-z0-9_]{0,max_tail}`.
fn ident(rng: &mut Rng, max_tail: usize) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(HEAD[rng.index(HEAD.len())] as char);
    for _ in 0..rng.index(max_tail + 1) {
        s.push(TAIL[rng.index(TAIL.len())] as char);
    }
    s
}

/// The arrival generator emits exactly n offsets within the second,
/// sorted, for both distributions.
#[test]
fn arrival_offsets_exact_and_sorted() {
    for_each_case(|rng| {
        let n = rng.index(2_000);
        let seed = rng.next_u64();
        let mut gen_rng = Rng::new(seed);
        for dist in [ArrivalDist::Uniform, ArrivalDist::Exponential] {
            let offs = dist.offsets(n, &mut gen_rng);
            assert_eq!(offs.len(), n, "seed {seed}");
            assert!(offs.windows(2).all(|w| w[0] <= w[1]), "seed {seed}: unsorted");
            assert!(offs.iter().all(|o| *o < MICROS_PER_SEC), "seed {seed}: out of second");
        }
    });
}

/// Never-exceed: however the backlog looks, a gated queue dispatches at
/// most `rate + 2` requests in any whole simulated second.
#[test]
fn queue_never_exceeds_rate() {
    // Fewer cases than the default: each case simulates a full second in
    // 1ms steps, so 64 cases already dominate this suite's runtime.
    let mut root = Rng::new(0xB19C_95E5);
    for case in 0..64u64 {
        let mut rng = root.fork(case);
        let rate = 50 + rng.bounded(1_950);
        let backlog = 1 + rng.index(3_000);
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(rate as f64);
        // Arbitrary past arrivals.
        q.push_arrivals((0..backlog).map(|_| rng.bounded(MICROS_PER_SEC)));
        sim.advance_to(2 * MICROS_PER_SEC);
        // Count dispatches over exactly one simulated second.
        let mut dispatched = 0u64;
        for _ in 0..1_000 {
            while q.try_pull().is_some() {
                dispatched += 1;
            }
            sim.advance(1_000);
        }
        assert!(
            dispatched <= rate + 2,
            "case {case}: dispatched {dispatched} in 1s at rate {rate}"
        );
    }
}

/// Histogram percentiles stay within the recorded min/max and are
/// monotone in the percentile.
#[test]
fn histogram_percentile_bounds() {
    for_each_case(|rng| {
        let n = 1 + rng.index(400);
        let values: Vec<u64> = (0..n).map(|_| rng.bounded(10_000_000)).collect();
        let mut h = Histogram::latency();
        for v in &values {
            h.record(*v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut last = 0;
        for pct in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let p = h.percentile(pct);
            assert!(p >= min && p <= max, "p{pct} = {p} outside [{min}, {max}]");
            assert!(p >= last, "p{pct} = {p} not monotone (prev {last})");
            last = p;
        }
        assert_eq!(h.count(), values.len() as u64);
    });
}

/// Mixture probabilities always sum to 1 and zero weights are never
/// sampled.
#[test]
fn mixture_probabilities() {
    for_each_case(|rng| {
        let n = 1 + rng.index(11);
        // Mix zero and positive weights; ensure at least one positive.
        let mut weights: Vec<f64> = (0..n)
            .map(|_| if rng.bool_with(0.2) { 0.0 } else { rng.f64_range(0.001, 100.0) })
            .collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            weights[0] = 1.0;
        }
        let m = match Mixture::new(weights.clone()) {
            Ok(m) => m,
            Err(_) => return,
        };
        let total: f64 = (0..m.len()).map(|i| m.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        for _ in 0..200 {
            let idx = m.sample(rng);
            assert!(weights[idx] > 0.0, "sampled zero-weight index {idx}");
        }
    });
}

/// Discrete sampling respects the support.
#[test]
fn discrete_sampler_in_support() {
    for_each_case(|rng| {
        let n = 1 + rng.index(19);
        let weights: Vec<f64> = (0..n).map(|_| rng.f64_range(0.01, 10.0)).collect();
        let d = Discrete::new(&weights);
        for _ in 0..100 {
            assert!(d.sample(rng) < weights.len());
        }
    });
}

/// JSON round-trips arbitrary (string, number, bool) objects.
#[test]
fn json_roundtrip() {
    for_each_case(|rng| {
        let flag = rng.bool_with(0.5);
        // Arbitrary printable ASCII text, including quotes and backslashes.
        let text: String = (0..rng.index(41))
            .map(|_| (b' ' + rng.bounded(95) as u8) as char)
            .collect();
        let mut obj = Json::obj().set("flag", flag).set("text", text.as_str());
        for _ in 0..rng.index(10) {
            let key = ident(rng, 7);
            let v = rng.f64_range(-1e9, 1e9);
            obj = obj.set(&key, v);
        }
        let s = obj.to_string();
        let back = Json::parse(&s).expect("rendered JSON must parse");
        assert_eq!(back, obj, "round-trip mismatch for {s}");
    });
}

/// Every SQL statement our dialect layer renders from a parsed
/// statement re-parses, and rendering is idempotent.
#[test]
fn dialect_render_reparse_roundtrip() {
    for_each_case(|rng| {
        let table = ident(rng, 10);
        let col = ident(rng, 10);
        let v = rng.int_range(-1_000_000, 1_000_000);
        let limit = rng.int_range(1, 100);
        let sql = format!(
            "SELECT {col} FROM {table} WHERE {col} >= {v} ORDER BY {col} DESC LIMIT {limit}"
        );
        let stmt = match parse(&sql) {
            Ok(s) => s,
            Err(_) => return, // e.g. identifier collided with a keyword
        };
        for d in Dialect::all() {
            let rendered = d.render(&stmt);
            let reparsed = parse(&rendered);
            assert!(reparsed.is_ok(), "{d:?}: {rendered} -> {:?}", reparsed.err());
            let rerendered = d.render(&reparsed.unwrap());
            assert_eq!(rendered, rerendered, "{d:?} rendering not idempotent");
        }
    });
}

fn random_value(rng: &mut Rng) -> Value {
    match rng.index(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.bool_with(0.5)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::Float(rng.f64_range(-1e12, 1e12)),
        _ => Value::Str(rng.astring(0, 12)),
    }
}

/// Storage Value ordering is a total order consistent with equality.
#[test]
fn value_ordering_total() {
    for_each_case(|rng| {
        use std::cmp::Ordering;
        let a = random_value(rng);
        let b = random_value(rng);
        let c = random_value(rng);
        // Antisymmetry.
        if a.cmp(&b) == Ordering::Less {
            assert_eq!(b.cmp(&a), Ordering::Greater, "{a:?} vs {b:?}");
        }
        // Transitivity (on a sorted triple).
        let mut v = [a, b, c];
        v.sort();
        assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2], "{v:?}");
    });
}
