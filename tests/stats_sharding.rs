//! Regression: the sharded `StatsCollector` must be observably equivalent
//! to the old single-mutex layout. N threads record M samples each into a
//! default (multi-shard) collector; the same sample set recorded into a
//! single-shard collector must produce identical committed/aborted/failed
//! counts, identical histogram counts, and p50/p99 within one histogram
//! bucket (the log-linear histogram is 5-bit, ≈3% relative error, and the
//! merge is exact bucket-wise addition — so in practice they are equal).

use std::sync::Arc;

use benchpress::core::{RequestOutcome, Sample, StatsCollector};
use benchpress::util::clock::{sim_clock, MICROS_PER_SEC};
use benchpress::util::rng::Rng;

const THREADS: u64 = 8;
const SAMPLES_PER_THREAD: u64 = 2_000;

/// Deterministic sample stream for one thread.
fn thread_samples(t: u64) -> Vec<Sample> {
    let mut rng = Rng::new(0x5A75 + t);
    (0..SAMPLES_PER_THREAD)
        .map(|_| {
            let arrival = rng.bounded(3 * MICROS_PER_SEC);
            let start = arrival + rng.bounded(2_000);
            let latency = 100 + rng.bounded(50_000);
            let outcome = match rng.bounded(10) {
                0 => RequestOutcome::Failed,
                1 | 2 => RequestOutcome::UserAborted,
                _ => RequestOutcome::Committed,
            };
            Sample {
                txn_type: (rng.bounded(3)) as usize,
                arrival,
                start,
                end: start + latency,
                outcome,
                retries: rng.bounded(4) as u32,
            }
        })
        .collect()
}

/// Relative gap allowed between percentiles of the two runs: one 5-bit
/// log-linear bucket (2^-5 ≈ 3.2% relative width).
fn within_one_bucket(a: u64, b: u64) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    // Bucket width at value `hi` is at most hi / 32 + 1.
    hi - lo <= hi / 32 + 1
}

#[test]
fn sharded_stats_match_single_shard_totals() {
    let types = ["alpha", "beta", "gamma"];

    // Sharded run: THREADS real threads, each recording its own stream.
    let (_, clock) = sim_clock();
    let sharded = Arc::new(StatsCollector::new(clock, &types));
    assert!(sharded.shard_count() > 1, "default collector must be sharded");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = sharded.clone();
            std::thread::spawn(move || {
                for s in thread_samples(t) {
                    c.record(s);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Reference run: the same sample multiset into a single-shard
    // collector (the old `Mutex<StatsInner>` layout).
    let (_, clock) = sim_clock();
    let single = StatsCollector::with_shards(clock, &types, 1);
    for t in 0..THREADS {
        for s in thread_samples(t) {
            single.record(s);
        }
    }

    let total = THREADS * SAMPLES_PER_THREAD;
    assert_eq!(sharded.total_completed(), total);
    assert_eq!(single.total_completed(), total);

    // Exact equality on all counters.
    let st_sharded = sharded.status(1);
    let st_single = single.status(1);
    assert_eq!(st_sharded.committed, st_single.committed);
    assert_eq!(st_sharded.user_aborted, st_single.user_aborted);
    assert_eq!(st_sharded.failed, st_single.failed);
    assert_eq!(st_sharded.retries, st_single.retries);
    assert_eq!(
        st_sharded.committed + st_sharded.user_aborted + st_sharded.failed,
        total
    );

    // Per-type summaries: identical counts and outcome tallies, equal
    // means (merge is exact bucket-wise addition), p95 within one bucket.
    let sum_sharded = sharded.per_type_summary();
    let sum_single = single.per_type_summary();
    assert_eq!(sum_sharded.len(), sum_single.len());
    for (a, b) in sum_sharded.iter().zip(&sum_single) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.count, b.count, "type {}", a.name);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.user_aborted, b.user_aborted);
        assert_eq!(a.failed, b.failed);
        assert!((a.mean_us - b.mean_us).abs() < 1e-9, "{} vs {}", a.mean_us, b.mean_us);
        assert!(within_one_bucket(a.p95_us, b.p95_us), "{} vs {}", a.p95_us, b.p95_us);
    }

    // Queue delay percentiles within one bucket of each other.
    let (p50_a, p95_a, max_a) = sharded.queue_delay();
    let (p50_b, p95_b, max_b) = single.queue_delay();
    assert!(within_one_bucket(p50_a, p50_b), "p50 {p50_a} vs {p50_b}");
    assert!(within_one_bucket(p95_a, p95_b), "p95 {p95_a} vs {p95_b}");
    assert_eq!(max_a, max_b, "max is tracked exactly");

    // Throughput series identical second by second (windowed counts are
    // integers; merge adds them exactly).
    assert_eq!(sharded.throughput_series(), single.throughput_series());
    // Mean-latency series identical: each window's (sum, count) pair is
    // merged exactly.
    let lat_a = sharded.latency_series();
    let lat_b = single.latency_series();
    assert_eq!(lat_a.len(), lat_b.len());
    for (a, b) in lat_a.iter().zip(&lat_b) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// The sliding-window histogram (the SLO controller's sensor) must merge
/// across shards exactly like the cumulative path: each shard keeps its
/// own per-second ring, and `window_histogram` folds the same ring slice
/// from every shard with exact bucket-wise addition.
#[test]
fn sharded_window_histogram_matches_single_shard() {
    let types = ["alpha", "beta", "gamma"];

    // Sharded run: THREADS real threads, each recording its own stream.
    let (sim, clock) = sim_clock();
    let sharded = Arc::new(StatsCollector::new(clock, &types));
    assert!(sharded.shard_count() > 1, "default collector must be sharded");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = sharded.clone();
            std::thread::spawn(move || {
                for s in thread_samples(t) {
                    c.record(s);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Reference run: the same sample multiset, one shard.
    let (sim_single, clock) = sim_clock();
    let single = StatsCollector::with_shards(clock, &types, 1);
    for t in 0..THREADS {
        for s in thread_samples(t) {
            single.record(s);
        }
    }

    // Completion times span ~[0, 3.1s); read the windows from mid-second 4
    // so a short window sees only the stream's tail and a huge one sees
    // everything.
    sim.advance_to(4_500_000);
    sim_single.advance_to(4_500_000);

    let total = THREADS * SAMPLES_PER_THREAD;
    for window_s in [1usize, 2, 4, usize::MAX] {
        let a = sharded.window_histogram(window_s);
        let b = single.window_histogram(window_s);
        assert_eq!(a.count(), b.count(), "window {window_s}");
        assert_eq!(a.p50(), b.p50(), "window {window_s}");
        assert_eq!(a.p95(), b.p95(), "window {window_s}");
        assert_eq!(a.p99(), b.p99(), "window {window_s}");
        assert!((a.mean() - b.mean()).abs() < 1e-9, "window {window_s}");
    }
    // The 2s window [3s, 4.5s) catches only the tail of the stream...
    let tail = sharded.window_histogram(2);
    assert!(tail.count() > 0 && tail.count() < total, "tail: {}", tail.count());
    // ...and a huge window is the cumulative histogram, on both layouts.
    assert_eq!(sharded.window_histogram(usize::MAX).count(), total);
    assert_eq!(sharded.window_histogram(usize::MAX).count(), sharded.total_completed());

    // The controller-facing snapshot agrees too (throughput merges the
    // same per-second completion counters).
    let snap_a = sharded.window_snapshot(4);
    let snap_b = single.window_snapshot(4);
    assert_eq!(snap_a.count, snap_b.count);
    assert_eq!(snap_a.p99_us, snap_b.p99_us);
    assert!((snap_a.throughput - snap_b.throughput).abs() < 1e-9);
}

/// `record_requested` merges across shards the same way.
#[test]
fn sharded_requested_series_matches_single_shard() {
    let (_, clock) = sim_clock();
    let sharded = Arc::new(StatsCollector::new(clock, &["t"]));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let c = sharded.clone();
            std::thread::spawn(move || {
                for s in 0..3u64 {
                    c.record_requested(s * MICROS_PER_SEC, (10 * (t + 1)) as usize);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let (_, clock) = sim_clock();
    let single = StatsCollector::with_shards(clock, &["t"], 1);
    for t in 0..4u64 {
        for s in 0..3u64 {
            single.record_requested(s * MICROS_PER_SEC, (10 * (t + 1)) as usize);
        }
    }
    assert_eq!(sharded.requested_series(), single.requested_series());
    // 10+20+30+40 = 100 per second.
    assert_eq!(sharded.requested_series(), vec![100.0, 100.0, 100.0]);
}
