//! Observability end to end: a live run's spans and counters flow into the
//! unified registry, and a real `std::net` HTTP client scrapes `/metrics`
//! (Prometheus text, every line parsed) and `/trace/spans` (JSONL).

use std::collections::HashMap;
use std::sync::Arc;

use benchpress::api::{http_request_text, ApiServer};
use benchpress::core::{Phase, PhaseScript, Rate, RunConfig};
use benchpress::obs::MetricsRegistry;
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::json::Json;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

/// Run voter briefly with full span recording and serve it over HTTP.
fn finished_run() -> (Arc<ApiServer>, benchpress::core::Controller) {
    let db = Database::new(Personality::test());
    let workload = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    workload.setup(&mut conn, 0.3, &mut Rng::new(3)).unwrap();
    let cfg = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), 1.5)]),
        ..Default::default()
    };
    let handle = benchpress::core::start(db, workload, wall_clock(), cfg);
    let controller = handle.join();

    let api = Arc::new(ApiServer::new().with_registry(Arc::new(MetricsRegistry::new())));
    api.register("voter", controller.clone());
    (api, controller)
}

/// Parse the exposition strictly: every line must be a well-formed HELP /
/// TYPE comment or a `name[{labels}] value` sample whose family was
/// declared. Returns family name → type.
fn parse_prometheus(text: &str) -> (HashMap<String, String>, Vec<String>) {
    let mut families: HashMap<String, String> = HashMap::new();
    let mut sample_lines = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            assert!(rest.split_whitespace().count() >= 2, "HELP without text: {line}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let ty = it.next().expect("TYPE kind");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown metric type: {line}"
            );
            assert!(
                families.insert(name.to_string(), ty.to_string()).is_none(),
                "family {name} declared twice"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment form: {line}");
            // OpenMetrics exemplar suffix: `... <count> # {trace_id="<hex>"} <value>`.
            // Validate and strip it before parsing the sample proper; only
            // histogram bucket lines may carry one.
            let line = match line.split_once(" # ") {
                Some((sample, exemplar)) => {
                    assert!(
                        line.contains("_bucket"),
                        "exemplar on a non-bucket line: {line}"
                    );
                    let rest = exemplar
                        .strip_prefix("{trace_id=\"")
                        .unwrap_or_else(|| panic!("malformed exemplar in: {line}"));
                    let (id, val) = rest
                        .split_once("\"} ")
                        .unwrap_or_else(|| panic!("unterminated exemplar in: {line}"));
                    assert!(
                        !id.is_empty()
                            && id.len() <= 16
                            && id.chars().all(|c| c.is_ascii_hexdigit()),
                        "exemplar trace id must be 1-16 hex digits in: {line}"
                    );
                    let v: f64 =
                        val.parse().unwrap_or_else(|_| panic!("bad exemplar value in: {line}"));
                    assert!(v.is_finite(), "non-finite exemplar value in: {line}");
                    sample
                }
                None => line,
            };
            let (name_labels, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("no value in: {line}"));
            let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in: {line}"));
            assert!(v.is_finite(), "non-finite value in: {line}");
            let name = match name_labels.split_once('{') {
                Some((n, labels)) => {
                    assert!(labels.ends_with('}'), "unterminated labels in: {line}");
                    for kv in labels[..labels.len() - 1].split("\",") {
                        let kv = kv.trim_end_matches('"');
                        assert!(kv.contains("=\""), "malformed label `{kv}` in: {line}");
                    }
                    n
                }
                None => name_labels,
            };
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in: {line}"
            );
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|b| families.get(*b).map(String::as_str) == Some("histogram"))
                .unwrap_or(name);
            assert!(families.contains_key(base), "sample without TYPE: {line}");
            sample_lines.push(line.to_string());
        }
    }
    (families, sample_lines)
}

#[test]
fn metrics_scrape_covers_every_silo() {
    let (api, controller) = finished_run();
    let guard = api.serve_http("127.0.0.1:0").unwrap();
    let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(!text.is_empty());

    let (families, samples) = parse_prometheus(&text);

    // Client stats: per-txn-type outcome counters + latency histograms.
    for f in [
        "bp_client_committed_total",
        "bp_client_user_aborted_total",
        "bp_client_failed_total",
        "bp_client_retries_total",
    ] {
        assert_eq!(families.get(f).map(String::as_str), Some("counter"), "{f}");
    }
    assert_eq!(families.get("bp_client_latency_us").map(String::as_str), Some("histogram"));
    // Voter has a single transaction type; the commit counter must carry
    // its name as the `type` label.
    assert!(
        samples.iter().any(|l| l.starts_with("bp_client_committed_total{type=\"Vote\"")),
        "expected per-type commit counters:\n{text}"
    );
    assert!(
        samples.iter().any(|l| l.starts_with("bp_client_user_aborted_total{type=\"Vote\"")),
        "expected per-type abort counters:\n{text}"
    );

    // Server engine counters: every ServerMetrics field.
    for f in [
        "commits", "aborts", "user_aborts", "rows_read", "rows_written", "lock_waits",
        "lock_wait_us", "deadlocks", "lock_timeouts", "io_reads", "io_writes", "buf_hits",
        "buf_misses", "wal_bytes", "wal_fsyncs", "fsync_us", "busy_us",
    ] {
        let name = format!("bp_server_{f}_total");
        assert_eq!(families.get(&name).map(String::as_str), Some("counter"), "{name}");
    }
    for f in ["bp_server_active_txns", "bp_server_buf_hit_ratio"] {
        assert_eq!(families.get(f).map(String::as_str), Some("gauge"), "{f}");
    }

    // Registry self-identification: every scrape carries the build identity
    // and process uptime.
    assert_eq!(families.get("bp_build_info").map(String::as_str), Some("gauge"));
    assert!(
        samples
            .iter()
            .any(|l| l.starts_with("bp_build_info{") && l.contains("version=\"") && l.ends_with(" 1")),
        "bp_build_info must carry identity labels with value 1:\n{text}"
    );
    assert_eq!(families.get("bp_uptime_seconds").map(String::as_str), Some("gauge"));

    // The run's event journal is registered as a source too.
    assert_eq!(families.get("bp_events_emitted_total").map(String::as_str), Some("counter"));

    // Span stages: one histogram per lifecycle stage, with +Inf buckets,
    // _sum and _count.
    assert_eq!(families.get("bp_stage_latency_us").map(String::as_str), Some("histogram"));
    for stage in ["queue", "lock", "exec", "commit"] {
        let bucket = format!("bp_stage_latency_us_bucket{{stage=\"{stage}\"");
        assert!(samples.iter().any(|l| l.starts_with(&bucket)), "missing {bucket}");
        assert!(
            samples
                .iter()
                .any(|l| l.starts_with(&bucket) && l.contains("le=\"+Inf\"")),
            "missing +Inf bucket for stage {stage}"
        );
    }
    for suffix in ["_sum", "_count"] {
        assert!(
            samples.iter().any(|l| l.starts_with(&format!("bp_stage_latency_us{suffix}"))),
            "missing bp_stage_latency_us{suffix}"
        );
    }
    assert_eq!(families.get("bp_spans_recorded_total").map(String::as_str), Some("counter"));

    // The scraped commit counter agrees with the run's own stats.
    let committed = controller.status().committed;
    assert!(committed > 0);
    let server_commits: f64 = samples
        .iter()
        .find(|l| l.starts_with("bp_server_commits_total "))
        .and_then(|l| l.rsplit_once(' ').unwrap().1.parse().ok())
        .expect("bp_server_commits_total sample");
    assert!(
        server_commits >= committed as f64,
        "server commits {server_commits} < client committed {committed}"
    );
}

#[test]
fn flight_recorder_over_http() {
    let (api, _controller) = finished_run();
    let guard = api.serve_http("127.0.0.1:0").unwrap();

    // The journal saw the run: a phase_change from the script landing and
    // the run_start from registration.
    let (status, text) = http_request_text(guard.addr(), "GET", "/events", None).unwrap();
    assert_eq!(status, 200);
    let events = Json::parse(&text).unwrap();
    let kinds: Vec<String> = events
        .get("events")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str).map(str::to_string))
        .collect();
    assert!(kinds.iter().any(|k| k == "phase_change"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "run_start"), "{kinds:?}");

    // The default run config records telemetry; the report artifact is
    // versioned, downloadable, and parseable.
    let (status, text) = http_request_text(guard.addr(), "GET", "/report", None).unwrap();
    assert_eq!(status, 200);
    assert!(text.starts_with("#bp-report v1"), "{text}");
    let report = benchpress::obs::Report::from_text(&text).expect("report parses");
    assert!(!report.events.is_empty());

    // The doctor runs over the same artifact.
    let (status, text) = http_request_text(guard.addr(), "GET", "/doctor", None).unwrap();
    assert_eq!(status, 200);
    let j = Json::parse(&text).unwrap();
    assert!(j.get("findings").and_then(Json::as_arr).is_some(), "{text}");
}

#[test]
fn label_values_escape_and_round_trip_over_scrape() {
    use benchpress::obs::{escape_label_value, MetricsBuf, MetricsRegistry, MetricsSource};

    const NASTY: &str = "quote\" backslash\\ newline\n done";
    struct Nasty;
    impl MetricsSource for Nasty {
        fn collect(&self, buf: &mut MetricsBuf) {
            buf.counter("bp_test_nasty_total", "Escaping probe", &[("v", NASTY)], 3.0);
        }
    }
    let reg = Arc::new(MetricsRegistry::new());
    reg.register("nasty", Arc::new(Nasty));
    let api = Arc::new(ApiServer::new().with_registry(reg));
    let guard = api.serve_http("127.0.0.1:0").unwrap();
    let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    // The whole exposition stays line-parseable despite the hostile value.
    parse_prometheus(&text);
    let line = text
        .lines()
        .find(|l| l.starts_with("bp_test_nasty_total{"))
        .expect("nasty sample rendered");
    assert!(line.contains(&escape_label_value(NASTY)), "not escaped at push time: {line}");

    // Un-escaping the rendered label value returns the original exactly.
    let start = line.find("v=\"").unwrap() + 3;
    let end = line.rfind('"').unwrap();
    let mut unescaped = String::new();
    let mut chars = line[start..end].chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            unescaped.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => unescaped.push('\\'),
            Some('"') => unescaped.push('"'),
            Some('n') => unescaped.push('\n'),
            other => panic!("bad escape sequence \\{other:?} in: {line}"),
        }
    }
    assert_eq!(unescaped, NASTY, "label value must round-trip through the scrape");
}

#[test]
fn histogram_with_bounds_is_cumulative_and_nan_free() {
    use benchpress::obs::{MetricValue, MetricsBuf};
    use benchpress::util::histogram::Histogram;

    let mut h = Histogram::latency();
    for v in [5u64, 50, 500, 5_000, 50_000, 5_000_000_000] {
        h.record(v);
    }
    let mut buf = MetricsBuf::new();
    buf.histogram_with_bounds("bp_test_hist", "probe", &[], &h, &[10, 100, 1_000, 10_000]);
    let samples = buf.into_samples();
    let MetricValue::Histogram { buckets, sum, count } = &samples[0].value else {
        panic!("expected a histogram sample");
    };
    // Cumulative counts never decrease across increasing bounds.
    for w in buckets.windows(2) {
        assert!(w[0].0 < w[1].0, "bounds must increase: {buckets:?}");
        assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone: {buckets:?}");
    }
    // The +Inf bucket equals the total count, including values past the
    // last finite bound.
    let (inf_bound, inf_count) = buckets.last().unwrap();
    assert!(inf_bound.is_infinite());
    assert_eq!(*inf_count, h.count());
    assert_eq!(*count, h.count());
    assert!(sum.is_finite());

    // An empty histogram renders count=0 with a finite (zero) sum — no NaN
    // may ever reach the exposition.
    let mut buf = MetricsBuf::new();
    buf.histogram_with_bounds("bp_test_empty", "probe", &[], &Histogram::latency(), &[10, 100]);
    let samples = buf.into_samples();
    let MetricValue::Histogram { buckets, sum, count } = &samples[0].value else {
        panic!("expected a histogram sample");
    };
    assert_eq!(*count, 0);
    assert_eq!(*sum, 0.0, "empty histogram must not render a NaN sum");
    assert!(buckets.iter().all(|(_, c)| *c == 0));
}

#[test]
fn trace_spans_jsonl_over_http() {
    let (api, controller) = finished_run();
    let guard = api.serve_http("127.0.0.1:0").unwrap();
    let (status, text) = http_request_text(guard.addr(), "GET", "/trace/spans?last=25", None).unwrap();
    assert_eq!(status, 200);
    assert!(!text.is_empty(), "run should have recorded spans");
    assert!(text.lines().count() <= 25);

    let mut prev_end = 0u64;
    for line in text.lines() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e:?}"));
        assert_eq!(j.get("workload").and_then(Json::as_str), Some("voter"));
        for key in [
            "seq", "tenant", "phase", "txn_type", "submitted_us", "dequeued_us", "end_us",
            "queue_us", "lock_us", "exec_us", "commit_us", "retries",
        ] {
            assert!(j.get(key).and_then(Json::as_u64).is_some(), "missing {key} in {line}");
        }
        assert!(j.get("outcome").and_then(Json::as_str).is_some());
        let end = j.get("end_us").and_then(Json::as_u64).unwrap();
        assert!(end >= prev_end, "spans not ordered oldest-first");
        prev_end = end;
    }

    // The trace summary over HTTP carries the same recorder's roll-up.
    let (status, text) = http_request_text(guard.addr(), "GET", "/trace/summary", None).unwrap();
    assert_eq!(status, 200);
    let j = Json::parse(&text).unwrap();
    let workloads = j.get("workloads").and_then(Json::as_arr).unwrap();
    assert_eq!(workloads.len(), 1);
    let spans = workloads[0].get("spans").and_then(Json::as_u64).unwrap();
    assert_eq!(spans, controller.spans().unwrap().recorded());
    assert!(spans > 0);
}

#[test]
fn metric_exemplars_resolve_to_trace_detail_over_http() {
    let (api, _controller) = finished_run();
    let guard = api.serve_http("127.0.0.1:0").unwrap();
    let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    // Exemplars survive the strict parse (which validates their syntax).
    parse_prometheus(&text);

    // The latency histograms carry at least one trace-id exemplar after a
    // full-span run.
    let exemplar_line = text
        .lines()
        .find(|l| {
            (l.starts_with("bp_client_latency_us_bucket")
                || l.starts_with("bp_stage_latency_us_bucket"))
                && l.contains(" # {trace_id=\"")
        })
        .unwrap_or_else(|| panic!("no exemplar on any latency bucket:\n{text}"));
    let start = exemplar_line.find("# {trace_id=\"").unwrap() + "# {trace_id=\"".len();
    let id = &exemplar_line[start..start + exemplar_line[start..].find('"').unwrap()];

    // The printed id resolves to a full per-request stage breakdown: the
    // debugging loop "see a slow bucket on a dashboard, paste the trace id"
    // works over plain HTTP.
    let (status, body) =
        http_request_text(guard.addr(), "GET", &format!("/trace/{id}"), None).unwrap();
    assert_eq!(status, 200, "exemplar trace id must resolve: {body}");
    let j = Json::parse(&body).unwrap();
    assert_eq!(j.get("trace_id").and_then(Json::as_str), Some(id));
    assert_eq!(j.get("workload").and_then(Json::as_str), Some("voter"));
    let stages = j.get("stages").and_then(Json::as_arr).unwrap();
    assert_eq!(stages.len(), 4, "queue/lock/exec/commit breakdown: {body}");
    let total = j.get("total_us").and_then(Json::as_u64).unwrap();
    let sum: u64 =
        stages.iter().map(|s| s.get("us").and_then(Json::as_u64).unwrap()).sum();
    assert!(sum <= total, "stage sum {sum} exceeds total {total}: {body}");
    assert!(j.get("dominant_stage").and_then(Json::as_str).is_some(), "{body}");
}

#[test]
fn trace_ids_deterministic_across_identical_runs() {
    // Two identical full-span runs with the same seed must stamp the same
    // trace id on every sequence number — a trace id written down from one
    // run identifies the same logical request in a replay.
    fn run_ids(seed: u64) -> HashMap<u64, u64> {
        let db = Database::new(Personality::test());
        let workload = by_name("voter").unwrap();
        let mut conn = Connection::open(&db);
        workload.setup(&mut conn, 0.3, &mut Rng::new(3)).unwrap();
        let cfg = RunConfig {
            terminals: 2,
            seed,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(200.0), 0.8)]),
            ..Default::default()
        };
        let controller = benchpress::core::start(db, workload, wall_clock(), cfg).join();
        let spans = controller.spans().unwrap().recent(usize::MAX);
        assert!(!spans.is_empty());
        spans.into_iter().map(|s| (s.seq, s.trace_id)).collect()
    }

    let a = run_ids(7);
    let b = run_ids(7);
    for (seq, id) in &a {
        assert_eq!(
            *id,
            benchpress::obs::trace_id(7, *seq),
            "trace id must be a pure function of (seed, seq)"
        );
        if let Some(other) = b.get(seq) {
            assert_eq!(id, other, "seq {seq} got different ids across identical runs");
        }
    }
    // A different seed relabels every request.
    let c = run_ids(8);
    for (seq, id) in &c {
        assert_ne!(
            *id,
            benchpress::obs::trace_id(7, *seq),
            "seed must perturb trace ids (seq {seq})"
        );
    }
}
