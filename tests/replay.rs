//! bp-replay end to end: same-seed captures are byte-identical, an
//! as-recorded replay over the live HTTP control surface stays within the
//! divergence tolerance, a ×4 time warp compresses wall time to about a
//! quarter, fitted synthesis recovers the scripted mixture within 2%, and
//! a played game scenario round-trips into a replayable artifact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use benchpress::api::ApiServer;
use benchpress::core::{ArrivalDist, Phase, PhaseScript, Rate, RunConfig, Workload};
use benchpress::obs::MetricsRegistry;
use benchpress::replay::{
    capture_artifact, fit, start_recorded, start_replay, synthesize, Artifact, ReplaySession,
    ReplayTiming,
};
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::json::Json;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

fn setup(workload: &str) -> (Arc<Database>, Arc<dyn Workload>) {
    let db = Database::new(Personality::test());
    let w = by_name(workload).unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.2, &mut Rng::new(13)).unwrap();
    (db, w)
}

fn two_phase_cfg() -> RunConfig {
    let script = PhaseScript::new(vec![
        Phase::new(Rate::Limited(500.0), 1.0).with_weights(vec![
            40.0, 12.0, 12.0, 12.0, 12.0, 12.0,
        ]),
        Phase::new(Rate::Limited(800.0), 1.0)
            .with_weights(vec![10.0, 18.0, 18.0, 18.0, 18.0, 18.0])
            .with_arrival(ArrivalDist::Exponential),
    ]);
    RunConfig { terminals: 4, script, seed: 42, collect_trace: true, ..Default::default() }
}

fn record(cfg: &RunConfig) -> Artifact {
    let (db, w) = setup("smallbank");
    let (handle, recorder) = start_recorded(db, w.clone(), wall_clock(), cfg.clone());
    let trace = handle.trace.clone();
    let _ = handle.join();
    capture_artifact(cfg, w.as_ref(), "test", &recorder, trace.as_deref())
}

#[test]
fn same_seed_capture_is_byte_identical_and_roundtrips() {
    let cfg = two_phase_cfg();
    let a = record(&cfg);
    let b = record(&cfg);

    assert!(!a.schedule.is_empty(), "capture must record the schedule");
    assert_eq!(
        a.schedule_text(),
        b.schedule_text(),
        "same seed must produce a byte-identical schedule"
    );

    // The full artifact round-trips through its text form.
    let parsed = Artifact::from_text(&a.to_text()).expect("parse capture");
    assert_eq!(parsed.schedule, a.schedule);
    assert_eq!(parsed.script, a.script);
    assert_eq!(parsed.seed, a.seed);
    assert_eq!(parsed.types, a.types);
    assert_eq!(parsed.trace.len(), a.trace.len());
    assert_eq!(parsed.schedule_text(), a.schedule_text());

    // A different seed diverges.
    let other = record(&RunConfig { seed: 7, ..cfg });
    assert_ne!(a.schedule_text(), other.schedule_text());
}

struct TestLauncher {
    db: Arc<Database>,
    w: Arc<dyn Workload>,
}

impl benchpress::api::ReplayLauncher for TestLauncher {
    fn launch(&self, a: &Artifact, t: ReplayTiming) -> Result<ReplaySession, String> {
        Ok(start_replay(self.db.clone(), self.w.clone(), wall_clock(), a, t)?.session)
    }
}

#[test]
fn http_replay_stays_within_divergence_tolerance() {
    let artifact = record(&two_phase_cfg());

    let (db, w) = setup("smallbank");
    let registry = Arc::new(MetricsRegistry::new());
    let api = Arc::new(
        ApiServer::new()
            .with_registry(registry.clone())
            .with_replay_launcher(Arc::new(TestLauncher { db, w })),
    );
    let text = artifact.to_text();
    api.set_record_provider(Arc::new(move || Some(text.clone())));
    let guard = api.serve_http("127.0.0.1:0").unwrap();

    // Download the capture exactly as a remote client would.
    let (status, downloaded) =
        benchpress::api::http_request_text(guard.addr(), "GET", "/record", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(downloaded, artifact.to_text(), "/record must serve the artifact verbatim");

    // Start the replay and poll it to completion.
    let (status, body) = benchpress::api::http_request(
        guard.addr(),
        "POST",
        "/replay",
        Some(&Json::obj().set("artifact", downloaded.as_str())),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("mode").unwrap().as_str(), Some("as-recorded"));

    let mut divergence = None;
    for _ in 0..600 {
        std::thread::sleep(Duration::from_millis(20));
        let (st, body) =
            benchpress::api::http_request(guard.addr(), "GET", "/replay/status", None).unwrap();
        assert_eq!(st, 200);
        if body.get("complete").and_then(Json::as_bool) == Some(true) {
            divergence = body
                .get("divergence")
                .and_then(|d| d.get("score"))
                .and_then(Json::as_f64);
            break;
        }
    }
    let score = divergence.expect("replay must complete with a divergence report");
    assert!(score <= 0.15, "divergence too high: {score}");

    // Replay progress and divergence reach /metrics.
    let (_, metrics) =
        benchpress::api::http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("bp_replay_fed_total"), "{metrics}");
    assert!(metrics.contains("bp_replay_done 1"), "{metrics}");
    assert!(metrics.contains("bp_replay_divergence_score"), "{metrics}");

    // While nothing is running a second POST is accepted; a 409 is only for
    // an in-flight replay (covered by unit tests). Instead verify the
    // session's per-type counts landed close to the recording.
    let session = api.replay_session().expect("session stored");
    let report = session.divergence().expect("report available");
    assert_eq!(report.per_type_recorded.len(), artifact.types.len());
    assert!(report.max_type_share_diff <= 0.05, "{}", report.max_type_share_diff);
}

#[test]
fn warp_4x_replays_in_about_a_quarter_of_the_time() {
    let cfg = two_phase_cfg();
    let t0 = Instant::now();
    let artifact = record(&cfg);
    let recorded_wall = t0.elapsed().as_secs_f64();

    let (db, w) = setup("smallbank");
    let t1 = Instant::now();
    let run = start_replay(db, w, wall_clock(), &artifact, ReplayTiming::Warp(4.0)).unwrap();
    let _ = run.handle.join();
    let warp_wall = t1.elapsed().as_secs_f64();

    assert!(
        warp_wall < recorded_wall * 0.6,
        "warp x4 should compress wall time: {warp_wall:.2}s vs {recorded_wall:.2}s recorded"
    );
    assert!(run.session.progress.is_done());
    assert_eq!(run.session.progress.fed(), artifact.schedule.len() as u64);
}

#[test]
fn synthesis_recovers_mixture_within_2_percent() {
    let artifact = record(&two_phase_cfg());
    let stats = fit(&artifact);
    assert_eq!(stats.phases.len(), 2);

    let share = |ws: &[f64]| -> Vec<f64> {
        let sum: f64 = ws.iter().sum();
        ws.iter().map(|x| x / sum).collect()
    };
    let expected = [
        share(&[40.0, 12.0, 12.0, 12.0, 12.0, 12.0]),
        share(&[10.0, 18.0, 18.0, 18.0, 18.0, 18.0]),
    ];
    for (p, e) in stats.phases.iter().zip(expected.iter()) {
        for (m, want) in p.mixture.iter().zip(e.iter()) {
            assert!((m - want).abs() < 0.02, "fitted {m} vs scripted {want}");
        }
    }
    assert_eq!(stats.phases[0].arrival, ArrivalDist::Uniform);
    assert_eq!(stats.phases[1].arrival, ArrivalDist::Exponential);

    // Synthesis compresses time, keeps rates and shape.
    let synth = synthesize(&stats, 0.5);
    assert_eq!(synth.phases.len(), 2);
    assert!((synth.phases[0].duration_s - 0.5).abs() < 1e-9);
    match synth.phases[0].rate {
        Rate::Limited(tps) => assert!((tps - 500.0).abs() < 25.0, "{tps}"),
        other => panic!("expected limited rate, got {other}"),
    }
}

#[test]
fn game_scenario_replays_as_script_only_artifact() {
    use benchpress::core::CapacityModel;
    use benchpress::game::{chase_center_policy, ChallengeShape, Course, Game, GameSession, PhysicsConfig, SimBackend};

    // Play a short game on the simulated backend.
    let course = Course::generate(
        "steps",
        ChallengeShape::Steps { levels: 2, low: 150.0, high: 350.0, ascending: true },
        6.0,
        0.6,
    );
    let game = Game::new("voter", "test", course, PhysicsConfig {
        jump_tps: 60.0,
        gravity_tps_per_s: 40.0,
        max_tps: 1_000.0,
    });
    let types = vec![
        benchpress::core::TransactionType::new("r", 50.0, true),
        benchpress::core::TransactionType::new("w", 50.0, false),
    ];
    let backend = SimBackend::new(
        CapacityModel { jitter: 0.0, ..CapacityModel::mysql_like() },
        types,
        7,
    );
    let mut session = GameSession::new(game, backend);
    session.run_policy(100_000, 80, chase_center_policy);

    // Save it as a script-only artifact and replay it (warped to keep the
    // test fast) against the real voter workload.
    let artifact = session.scenario_artifact(42, &["Vote"]);
    assert!(artifact.schedule.is_empty());
    let artifact = Artifact::from_text(&artifact.to_text()).expect("scenario round-trips");

    let (db, w) = setup("voter");
    let run = start_replay(db, w, wall_clock(), &artifact, ReplayTiming::Warp(8.0)).unwrap();
    let controller = run.handle.join();
    assert!(run.session.is_complete());
    assert!(controller.stats().status(1).committed > 0, "replayed scenario must execute");

    // Asap needs a recorded schedule; script-only must refuse.
    let (db, w) = setup("voter");
    let err = start_replay(db, w, wall_clock(), &artifact, ReplayTiming::Asap);
    assert!(err.is_err());
}
