//! E10 + loader integrity across the whole Table 1 suite.

use benchpress::sql::{parse, Connection, Dialect};
use benchpress::storage::{Database, Personality};
use benchpress::util::rng::Rng;
use benchpress::workloads::{all_workloads, catalog_of};

/// Every statement of every benchmark renders in all four dialects and
/// parses back through the front end.
#[test]
fn all_catalogs_render_in_all_dialects() {
    let mut total = 0;
    for w in all_workloads() {
        let cat = catalog_of(w.name()).unwrap();
        for name in cat.names() {
            for d in Dialect::all() {
                let sql = cat
                    .resolve(name, d)
                    .unwrap_or_else(|| panic!("{}/{name} missing for {d:?}", w.name()));
                parse(&sql).unwrap_or_else(|e| panic!("{}/{name}/{d:?}: {e}\n{sql}", w.name()));
                total += 1;
            }
        }
    }
    assert!(total > 500, "only {total} renderings checked");
}

/// Dialect-specific DDL actually executes: build each benchmark's schema
/// from the *rendered* MySQL and Postgres DDL texts.
#[test]
fn rendered_ddl_executes_on_engine() {
    for dialect in [Dialect::MySql, Dialect::Postgres] {
        for w in all_workloads() {
            let cat = catalog_of(w.name()).unwrap();
            let db = Database::new(Personality::test());
            let mut conn = Connection::open(&db);
            // Tables before indexes (catalog names are alphabetical).
            let ddl: Vec<String> = cat
                .names()
                .iter()
                .filter(|n| n.starts_with("create_"))
                .map(|n| cat.resolve(n, dialect).unwrap())
                .collect();
            for pass in ["CREATE TABLE", "CREATE INDEX", "CREATE UNIQUE INDEX"] {
                for sql in ddl.iter().filter(|s| s.starts_with(pass)) {
                    // Skip the second pass's overlap with the third.
                    if pass == "CREATE INDEX" && sql.starts_with("CREATE UNIQUE") {
                        continue;
                    }
                    conn.execute(sql, &[]).unwrap_or_else(|e| {
                        panic!("{} under {dialect:?}: {e}\n{sql}", w.name())
                    });
                }
            }
        }
    }
}

/// Loaders are deterministic: same seed, same row counts; different scale,
/// different sizes.
#[test]
fn loaders_deterministic_and_scale() {
    for name in ["ycsb", "smallbank", "twitter"] {
        let load = |scale: f64, seed: u64| {
            let db = Database::new(Personality::test());
            let w = benchpress::workloads::by_name(name).unwrap();
            let mut conn = Connection::open(&db);
            w.setup(&mut conn, scale, &mut Rng::new(seed)).unwrap().rows
        };
        assert_eq!(load(0.2, 1), load(0.2, 1), "{name} loader not deterministic");
        assert!(load(0.4, 1) > load(0.1, 1), "{name} does not scale");
    }
}

/// Scale factor changes the working set the workload actually touches.
#[test]
fn working_set_scales_with_database() {
    let db_small = Database::new(Personality::test());
    let db_large = Database::new(Personality::test());
    let w = benchpress::workloads::by_name("ycsb").unwrap();
    let mut c1 = Connection::open(&db_small);
    let mut c2 = Connection::open(&db_large);
    let small = w.setup(&mut c1, 0.05, &mut Rng::new(9)).unwrap();
    // A fresh workload instance is required per database (it captures the
    // record count), so re-create it.
    let w2 = benchpress::workloads::by_name("ycsb").unwrap();
    let large = w2.setup(&mut c2, 1.0, &mut Rng::new(9)).unwrap();
    assert!(large.rows >= small.rows * 10);
}
