//! E2 (Fig. 1): the full testbed pipeline, end to end.
//!
//! XML config → workload manager + workers → SQL connections → embedded
//! engine, with server-side monitoring alongside, producing a trace that
//! the Trace Analyzer rolls up — every box of the architecture figure.

use std::sync::Arc;

use benchpress::core::{RunConfig, TraceAnalyzer, WorkloadConfig};
use benchpress::monitor::Monitor;
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality};
use benchpress::util::clock::wall_clock;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

const CONFIG_XML: &str = r#"<?xml version="1.0"?>
<parameters>
    <dbtype>test</dbtype>
    <benchmark>smallbank</benchmark>
    <scalefactor>0.3</scalefactor>
    <terminals>4</terminals>
    <works>
        <work>
            <time>1.5</time>
            <rate>150</rate>
        </work>
        <work>
            <time>1.5</time>
            <rate>300</rate>
            <arrival>exponential</arrival>
        </work>
    </works>
</parameters>"#;

#[test]
fn full_pipeline_from_config_xml() {
    // 1. Parse the workload configuration file.
    let cfg = WorkloadConfig::parse(CONFIG_XML).expect("config parses");
    assert_eq!(cfg.benchmark, "smallbank");

    // 2. Bring up the DBMS with the configured personality.
    let personality = Personality::by_name(&cfg.dbtype).expect("personality");
    let db = Database::new(personality);

    // 3. Load the benchmark's schema and data.
    let workload = by_name(&cfg.benchmark).expect("benchmark");
    let mut conn = Connection::open(&db);
    let summary = workload
        .setup(&mut conn, cfg.scale_factor, &mut Rng::new(1))
        .expect("load");
    assert!(summary.rows > 0);

    // 4. Start monitoring (dstat-style) alongside.
    let clock = wall_clock();
    let monitor = Arc::new(Monitor::new(db.clone(), clock.clone()));
    let monitor_guard = monitor.spawn(200_000);

    // 5. Run the phase script with the threaded executor.
    let run_cfg: RunConfig = cfg.run_config(99);
    let script = run_cfg.script.clone();
    let handle = benchpress::core::start(db, workload, clock, run_cfg);
    let trace = handle.trace.clone().expect("trace collection enabled");
    let controller = handle.join();
    drop(monitor_guard);

    // 6. Analyze the trace: both phases visible, rate tracked, no overshoot.
    let analysis = TraceAnalyzer::analyze(&trace, 6);
    assert!(analysis.committed > 300, "committed {}", analysis.committed);
    let tracking = TraceAnalyzer::tracking(&trace, &script, 50_000.0, 0.10);
    assert_eq!(tracking.overshoot_seconds, 0, "never-exceed violated");
    // Phase 2 is twice the rate of phase 1.
    let p1 = tracking.delivered[0];
    let p2 = tracking.delivered[2];
    assert!(p2 > p1 * 1.5, "phase change not visible: {p1} -> {p2}");

    // 7. Monitoring saw the run.
    let samples = monitor.samples();
    assert!(samples.len() >= 5, "{} samples", samples.len());
    assert!(samples.iter().any(|s| s.commits_per_s > 50.0));
    let csv = monitor.to_csv();
    assert!(csv.lines().count() > 5);

    // 8. Per-type stats flowed into the collector too.
    let per_type = controller.stats().per_type_summary();
    assert_eq!(per_type.len(), 6, "smallbank has six transaction types");
    assert!(per_type.iter().map(|t| t.count).sum::<u64>() > 300);

    // 9. The trace round-trips through the text format (trace.txt).
    let text = trace.to_text();
    let reloaded = benchpress::core::Trace::from_text(&text).expect("reload");
    assert_eq!(reloaded.len(), trace.len());
}

#[test]
fn tpcc_runs_under_throttle_on_real_engine() {
    let db = Database::new(Personality::test());
    let workload = by_name("tpcc").unwrap();
    let mut conn = Connection::open(&db);
    workload.setup(&mut conn, 1.0, &mut Rng::new(5)).unwrap();
    let cfg = RunConfig {
        terminals: 4,
        script: benchpress::core::PhaseScript::constant(benchpress::core::Rate::Limited(120.0), 2.0),
        ..Default::default()
    };
    let handle = benchpress::core::start(db, workload, wall_clock(), cfg);
    let controller = handle.join();
    let done = controller.stats().total_completed();
    assert!((180..=260).contains(&(done as i64)), "completed {done}");
    // The standard mix: NewOrder ~45%, Payment ~43%.
    let per_type = controller.stats().per_type_summary();
    let total: u64 = per_type.iter().map(|t| t.count).sum();
    let new_order_share = per_type[0].count as f64 / total as f64;
    assert!((0.3..=0.6).contains(&new_order_share), "NewOrder share {new_order_share}");
}
