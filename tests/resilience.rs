//! Chaos & resilience end to end: seeded fault plans armed over a live
//! HTTP socket reproduce identical injection sequences, deadlock storms on
//! a high-contention workload are broken without starvation, per-tenant
//! blackouts fail only the targeted tenant, and the circuit breaker opens
//! under an error burst, sheds load, and re-closes after disarm — all
//! visible through `/chaos/status` and `/metrics`.

use std::sync::Arc;

use benchpress::api::{http_request, http_request_text, ApiServer};
use benchpress::chaos::{BreakerConfig, ChaosController, FaultKind, FaultPlan, FaultWindow};
use benchpress::core::{
    BreakerState, Phase, PhaseScript, Rate, ResilienceConfig, RunConfig,
};
use benchpress::obs::MetricsRegistry;
use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality, Value};
use benchpress::util::clock::wall_clock;
use benchpress::util::json::Json;
use benchpress::util::rng::Rng;
use benchpress::workloads::by_name;

#[test]
fn same_seed_reproduces_injection_sequence_over_http() {
    let chaos = Arc::new(ChaosController::new());
    let api = Arc::new(ApiServer::new().with_chaos(chaos.clone()));
    let guard = api.serve_http("127.0.0.1:0").unwrap();

    let arm = |seed: u64| {
        let (status, body) = http_request(
            guard.addr(),
            "POST",
            "/chaos",
            Some(&Json::obj().set("scenario", "error-burst").set("seed", seed)),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("armed").unwrap().as_bool(), Some(true));
    };
    let sequence = || -> Vec<bool> {
        (0..300).map(|_| chaos.roll(FaultKind::InjectedError).is_some()).collect()
    };

    arm(123);
    let first = sequence();
    // Re-arming the same plan resets the probe ordinals: the exact same
    // injection decisions must come back.
    arm(123);
    let second = sequence();
    assert_eq!(first, second, "same seed must reproduce the same sequence");
    assert!(first.iter().any(|&b| b), "intensity 0.6 must inject");
    assert!(first.iter().any(|&b| !b), "intensity 0.6 must also pass requests");

    // A different seed gives a different sequence.
    arm(124);
    assert_ne!(first, sequence(), "different seed, different sequence");

    // /chaos/status reports the probe/injection counters.
    let (status, body) = http_request(guard.addr(), "GET", "/chaos/status", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("armed").unwrap().as_bool(), Some(true));
    let faults = body.get("faults").unwrap();
    let err = faults.get("injected_error").unwrap();
    assert_eq!(err.get("probes").unwrap().as_u64(), Some(300));
    assert!(err.get("injected").unwrap().as_u64().unwrap() > 0);
}

/// Satellite 4: a deadlock storm on a genuinely contended workload. Every
/// request must finish inside its retry budget (no starvation, no hang)
/// and the lock manager must actually break deadlocks.
///
/// The storm intensity is 0.12 per lock acquisition, not the named
/// scenario's 0.4: a two-statement transfer probes the gate ~8 times per
/// attempt (table + row locks, reentrant acquisitions included), so 0.4
/// leaves only a 0.6^8 ≈ 1.7% success rate — the named scenario is meant
/// for the executor's bounded-retry loop where failures are *counted*,
/// while this client retries every transfer to completion.
#[test]
fn deadlock_storm_breaks_deadlocks_without_starvation() {
    let db = Database::new(Personality::test());
    let mut conn = Connection::open(&db);
    conn.execute_batch("CREATE TABLE acct (id INT PRIMARY KEY, bal INT);").unwrap();
    for i in 0..4i64 {
        conn.execute("INSERT INTO acct VALUES (?, 100)", &[Value::Int(i)]).unwrap();
    }
    db.chaos().arm(
        FaultPlan::new("storm", 9)
            .with_window(FaultWindow::always(FaultKind::DeadlockStorm, 0.12, 0)),
    );

    const THREADS: usize = 8;
    const TXNS: usize = 40;
    const RETRY_BUDGET: u32 = 120;
    let before = db.metrics().snapshot();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conn = Connection::open(&db);
                let mut rng = Rng::new(t as u64 + 1);
                let mut committed = 0u64;
                let mut max_attempts = 0u32;
                for _ in 0..TXNS {
                    let a = rng.int_range(0, 3);
                    let b = rng.int_range(0, 3);
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        let r = (|| {
                            conn.begin()?;
                            conn.execute(
                                "UPDATE acct SET bal = bal - 1 WHERE id = ?",
                                &[Value::Int(a)],
                            )?;
                            conn.execute(
                                "UPDATE acct SET bal = bal + 1 WHERE id = ?",
                                &[Value::Int(b)],
                            )?;
                            conn.commit()
                        })();
                        match r {
                            Ok(()) => {
                                committed += 1;
                                break;
                            }
                            Err(e) => {
                                if conn.in_transaction() {
                                    let _ = conn.rollback();
                                }
                                assert!(
                                    e.is_retryable(),
                                    "storm must only produce retryable errors: {e}"
                                );
                                assert!(
                                    attempts <= RETRY_BUDGET,
                                    "starved past the retry budget ({attempts} attempts)"
                                );
                                // Back off so contending retries de-correlate.
                                let us = benchpress::util::rng::next_backoff(
                                    attempts - 1,
                                    20,
                                    500,
                                    t as u64,
                                );
                                std::thread::sleep(std::time::Duration::from_micros(us));
                            }
                        }
                    }
                    max_attempts = max_attempts.max(attempts);
                }
                (committed, max_attempts)
            })
        })
        .collect();

    let mut committed = 0u64;
    for h in handles {
        let (c, _) = h.join().expect("worker must not panic or hang");
        committed += c;
    }
    db.chaos().disarm();
    assert_eq!(committed, (THREADS * TXNS) as u64, "every request must eventually commit");
    let m = db.metrics().snapshot().delta(&before);
    assert!(m.deadlocks > 0, "the storm must surface broken deadlocks");
    assert!(
        db.chaos().injected_total(FaultKind::DeadlockStorm) > 0,
        "chaos must have injected storm deadlocks"
    );
    // Money conservation across all the retries and victim aborts.
    let total: i64 = conn
        .query("SELECT bal FROM acct", &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 400, "aborted transactions must not leak partial writes");
}

/// A per-tenant blackout fails only the targeted tenant's requests and
/// lifts cleanly on disarm.
#[test]
fn blackout_targets_single_tenant() {
    let run = |tenant: u16| -> (u64, u64) {
        let db = Database::new(Personality::test());
        let workload = by_name("voter").unwrap();
        let mut conn = Connection::open(&db);
        workload.setup(&mut conn, 0.3, &mut Rng::new(4)).unwrap();
        db.chaos().arm(FaultPlan::new("blackout-t1", 5).with_window(FaultWindow {
            kind: FaultKind::Blackout,
            start_us: 0,
            end_us: u64::MAX,
            intensity: 1.0,
            magnitude: 0,
            tenant: Some(1),
        }));
        let cfg = RunConfig {
            terminals: 2,
            script: PhaseScript::new(vec![Phase::new(Rate::Limited(200.0), 1.0)]),
            tenant,
            ..Default::default()
        };
        let controller = benchpress::core::start(db, workload, wall_clock(), cfg).join();
        let st = controller.stats().status(1);
        (st.committed, st.failed)
    };

    let (committed, failed) = run(0);
    assert!(committed > 0, "tenant 0 must be unaffected");
    assert_eq!(failed, 0, "tenant 0 must see no blackout failures");

    let (committed, failed) = run(1);
    assert_eq!(committed, 0, "tenant 1 is blacked out");
    assert!(failed > 0, "tenant 1's requests must fail (after retries)");
}

/// The full loop: error burst armed over HTTP mid-run, breaker opens and
/// sheds, disarm, breaker probes its way back to Closed; `/metrics` shows
/// the chaos and resilience series.
#[test]
fn breaker_opens_sheds_and_recloses_over_http() {
    let db = Database::new(Personality::test());
    let workload = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    workload.setup(&mut conn, 0.3, &mut Rng::new(8)).unwrap();
    let cfg = RunConfig {
        terminals: 4,
        script: PhaseScript::new(vec![Phase::new(Rate::Limited(400.0), 4.0)]),
        collect_trace: false,
        max_retries: 2,
        resilience: ResilienceConfig {
            breaker: Some(BreakerConfig {
                min_samples: 16,
                window: 32,
                cooldown_us: 200_000,
                ..BreakerConfig::default()
            }),
            ..ResilienceConfig::default()
        },
        ..Default::default()
    };
    let handle = benchpress::core::start(db, workload, wall_clock(), cfg);
    let registry = Arc::new(MetricsRegistry::new());
    let api = Arc::new(ApiServer::new().with_registry(registry));
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").unwrap();

    // Healthy start, then the burst.
    std::thread::sleep(std::time::Duration::from_millis(800));
    let (status, _) = http_request(
        guard.addr(),
        "POST",
        "/chaos",
        Some(&Json::obj().set("scenario", "error-burst").set("seed", 7u64)),
    )
    .unwrap();
    assert_eq!(status, 200);
    std::thread::sleep(std::time::Duration::from_millis(1400));

    let breaker = handle.controller.breaker().cloned().expect("breaker configured");
    assert!(
        breaker.transitions_to(BreakerState::Open) > 0,
        "burst must open the breaker"
    );
    assert!(breaker.shed_total() > 0, "open breaker must shed");

    // Disarm and recover.
    let (status, _) = http_request(guard.addr(), "DELETE", "/chaos", None).unwrap();
    assert_eq!(status, 200);
    std::thread::sleep(std::time::Duration::from_millis(1400));
    let controller = handle.stop_and_join();

    assert!(
        breaker.transitions_to(BreakerState::Closed) > 0,
        "breaker must re-close after disarm"
    );
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(
        controller.chaos().injected_total(FaultKind::InjectedError) > 0,
        "faults were injected"
    );
    // Shed requests are not errors and not throughput.
    let st = controller.stats().status(1);
    assert!(st.shed > 0, "sheds must be counted in their own bucket");
    assert_eq!(
        controller.stats().total_completed(),
        st.committed + st.user_aborted + st.failed,
        "sheds must stay out of the completion count"
    );

    // The serialized view: /metrics carries all three series.
    let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let nonzero = |name: &str| {
        text.lines().any(|l| {
            l.starts_with(name)
                && l.split_whitespace()
                    .last()
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(|v| v > 0.0)
                    .unwrap_or(false)
        })
    };
    assert!(nonzero("bp_chaos_injected_total"), "{text}");
    assert!(nonzero("bp_resilience_shed_total"), "{text}");
    assert!(nonzero("bp_client_shed_total"), "{text}");
    assert!(
        text.contains("bp_resilience_breaker_state{workload=\"voter\"}"),
        "breaker gauge missing"
    );
    assert!(nonzero("bp_chaos_armed") || text.contains("bp_chaos_armed"), "armed gauge missing");
}
