//! Serializability invariants under real multi-threaded chaos: the
//! substrate guarantees the workload-control experiments rest on.


use benchpress::sql::Connection;
use benchpress::storage::{Database, Personality, Value};
use benchpress::util::rng::Rng;

/// Money conservation: concurrent transfers between accounts (with wait-die
/// retries) never create or destroy money.
#[test]
fn concurrent_transfers_conserve_total() {
    const ACCOUNTS: i64 = 40;
    const THREADS: usize = 6;
    const TRANSFERS: usize = 150;

    let db = Database::new(Personality::test());
    let mut setup = Connection::open(&db);
    setup
        .execute_batch("CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL);")
        .unwrap();
    for i in 0..ACCOUNTS {
        setup
            .execute("INSERT INTO acct VALUES (?, 1000)", &[Value::Int(i)])
            .unwrap();
    }
    let expected_total = ACCOUNTS * 1000;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conn = Connection::open(&db);
                let mut rng = Rng::new(t as u64 + 1);
                let mut done = 0;
                while done < TRANSFERS {
                    let a = rng.int_range(0, ACCOUNTS - 1);
                    let b = rng.int_range(0, ACCOUNTS - 1);
                    if a == b {
                        continue;
                    }
                    let amount = rng.int_range(1, 50);
                    let result = (|| -> benchpress::sql::Result<()> {
                        conn.begin()?;
                        let bal = conn
                            .query("SELECT bal FROM acct WHERE id = ? FOR UPDATE", &[Value::Int(a)])?
                            .get_int(0, "bal")
                            .unwrap_or(0);
                        if bal >= amount {
                            conn.execute(
                                "UPDATE acct SET bal = bal - ? WHERE id = ?",
                                &[Value::Int(amount), Value::Int(a)],
                            )?;
                            conn.execute(
                                "UPDATE acct SET bal = bal + ? WHERE id = ?",
                                &[Value::Int(amount), Value::Int(b)],
                            )?;
                        }
                        conn.commit()?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => done += 1,
                        Err(e) if e.is_retryable() => {
                            if conn.in_transaction() {
                                let _ = conn.rollback();
                            }
                        }
                        Err(e) => panic!("thread {t}: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = setup
        .query("SELECT SUM(bal) AS t, COUNT(*) AS n FROM acct", &[])
        .unwrap();
    assert_eq!(total.get_int(0, "t"), Some(expected_total), "money not conserved");
    assert_eq!(total.get_int(0, "n"), Some(ACCOUNTS));
    // No account went negative (FOR UPDATE + balance check is atomic).
    let negative = setup
        .query("SELECT COUNT(*) AS n FROM acct WHERE bal < 0", &[])
        .unwrap();
    assert_eq!(negative.get_int(0, "n"), Some(0));
    // Aborts happened (the test is only meaningful under real contention).
    let m = db.metrics().snapshot();
    assert!(m.deadlocks > 0 || m.lock_waits > 0, "no contention observed");
}

/// Index consistency after concurrent insert/update/delete chaos: every
/// secondary-index probe must agree with a full scan.
#[test]
fn secondary_index_consistent_after_chaos() {
    let db = Database::new(Personality::test());
    let mut setup = Connection::open(&db);
    setup
        .execute_batch(
            "CREATE TABLE t (id INT PRIMARY KEY, grp INT NOT NULL, v INT NOT NULL);
             CREATE INDEX t_grp ON t (grp);",
        )
        .unwrap();
    for i in 0..200 {
        setup
            .execute(
                "INSERT INTO t VALUES (?, ?, 0)",
                &[Value::Int(i), Value::Int(i % 10)],
            )
            .unwrap();
    }

    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut conn = Connection::open(&db);
                let mut rng = Rng::new(100 + t as u64);
                let mut next_id = 1_000 + (t as i64) * 10_000;
                for _ in 0..200 {
                    let op = rng.int_range(0, 2);
                    let r = match op {
                        0 => {
                            next_id += 1;
                            conn.execute(
                                "INSERT INTO t VALUES (?, ?, 0)",
                                &[Value::Int(next_id), Value::Int(rng.int_range(0, 9))],
                            )
                        }
                        1 => conn.execute(
                            "UPDATE t SET grp = ? WHERE id = ?",
                            &[Value::Int(rng.int_range(0, 9)), Value::Int(rng.int_range(0, 199))],
                        ),
                        _ => conn.execute(
                            "DELETE FROM t WHERE id = ?",
                            &[Value::Int(rng.int_range(0, 199))],
                        ),
                    };
                    match r {
                        Ok(_) => {}
                        Err(e) if e.is_retryable() => {
                            if conn.in_transaction() {
                                let _ = conn.rollback();
                            }
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Cross-check: per-group counts via the index path (WHERE grp = ?) vs
    // the scan path (GROUP BY over a full scan).
    let scan = setup
        .query("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp", &[])
        .unwrap();
    let mut total_via_index = 0i64;
    for r in 0..scan.len() {
        let grp = scan.get_int(r, "grp").unwrap();
        let scan_n = scan.get_int(r, "n").unwrap();
        let idx_n = setup
            .query("SELECT COUNT(*) AS n FROM t WHERE grp = ?", &[Value::Int(grp)])
            .unwrap()
            .get_int(0, "n")
            .unwrap();
        assert_eq!(scan_n, idx_n, "index/scan mismatch for grp {grp}");
        total_via_index += idx_n;
    }
    let total = setup
        .query("SELECT COUNT(*) AS n FROM t", &[])
        .unwrap()
        .get_int(0, "n")
        .unwrap();
    assert_eq!(total, total_via_index);
}
