//! Facade crate re-exporting the whole BenchPress workspace.
pub use bp_api as api;
pub use bp_chaos as chaos;
pub use bp_cluster as cluster;
pub use bp_core as core;
pub use bp_game as game;
pub use bp_monitor as monitor;
pub use bp_obs as obs;
pub use bp_replay as replay;
pub use bp_sql as sql;
pub use bp_storage as storage;
pub use bp_util as util;
pub use bp_workloads as workloads;
