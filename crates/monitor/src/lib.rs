//! `bp-monitor`: dstat-style server resource monitoring (Fig. 1, §2.1, §4.2).
//!
//! OLTP-Bench launches standard monitoring tools (dstat [7]) next to the
//! DBMS and streams system metrics in real time. Our system under test is
//! the embedded engine, so the monitor samples its internal counters at a
//! fixed tick and converts the deltas into dstat-like rows: CPU busy share,
//! IO ops/s, lock waits/s, WAL throughput, buffer hit rate. A saturation
//! detector implements the §4.2 loop ("the user could lower the percentage
//! of write-intensive transactions if the disk IO activity seems to
//! saturate").

use std::sync::Arc;

use bp_util::sync::Mutex;

use bp_storage::{Database, MetricsSnapshot};
use bp_util::clock::{Micros, SharedClock, MICROS_PER_SEC};

/// One monitoring sample (a dstat output row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSample {
    /// Sample time (µs since monitor start).
    pub t_us: Micros,
    /// Fraction of the interval the engine spent doing work, per worker-
    /// equivalent (can exceed 1.0 with many workers).
    pub cpu_busy: f64,
    /// Simulated IO reads per second.
    pub io_reads_per_s: f64,
    /// Simulated IO writes per second.
    pub io_writes_per_s: f64,
    /// Lock waits per second.
    pub lock_waits_per_s: f64,
    /// Share of the interval spent waiting on locks (per worker-equivalent).
    pub lock_wait_share: f64,
    /// Deadlocks (wait-die kills) per second.
    pub deadlocks_per_s: f64,
    /// Commits per second.
    pub commits_per_s: f64,
    /// Aborts per second.
    pub aborts_per_s: f64,
    /// WAL bytes per second.
    pub wal_bytes_per_s: f64,
    /// Buffer pool hit ratio over the interval.
    pub buf_hit_ratio: f64,
    /// Active transactions at sample time.
    pub active_txns: i64,
}

/// Which resource looks saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Saturation {
    None,
    Cpu,
    Io,
    Locks,
}

impl Saturation {
    pub fn name(&self) -> &'static str {
        match self {
            Saturation::None => "none",
            Saturation::Cpu => "cpu",
            Saturation::Io => "io",
            Saturation::Locks => "locks",
        }
    }
}

/// Thresholds for the saturation detector.
#[derive(Debug, Clone, Copy)]
pub struct SaturationThresholds {
    pub cpu_busy: f64,
    pub io_per_s: f64,
    pub lock_wait_share: f64,
}

impl Default for SaturationThresholds {
    fn default() -> Self {
        SaturationThresholds { cpu_busy: 0.85, io_per_s: 5_000.0, lock_wait_share: 0.4 }
    }
}

impl ResourceSample {
    /// Build a sample from a counter delta over an interval. Tolerates
    /// degenerate inputs — a zero-length interval is clamped to 1µs and a
    /// raced (saturated-to-zero) delta yields all-zero rates — so every
    /// field is always finite.
    pub fn from_delta(t_us: Micros, dt_us: Micros, d: &MetricsSnapshot) -> ResourceSample {
        let dt_us = dt_us.max(1);
        let dt_s = dt_us as f64 / MICROS_PER_SEC as f64;
        ResourceSample {
            t_us,
            cpu_busy: d.busy_micros as f64 / dt_us as f64,
            io_reads_per_s: d.io_reads as f64 / dt_s,
            io_writes_per_s: d.io_writes as f64 / dt_s,
            lock_waits_per_s: d.lock_waits as f64 / dt_s,
            lock_wait_share: d.lock_wait_micros as f64 / dt_us as f64,
            deadlocks_per_s: d.deadlocks as f64 / dt_s,
            commits_per_s: d.commits as f64 / dt_s,
            aborts_per_s: d.aborts as f64 / dt_s,
            wal_bytes_per_s: d.wal_bytes as f64 / dt_s,
            buf_hit_ratio: d.hit_ratio(),
            active_txns: d.active_txns,
        }
    }

    /// True when every field is a finite number (no NaN/Inf).
    pub fn is_finite(&self) -> bool {
        self.cpu_busy.is_finite()
            && self.io_reads_per_s.is_finite()
            && self.io_writes_per_s.is_finite()
            && self.lock_waits_per_s.is_finite()
            && self.lock_wait_share.is_finite()
            && self.deadlocks_per_s.is_finite()
            && self.commits_per_s.is_finite()
            && self.aborts_per_s.is_finite()
            && self.wal_bytes_per_s.is_finite()
            && self.buf_hit_ratio.is_finite()
    }

    /// Classify the dominant saturated resource, if any.
    pub fn saturation(&self, th: &SaturationThresholds) -> Saturation {
        if self.lock_wait_share >= th.lock_wait_share {
            Saturation::Locks
        } else if self.io_reads_per_s + self.io_writes_per_s >= th.io_per_s {
            Saturation::Io
        } else if self.cpu_busy >= th.cpu_busy {
            Saturation::Cpu
        } else {
            Saturation::None
        }
    }

    /// Render as a dstat-like text row.
    pub fn to_row(&self) -> String {
        format!(
            "{:>8.1}s cpu={:>5.1}% io_r={:>7.0}/s io_w={:>7.0}/s lkw={:>6.0}/s dlk={:>4.0}/s \
             cmt={:>7.0}/s abt={:>5.0}/s wal={:>8.0}B/s hit={:>5.1}% act={}",
            self.t_us as f64 / MICROS_PER_SEC as f64,
            self.cpu_busy * 100.0,
            self.io_reads_per_s,
            self.io_writes_per_s,
            self.lock_waits_per_s,
            self.deadlocks_per_s,
            self.commits_per_s,
            self.aborts_per_s,
            self.wal_bytes_per_s,
            self.buf_hit_ratio * 100.0,
            self.active_txns,
        )
    }
}

/// CSV header matching [`Monitor::to_csv`].
pub const CSV_HEADER: &str =
    "t_s,cpu_busy,io_reads_per_s,io_writes_per_s,lock_waits_per_s,lock_wait_share,deadlocks_per_s,commits_per_s,aborts_per_s,wal_bytes_per_s,buf_hit_ratio,active_txns";

/// Samples the engine's counters at a fixed interval.
pub struct Monitor {
    db: Arc<Database>,
    clock: SharedClock,
    start: Micros,
    last: Mutex<(Micros, MetricsSnapshot)>,
    samples: Mutex<Vec<ResourceSample>>,
    thresholds: SaturationThresholds,
    last_saturation: Mutex<Saturation>,
}

impl Monitor {
    pub fn new(db: Arc<Database>, clock: SharedClock) -> Monitor {
        let start = clock.now();
        let snap = db.metrics().snapshot();
        Monitor {
            db,
            clock,
            start,
            last: Mutex::new((start, snap)),
            samples: Mutex::new(Vec::new()),
            thresholds: SaturationThresholds::default(),
            last_saturation: Mutex::new(Saturation::None),
        }
    }

    /// Override the saturation-detector thresholds (builder style).
    pub fn with_thresholds(mut self, thresholds: SaturationThresholds) -> Monitor {
        self.thresholds = thresholds;
        self
    }

    /// Take one sample covering the interval since the previous tick.
    pub fn tick(&self) -> ResourceSample {
        let now = self.clock.now();
        let snap = self.db.metrics().snapshot();
        let mut last = self.last.lock();
        let (last_t, last_snap) = *last;
        let dt_us = now.saturating_sub(last_t);
        let d = snap.delta(&last_snap);
        *last = (now, snap);
        drop(last);

        let sample = ResourceSample::from_delta(now - self.start, dt_us, &d);
        self.samples.lock().push(sample);
        self.note_saturation(&sample);
        sample
    }

    /// Journal a `saturation_change` event when the classification flips
    /// between ticks (§4.2's "seems to saturate" signal as a discrete,
    /// timestamped fact the doctor can cite).
    fn note_saturation(&self, sample: &ResourceSample) {
        let now = sample.saturation(&self.thresholds);
        let mut prev = self.last_saturation.lock();
        if *prev == now {
            return;
        }
        let from = *prev;
        *prev = now;
        drop(prev);
        let sev = if now == Saturation::None {
            bp_obs::Severity::Info
        } else {
            bp_obs::Severity::Warn
        };
        self.db.journal().emit_with(sev, "monitor", "saturation_change", || {
            (
                format!("saturation: {} -> {}", from.name(), now.name()),
                vec![
                    ("from", from.name().to_string()),
                    ("to", now.name().to_string()),
                ],
            )
        });
    }

    /// All samples collected so far.
    pub fn samples(&self) -> Vec<ResourceSample> {
        self.samples.lock().clone()
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<ResourceSample> {
        self.samples.lock().last().copied()
    }

    /// Export all samples as CSV (with header).
    pub fn to_csv(&self) -> String {
        let samples = self.samples.lock();
        let mut out = String::with_capacity(samples.len() * 96 + CSV_HEADER.len());
        out.push_str(CSV_HEADER);
        out.push('\n');
        for s in samples.iter() {
            out.push_str(&format!(
                "{:.3},{:.4},{:.1},{:.1},{:.1},{:.4},{:.1},{:.1},{:.1},{:.1},{:.4},{}\n",
                s.t_us as f64 / MICROS_PER_SEC as f64,
                s.cpu_busy,
                s.io_reads_per_s,
                s.io_writes_per_s,
                s.lock_waits_per_s,
                s.lock_wait_share,
                s.deadlocks_per_s,
                s.commits_per_s,
                s.aborts_per_s,
                s.wal_bytes_per_s,
                s.buf_hit_ratio,
                s.active_txns,
            ));
        }
        out
    }

    /// Spawn a background thread sampling every `interval_us` until the
    /// returned guard is dropped.
    pub fn spawn(self: &Arc<Self>, interval_us: Micros) -> MonitorGuard {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let me = self.clone();
        let handle = std::thread::Builder::new()
            .name("bp-monitor".into())
            .spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                    me.clock.sleep(interval_us);
                    me.tick();
                }
            })
            .expect("spawn monitor");
        MonitorGuard { stop, handle: Some(handle) }
    }
}

impl bp_obs::MetricsSource for Monitor {
    /// Expose the latest dstat-style sample as gauges. Rates are window
    /// rates over the last tick interval, not lifetime averages; when no
    /// tick has fired yet nothing is emitted.
    fn collect(&self, buf: &mut bp_obs::MetricsBuf) {
        let Some(s) = self.latest() else { return };
        let rows: [(&str, &str, f64); 10] = [
            ("bp_monitor_cpu_busy", "Busy share of the last interval per worker-equivalent", s.cpu_busy),
            ("bp_monitor_io_reads_per_s", "Simulated IO reads per second", s.io_reads_per_s),
            ("bp_monitor_io_writes_per_s", "Simulated IO writes per second", s.io_writes_per_s),
            ("bp_monitor_lock_waits_per_s", "Lock waits per second", s.lock_waits_per_s),
            ("bp_monitor_lock_wait_share", "Share of the interval spent waiting on locks", s.lock_wait_share),
            ("bp_monitor_deadlocks_per_s", "Wait-die kills per second", s.deadlocks_per_s),
            ("bp_monitor_commits_per_s", "Commits per second", s.commits_per_s),
            ("bp_monitor_wal_bytes_per_s", "WAL bytes per second", s.wal_bytes_per_s),
            ("bp_monitor_buf_hit_ratio", "Buffer pool hit ratio over the interval", s.buf_hit_ratio),
            ("bp_monitor_active_txns", "Active transactions at sample time", s.active_txns as f64),
        ];
        for (name, help, v) in rows {
            buf.gauge(name, help, &[], v);
        }
    }
}

/// Stops the background monitor thread on drop.
pub struct MonitorGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for MonitorGuard {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_sql::Connection;
    use bp_storage::Personality;
    use bp_util::clock::wall_clock;

    fn db_with_work() -> Arc<Database> {
        let db = Database::new(Personality::test());
        let mut c = Connection::open(&db);
        c.execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);").unwrap();
        for i in 0..100 {
            c.execute("INSERT INTO t VALUES (?, 0)", &[bp_storage::Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn tick_reports_rates() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db.clone(), clock.clone());
        let mut c = Connection::open(&db);
        for i in 0..50 {
            c.execute("UPDATE t SET v = v + 1 WHERE id = ?", &[bp_storage::Value::Int(i % 100)])
                .unwrap();
        }
        clock.sleep(10_000);
        let s = mon.tick();
        assert!(s.commits_per_s > 0.0);
        assert!(s.wal_bytes_per_s > 0.0);
        assert_eq!(mon.samples().len(), 1);
    }

    #[test]
    fn deltas_between_ticks() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db.clone(), clock.clone());
        clock.sleep(5_000);
        let quiet = mon.tick();
        assert_eq!(quiet.commits_per_s, 0.0, "no work since monitor start");
        let mut c = Connection::open(&db);
        c.execute("UPDATE t SET v = 1 WHERE id = 5", &[]).unwrap();
        clock.sleep(5_000);
        let busy = mon.tick();
        assert!(busy.commits_per_s > 0.0);
    }

    #[test]
    fn saturation_classification() {
        let th = SaturationThresholds::default();
        let mut s = ResourceSample {
            t_us: 0,
            cpu_busy: 0.1,
            io_reads_per_s: 0.0,
            io_writes_per_s: 0.0,
            lock_waits_per_s: 0.0,
            lock_wait_share: 0.0,
            deadlocks_per_s: 0.0,
            commits_per_s: 0.0,
            aborts_per_s: 0.0,
            wal_bytes_per_s: 0.0,
            buf_hit_ratio: 1.0,
            active_txns: 0,
        };
        assert_eq!(s.saturation(&th), Saturation::None);
        s.cpu_busy = 0.9;
        assert_eq!(s.saturation(&th), Saturation::Cpu);
        s.io_writes_per_s = 6_000.0;
        assert_eq!(s.saturation(&th), Saturation::Io);
        s.lock_wait_share = 0.5;
        assert_eq!(s.saturation(&th), Saturation::Locks);
    }

    #[test]
    fn csv_export() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db, clock.clone());
        clock.sleep(2_000);
        mon.tick();
        mon.tick();
        let csv = mon.to_csv();
        assert!(csv.starts_with("t_s,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn background_monitor_collects() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Arc::new(Monitor::new(db, clock));
        {
            let _guard = mon.spawn(5_000);
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
        assert!(mon.samples().len() >= 3, "{} samples", mon.samples().len());
        assert!(mon.latest().is_some());
    }

    #[test]
    fn first_sample_is_finite() {
        // First tick right after construction: tiny (possibly zero) interval
        // and zero delta must not produce NaN/Inf anywhere.
        let db = db_with_work();
        let (_sim, clock) = bp_util::clock::sim_clock();
        let mon = Monitor::new(db, clock);
        let s = mon.tick(); // sim clock has not advanced: dt == 0
        assert!(s.is_finite(), "non-finite field in {s:?}");
        assert_eq!(s.saturation(&SaturationThresholds::default()), Saturation::None);
    }

    #[test]
    fn zero_length_interval_is_finite() {
        let db = db_with_work();
        let (sim, clock) = bp_util::clock::sim_clock();
        let mon = Monitor::new(db.clone(), clock);
        sim.advance(5_000);
        mon.tick();
        // Second tick at the exact same sim instant: dt_us == 0.
        let mut c = Connection::open(&db);
        c.execute("UPDATE t SET v = 2 WHERE id = 1", &[]).unwrap();
        let s = mon.tick();
        assert!(s.is_finite(), "non-finite field in {s:?}");
        // The work done between ticks is still attributed, just over the
        // clamped 1µs window.
        assert!(s.commits_per_s > 0.0);
    }

    #[test]
    fn backwards_counters_saturate_to_zero_rates() {
        // Two snapshots taken concurrently with the data path can observe
        // individual counters going backwards relative to each other. The
        // saturating delta reads such a window as 0, and the sample built
        // from it must stay finite with no negative rates.
        let newer = MetricsSnapshot { commits: 10, io_reads: 5, ..Default::default() };
        let older = MetricsSnapshot { commits: 12, io_reads: 9, wal_bytes: 100, ..Default::default() };
        let d = newer.delta(&older);
        let s = ResourceSample::from_delta(1_000, 0, &d);
        assert!(s.is_finite(), "non-finite field in {s:?}");
        assert_eq!(s.commits_per_s, 0.0);
        assert_eq!(s.io_reads_per_s, 0.0);
        assert_eq!(s.wal_bytes_per_s, 0.0);
        assert_eq!(s.saturation(&SaturationThresholds::default()), Saturation::None);
    }

    #[test]
    fn metrics_source_exposes_latest_sample() {
        use bp_obs::{MetricsBuf, MetricsSource};
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db, clock.clone());
        let mut buf = MetricsBuf::new();
        mon.collect(&mut buf);
        assert!(buf.into_samples().is_empty(), "no tick yet, nothing to expose");
        clock.sleep(2_000);
        mon.tick();
        let mut buf = MetricsBuf::new();
        mon.collect(&mut buf);
        let samples = buf.into_samples();
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().any(|s| s.name == "bp_monitor_cpu_busy"));
    }

    #[test]
    fn saturation_crossings_journaled() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db.clone(), clock);
        let quiet = ResourceSample::from_delta(1_000, 1_000, &MetricsSnapshot::default());
        let mut locky = quiet;
        locky.lock_wait_share = 0.9;
        mon.note_saturation(&locky); // none -> locks
        mon.note_saturation(&locky); // unchanged: no event
        mon.note_saturation(&quiet); // locks -> none
        let events = db.journal().all();
        let sats: Vec<_> = events.iter().filter(|e| e.kind == "saturation_change").collect();
        assert_eq!(sats.len(), 2, "{events:?}");
        assert_eq!(sats[0].severity, bp_obs::Severity::Warn);
        assert!(sats[0].fields.contains(&("to", "locks".to_string())));
        assert_eq!(sats[1].severity, bp_obs::Severity::Info);
        assert!(sats[1].fields.contains(&("from", "locks".to_string())));
    }

    #[test]
    fn row_rendering() {
        let db = db_with_work();
        let clock = wall_clock();
        let mon = Monitor::new(db, clock.clone());
        clock.sleep(2_000);
        let row = mon.tick().to_row();
        assert!(row.contains("cpu="));
        assert!(row.contains("wal="));
    }
}
