//! bp-doctor: automated "what is my bottleneck" analysis.
//!
//! A pure pass over a [`Report`] (telemetry sample ring + event journal):
//! no locks, no clocks, no side effects — the same report always yields
//! the same findings, so the doctor is unit-testable on synthetic
//! timelines and replayable on exported artifacts.
//!
//! Per sample window the doctor computes class scores from the engine
//! counters (normalized per committed transaction, against a robust
//! baseline taken from the healthiest quartile of the run), picks the
//! dominant class, folds consecutive same-class windows into one finding,
//! and attaches the nearest preceding journal event as the probable
//! cause. Rules (also in DESIGN.md §12):
//!
//! | class              | trigger                                                        |
//! |--------------------|----------------------------------------------------------------|
//! | `shed_dominated`   | shed share > 30% of arrivals, or the breaker is not closed     |
//! | `lock_contention`  | deadlocks/txn > 0.1, or lock_wait_us/txn > 3× baseline (≥1ms)  |
//! | `io_saturation`    | fsync_us/txn > 3× baseline (≥1ms), or IO rate > 3× baseline    |
//! | `buffer_thrash`    | buffer miss ratio > 50% with an elevated read-IO rate          |
//! | `queue_backpressure` | queue backlog > 2 s of delivered throughput                  |
//! | `rate_gate_limit`  | tail healthy, errors low, delivered ≈ commanded finite rate    |
//!
//! A window with none of these and an unremarkable tail is healthy.

use bp_util::json::Json;

use crate::journal::Event;
use crate::recorder::{Report, TelemetrySample};

/// The bottleneck classes the doctor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    LockContention,
    IoSaturation,
    BufferThrash,
    RateGateLimit,
    QueueBackpressure,
    ShedDominated,
    CrashRecovery,
    StragglerNode,
    /// The tail sampler's span budget is too small for the retention rate.
    TraceBudget,
}

impl Bottleneck {
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::LockContention => "lock_contention",
            Bottleneck::IoSaturation => "io_saturation",
            Bottleneck::BufferThrash => "buffer_thrash",
            Bottleneck::RateGateLimit => "rate_gate_limit",
            Bottleneck::QueueBackpressure => "queue_backpressure",
            Bottleneck::ShedDominated => "shed_dominated",
            Bottleneck::CrashRecovery => "crash_recovery",
            Bottleneck::StragglerNode => "straggler_node",
            Bottleneck::TraceBudget => "trace_budget",
        }
    }
}

/// One diagnosed window: the dominant bottleneck, its evidence, and the
/// journal event that most plausibly caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub bottleneck: Bottleneck,
    /// Window the finding covers (journal-aligned µs).
    pub start_us: u64,
    pub end_us: u64,
    /// Dominance score; findings are returned ranked by it, descending.
    pub score: f64,
    /// Human-readable evidence, e.g. `"p99 rose 8.2x at t=12s; lock_wait_us/txn rose 11.0x"`.
    pub evidence: String,
    /// Seq of the causal journal event, if one precedes the window onset.
    pub causal_event: Option<u64>,
    /// Kind of the causal event (`chaos_armed`, `phase_change`, …).
    pub causal_kind: Option<&'static str>,
}

impl Finding {
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("bottleneck", self.bottleneck.name())
            .set("start_us", self.start_us)
            .set("end_us", self.end_us)
            .set("score", round2(self.score))
            .set("evidence", self.evidence.as_str());
        if let Some(seq) = self.causal_event {
            j = j.set("causal_event", seq);
            if let Some(kind) = self.causal_kind {
                j = j.set("causal_kind", kind);
            }
        }
        j
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Per-txn and per-second signals of one sample, baseline-free.
#[derive(Debug, Clone, Copy)]
struct Signals {
    p99_us: f64,
    lock_per_txn: f64,
    fsync_per_txn: f64,
    deadlocks_per_txn: f64,
    io_reads_per_s: f64,
    miss_ratio: f64,
}

impl Signals {
    fn of(s: &TelemetrySample, interval_us: u64) -> Signals {
        let txns = s.commits.max(1) as f64;
        let secs = (interval_us.max(1) as f64) / 1e6;
        let accesses = (s.buf_hits + s.buf_misses).max(1) as f64;
        Signals {
            p99_us: s.p99_us as f64,
            lock_per_txn: s.lock_wait_us as f64 / txns,
            fsync_per_txn: s.fsync_us as f64 / txns,
            deadlocks_per_txn: s.deadlocks as f64 / txns,
            io_reads_per_s: s.io_reads as f64 / secs,
            miss_ratio: s.buf_misses as f64 / accesses,
        }
    }
}

/// Robust baseline: the 25th-percentile value of `f` across samples —
/// "what this run looks like in its healthiest quartile".
fn baseline(samples: &[TelemetrySample], interval_us: u64, f: impl Fn(&Signals) -> f64) -> f64 {
    let mut vals: Vec<f64> = samples
        .iter()
        .map(|s| f(&Signals::of(s, interval_us)))
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(f64::total_cmp);
    vals[vals.len() / 4]
}

/// The per-window verdict before findings are folded.
#[derive(Debug, Clone, Copy)]
struct WindowVerdict {
    class: Option<Bottleneck>,
    score: f64,
}

fn classify(s: &TelemetrySample, sig: &Signals, base: &Baselines) -> WindowVerdict {
    // Ratios vs the healthy baseline; a floor keeps tiny baselines from
    // inflating noise into 1000x "rises".
    let lock_rise = sig.lock_per_txn / base.lock_per_txn.max(200.0);
    let fsync_rise = sig.fsync_per_txn / base.fsync_per_txn.max(200.0);
    let io_rise = sig.io_reads_per_s / base.io_reads_per_s.max(10.0);

    let mut scored: Vec<(Bottleneck, f64)> = Vec::new();
    if s.shed_rate > 0.3 || s.breaker_state != 0 {
        scored.push((Bottleneck::ShedDominated, 2.0 + s.shed_rate * 4.0 + s.breaker_state as f64));
    }
    if sig.deadlocks_per_txn > 0.1 || (lock_rise > 3.0 && sig.lock_per_txn > 1_000.0) {
        scored.push((
            Bottleneck::LockContention,
            sig.deadlocks_per_txn * 10.0 + lock_rise.min(50.0),
        ));
    }
    if (fsync_rise > 3.0 && sig.fsync_per_txn > 1_000.0) || (io_rise > 3.0 && sig.miss_ratio < 0.5)
    {
        scored.push((Bottleneck::IoSaturation, fsync_rise.min(50.0) + io_rise.min(10.0) * 0.5));
    }
    if sig.miss_ratio > 0.5 && io_rise > 3.0 {
        scored.push((Bottleneck::BufferThrash, sig.miss_ratio * 4.0 + io_rise.min(20.0)));
    }
    if s.queue_depth as f64 > 2.0 * s.throughput.max(10.0) {
        scored.push((
            Bottleneck::QueueBackpressure,
            (s.queue_depth as f64 / s.throughput.max(10.0)).min(20.0),
        ));
    }
    // Rate-gate limit is the "everything is fine and the client is the
    // limiter" verdict: only when nothing above fired.
    if scored.is_empty()
        && s.rate.is_finite()
        && s.rate > 0.0
        && s.error_rate < 0.05
        && sig.p99_us < 2.0 * base.p99_us.max(100.0)
        && (s.throughput - s.rate).abs() <= s.rate * 0.1
    {
        scored.push((Bottleneck::RateGateLimit, 1.0));
    }

    match scored.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
        Some((class, score)) => WindowVerdict { class: Some(class), score },
        None => WindowVerdict { class: None, score: 0.0 },
    }
}

struct Baselines {
    p99_us: f64,
    lock_per_txn: f64,
    fsync_per_txn: f64,
    io_reads_per_s: f64,
}

/// Find the journal event that most plausibly caused a window starting at
/// `onset_us`: the latest event at or before the window's peak, no older
/// than two intervals before onset. Control-plane kinds win over noise.
fn causal_event(
    events: &[Event],
    onset_us: u64,
    peak_us: u64,
    interval_us: u64,
) -> Option<&Event> {
    const CAUSAL_KINDS: [&str; 10] = [
        "chaos_armed", "chaos_disarmed", "phase_change", "rate_change", "mixture_change",
        "slo_decision", "breaker_transition", "replay_launch", "server_crash",
        "recovery_complete",
    ];
    let earliest = onset_us.saturating_sub(2 * interval_us);
    let in_range =
        |e: &&Event| e.ts_us >= earliest && e.ts_us <= peak_us.saturating_add(interval_us);
    events
        .iter()
        .filter(in_range)
        .filter(|e| CAUSAL_KINDS.contains(&e.kind))
        .max_by_key(|e| (e.ts_us, e.seq))
        .or_else(|| events.iter().filter(in_range).max_by_key(|e| (e.ts_us, e.seq)))
}

/// Crash → recovery spans are event-driven, not counter-driven: a dead
/// engine produces unremarkable (mostly zero) telemetry windows, so the
/// doctor reads the `server_crash` / `recovery_complete` journal pairs
/// directly. One finding per crash; an unrecovered crash spans to the end
/// of the report.
fn crash_findings(report: &Report) -> Vec<Finding> {
    let field = |e: &Event, name: &str| {
        e.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v.clone())
    };
    let report_end = report
        .samples
        .last()
        .map(|s| s.t_us + report.interval_us)
        .or_else(|| report.events.last().map(|e| e.ts_us));
    report
        .events
        .iter()
        .filter(|e| e.kind == "server_crash")
        .map(|crash| {
            let recovered = report
                .events
                .iter()
                .find(|e| e.kind == "recovery_complete" && e.ts_us >= crash.ts_us);
            let end_us = recovered
                .map(|e| e.ts_us)
                .or(report_end)
                .unwrap_or(crash.ts_us);
            let point = field(crash, "crashpoint").unwrap_or_else(|| "unknown".to_string());
            let mut evidence = match recovered {
                Some(r) => format!(
                    "engine crashed at {point} and recovered in {:.0}ms (replayed {} redo records, {} torn)",
                    (end_us.saturating_sub(crash.ts_us)) as f64 / 1e3,
                    field(r, "replayed").unwrap_or_else(|| "?".to_string()),
                    field(r, "torn").unwrap_or_else(|| "0".to_string()),
                ),
                None => format!("engine crashed at {point} and has not recovered"),
            };
            cite_trace(&mut evidence, crash);
            Finding {
                bottleneck: Bottleneck::CrashRecovery,
                start_us: crash.ts_us,
                end_us,
                // Outranks every counter-driven class: a dead engine is the
                // bottleneck no matter what else the windows show.
                score: 60.0,
                evidence,
                causal_event: Some(crash.seq),
                causal_kind: Some("server_crash"),
            }
        })
        .collect()
}

/// Event-driven trace-budget findings: the span recorder journals a
/// rate-limited `trace_evict` whenever the tail sampler's budget ring
/// overwrites a retained span. All evict events fold into one finding
/// spanning the episode — the fix (a larger `spanbudget`) is the same no
/// matter how often it fired.
fn trace_findings(report: &Report) -> Vec<Finding> {
    let field = |e: &Event, name: &str| {
        e.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v.clone())
    };
    let evicts: Vec<&Event> =
        report.events.iter().filter(|e| e.kind == "trace_evict").collect();
    let (Some(first), Some(last)) = (evicts.first(), evicts.last()) else {
        return Vec::new();
    };
    let evicted = field(last, "evicted").unwrap_or_else(|| "?".to_string());
    let budget = field(last, "budget").unwrap_or_else(|| "?".to_string());
    vec![Finding {
        bottleneck: Bottleneck::TraceBudget,
        start_us: first.ts_us,
        end_us: last.ts_us.max(first.ts_us + report.interval_us),
        // A hint, not a bottleneck: evidence quality suffers, the
        // workload doesn't. Ranks below every performance class.
        score: 20.0,
        evidence: format!(
            "tail sampler evicted {evicted} retained spans (budget {budget}); \
             raise <spanbudget> or lower the sample ratio to keep slow-request traces"
        ),
        causal_event: Some(first.seq),
        causal_kind: Some("trace_evict"),
    }]
}

/// If the causal event carries a `trace_id` field, cite it in the
/// evidence so the finding links straight to `GET /trace/{id}`.
fn cite_trace(evidence: &mut String, e: &Event) {
    if let Some((_, id)) = e.fields.iter().find(|(k, _)| *k == "trace_id") {
        use std::fmt::Write as _;
        let _ = write!(evidence, "; trace {id}");
    }
}

/// Diagnose a report: classify each window, fold consecutive same-class
/// windows into findings, attach causal events, rank by score descending.
pub fn diagnose(report: &Report) -> Vec<Finding> {
    let samples = &report.samples;
    if samples.is_empty() {
        let mut findings = crash_findings(report);
        findings.extend(straggler_findings(report));
        findings.extend(trace_findings(report));
        findings.sort_by(|a, b| b.score.total_cmp(&a.score));
        return findings;
    }
    let interval = report.interval_us.max(1);
    let base = Baselines {
        p99_us: baseline(samples, interval, |s| s.p99_us),
        lock_per_txn: baseline(samples, interval, |s| s.lock_per_txn),
        fsync_per_txn: baseline(samples, interval, |s| s.fsync_per_txn),
        io_reads_per_s: baseline(samples, interval, |s| s.io_reads_per_s),
    };

    let verdicts: Vec<(usize, WindowVerdict, Signals)> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sig = Signals::of(s, interval);
            (i, classify(s, &sig, &base), sig)
        })
        .collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut i = 0;
    while i < verdicts.len() {
        let Some(class) = verdicts[i].1.class else {
            i += 1;
            continue;
        };
        // Fold the run of consecutive windows with the same class.
        let start = i;
        let mut end = i;
        while end + 1 < verdicts.len() && verdicts[end + 1].1.class == Some(class) {
            end += 1;
        }
        i = end + 1;

        let (peak_idx, peak) = (start..=end)
            .map(|k| (k, &verdicts[k]))
            .max_by(|a, b| a.1 .1.score.total_cmp(&b.1 .1.score))
            .expect("non-empty run");
        let peak_sample = &samples[peak_idx];
        let peak_sig = &peak.2;
        let start_us = samples[start].t_us;
        let end_us = samples[end].t_us + interval;

        let p99_rise = peak_sig.p99_us / base.p99_us.max(100.0);
        let mut evidence = format!(
            "p99 {} at t={:.0}s",
            if p99_rise >= 1.5 { format!("rose {p99_rise:.1}x") } else { "steady".to_string() },
            peak_sample.t_us as f64 / 1e6,
        );
        let detail = match class {
            Bottleneck::LockContention => format!(
                "lock_wait_us/txn rose {:.1}x ({:.0}us), deadlocks/txn {:.2}",
                peak_sig.lock_per_txn / base.lock_per_txn.max(200.0),
                peak_sig.lock_per_txn,
                peak_sig.deadlocks_per_txn,
            ),
            Bottleneck::IoSaturation => format!(
                "fsync_us/txn rose {:.1}x ({:.0}us), io_reads/s {:.0}",
                peak_sig.fsync_per_txn / base.fsync_per_txn.max(200.0),
                peak_sig.fsync_per_txn,
                peak_sig.io_reads_per_s,
            ),
            Bottleneck::BufferThrash => format!(
                "buffer miss ratio {:.0}%, io_reads/s rose {:.1}x",
                peak_sig.miss_ratio * 100.0,
                peak_sig.io_reads_per_s / base.io_reads_per_s.max(10.0),
            ),
            Bottleneck::QueueBackpressure => format!(
                "queue backlog {} vs {:.0} tx/s delivered",
                peak_sample.queue_depth, peak_sample.throughput,
            ),
            Bottleneck::ShedDominated => format!(
                "shed share {:.0}%, breaker state {}",
                peak_sample.shed_rate * 100.0, peak_sample.breaker_state,
            ),
            Bottleneck::RateGateLimit => format!(
                "delivered {:.0} tx/s ~= commanded {:.0} tx/s with healthy tail",
                peak_sample.throughput, peak_sample.rate,
            ),
            // Crash, straggler, and trace-budget findings are synthesized
            // from journal events, never from window classification.
            Bottleneck::CrashRecovery | Bottleneck::StragglerNode | Bottleneck::TraceBudget => {
                unreachable!("event-driven class")
            }
        };
        evidence.push_str("; ");
        evidence.push_str(&detail);

        let cause = causal_event(&report.events, start_us, peak_sample.t_us, interval);
        if let Some(e) = cause {
            use std::fmt::Write as _;
            let _ = write!(
                evidence,
                "; preceded by {} event #{} ({})",
                e.kind,
                e.seq,
                e.message
            );
        }
        findings.push(Finding {
            bottleneck: class,
            start_us,
            end_us,
            score: peak.1.score,
            evidence,
            causal_event: cause.map(|e| e.seq),
            causal_kind: cause.map(|e| e.kind),
        });
    }

    findings.extend(crash_findings(report));
    findings.extend(straggler_findings(report));
    findings.extend(trace_findings(report));
    findings.sort_by(|a, b| b.score.total_cmp(&a.score));
    findings
}

/// Event-driven straggler findings: the cluster coordinator emits a
/// `node_straggler` event whenever one live agent's reported window
/// latency dominates the merged cluster window. Consecutive events for
/// the same node fold into one finding spanning the whole episode.
fn straggler_findings(report: &Report) -> Vec<Finding> {
    let field = |e: &Event, name: &str| {
        e.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v.clone())
    };
    let events: Vec<&Event> =
        report.events.iter().filter(|e| e.kind == "node_straggler").collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let first = events[i];
        let node = field(first, "node").unwrap_or_else(|| "unknown".to_string());
        let mut last = first;
        while i + 1 < events.len()
            && field(events[i + 1], "node").as_deref() == Some(node.as_str())
        {
            i += 1;
            last = events[i];
        }
        i += 1;
        let p99 = field(last, "p99_us").unwrap_or_else(|| "?".to_string());
        let cluster = field(last, "cluster_p99_us").unwrap_or_else(|| "?".to_string());
        let mut evidence =
            format!("node {node} window p99 {p99}us dominates cluster median {cluster}us");
        cite_trace(&mut evidence, last);
        findings.push(Finding {
            bottleneck: Bottleneck::StragglerNode,
            start_us: first.ts_us,
            end_us: last.ts_us.max(first.ts_us + report.interval_us),
            // Above every counter-driven class but below a dead engine:
            // one slow node drags the whole merged tail.
            score: 40.0,
            evidence,
            causal_event: Some(first.seq),
            causal_kind: Some("node_straggler"),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventJournal, Severity};
    use crate::recorder::TelemetryRecorder;

    /// A healthy 300-tx/s window.
    fn healthy(t_s: u64) -> TelemetrySample {
        TelemetrySample {
            t_us: t_s * 1_000_000,
            rate: 300.0,
            throughput: 297.0,
            p50_us: 150,
            p99_us: 800,
            error_rate: 0.0,
            shed_rate: 0.0,
            breaker_state: 0,
            queue_depth: 2,
            commits: 297,
            lock_waits: 5,
            lock_wait_us: 20_000,
            deadlocks: 0,
            io_reads: 30,
            io_writes: 5,
            wal_fsyncs: 297,
            wal_bytes: 29_000,
            fsync_us: 1_500,
            buf_hits: 2_000,
            buf_misses: 20,
            busy_us: 150_000,
        }
    }

    fn report(samples: Vec<TelemetrySample>, events: Vec<Event>) -> Report {
        Report { version: 1, interval_us: 1_000_000, samples, events }
    }

    #[test]
    fn quiet_run_reads_as_rate_gated_only() {
        let findings = diagnose(&report((0..6).map(healthy).collect(), vec![]));
        assert!(findings.iter().all(|f| f.bottleneck == Bottleneck::RateGateLimit), "{findings:?}");
    }

    #[test]
    fn lock_storm_classified_with_causal_event() {
        let mut samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        for t in 4..8u64 {
            let mut s = healthy(t);
            s.p99_us = 9_000;
            s.deadlocks = 150;
            s.lock_wait_us = 400_000;
            s.commits = 180;
            s.throughput = 180.0;
            s.error_rate = 0.3;
            samples.push(s);
        }
        // The causal event fires just before the storm window.
        let event = Event {
            seq: 142,
            ts_us: 3_800_000,
            severity: Severity::Warn,
            source: "chaos",
            kind: "chaos_armed",
            message: "plan lock-storm armed".into(),
            fields: vec![],
        };
        let findings = diagnose(&report(samples, vec![event]));
        let top = &findings[0];
        assert_eq!(top.bottleneck, Bottleneck::LockContention, "{findings:?}");
        assert_eq!(top.causal_event, Some(142));
        assert_eq!(top.causal_kind, Some("chaos_armed"));
        assert!(top.start_us >= 3_000_000 && top.start_us <= 5_000_000, "{top:?}");
        assert!(top.evidence.contains("lock_wait_us/txn"), "{}", top.evidence);
        assert!(top.evidence.contains("event #142"), "{}", top.evidence);
    }

    #[test]
    fn fsync_stall_classified_as_io() {
        let mut samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        for t in 4..8u64 {
            let mut s = healthy(t);
            s.p99_us = 30_000;
            s.fsync_us = 2_500_000;
            s.commits = 90;
            s.throughput = 90.0;
            samples.push(s);
        }
        let findings = diagnose(&report(samples, vec![]));
        assert_eq!(findings[0].bottleneck, Bottleneck::IoSaturation, "{findings:?}");
        assert!(findings[0].evidence.contains("fsync_us/txn"), "{}", findings[0].evidence);
        assert!(findings[0].causal_event.is_none(), "no events -> no citation");
    }

    #[test]
    fn buffer_thrash_and_shed_classified() {
        let mut samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        for t in 4..6u64 {
            let mut s = healthy(t);
            s.buf_hits = 300;
            s.buf_misses = 1_700;
            s.io_reads = 1_700;
            s.p99_us = 5_000;
            samples.push(s);
        }
        for t in 6..8u64 {
            let mut s = healthy(t);
            s.shed_rate = 0.6;
            s.breaker_state = 1;
            s.throughput = 90.0;
            samples.push(s);
        }
        let findings = diagnose(&report(samples, vec![]));
        let classes: Vec<Bottleneck> = findings.iter().map(|f| f.bottleneck).collect();
        assert!(classes.contains(&Bottleneck::BufferThrash), "{findings:?}");
        assert!(classes.contains(&Bottleneck::ShedDominated), "{findings:?}");
    }

    #[test]
    fn queue_backpressure_classified() {
        let mut samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        for t in 4..6u64 {
            let mut s = healthy(t);
            s.queue_depth = 5_000;
            samples.push(s);
        }
        let findings = diagnose(&report(samples, vec![]));
        assert_eq!(findings[0].bottleneck, Bottleneck::QueueBackpressure, "{findings:?}");
    }

    #[test]
    fn consecutive_windows_fold_into_one_finding() {
        let mut samples: Vec<TelemetrySample> = (0..3).map(healthy).collect();
        for t in 3..7u64 {
            let mut s = healthy(t);
            s.deadlocks = 120;
            s.lock_wait_us = 500_000;
            s.p99_us = 8_000;
            samples.push(s);
        }
        let findings = diagnose(&report(samples, vec![]));
        let locks: Vec<&Finding> =
            findings.iter().filter(|f| f.bottleneck == Bottleneck::LockContention).collect();
        assert_eq!(locks.len(), 1, "4 windows fold into 1: {findings:?}");
        assert_eq!(locks[0].start_us, 3_000_000);
        assert_eq!(locks[0].end_us, 7_000_000);
    }

    #[test]
    fn empty_report_yields_nothing() {
        assert!(diagnose(&Report::default()).is_empty());
    }

    #[test]
    fn crash_and_recovery_span_reported_from_events() {
        let samples: Vec<TelemetrySample> = (0..6).map(healthy).collect();
        let crash = Event {
            seq: 7,
            ts_us: 2_500_000,
            severity: Severity::Error,
            source: "storage",
            kind: "server_crash",
            message: "server crashed at after_append_before_fsync (lsn 42)".into(),
            fields: vec![
                ("crashpoint", "after_append_before_fsync".to_string()),
                ("lsn", "42".to_string()),
            ],
        };
        let recovered = Event {
            seq: 9,
            ts_us: 2_540_000,
            severity: Severity::Warn,
            source: "storage",
            kind: "recovery_complete",
            message: "recovery complete".into(),
            fields: vec![
                ("replayed", "41".to_string()),
                ("torn", "1".to_string()),
            ],
        };
        let findings = diagnose(&report(samples, vec![crash.clone(), recovered]));
        let top = &findings[0];
        assert_eq!(top.bottleneck, Bottleneck::CrashRecovery, "{findings:?}");
        assert_eq!(top.start_us, 2_500_000);
        assert_eq!(top.end_us, 2_540_000);
        assert_eq!(top.causal_event, Some(7));
        assert_eq!(top.causal_kind, Some("server_crash"));
        assert!(top.evidence.contains("after_append_before_fsync"), "{}", top.evidence);
        assert!(top.evidence.contains("replayed 41"), "{}", top.evidence);

        // An unrecovered crash spans to the end of the report, and a
        // sample-free report still surfaces it.
        let findings = diagnose(&report(vec![], vec![crash]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].bottleneck, Bottleneck::CrashRecovery);
        assert!(findings[0].evidence.contains("has not recovered"), "{}", findings[0].evidence);
    }

    #[test]
    fn straggler_events_become_findings() {
        let straggle = |seq: u64, ts_us: u64, node: &str| Event {
            seq,
            ts_us,
            severity: Severity::Warn,
            source: "cluster",
            kind: "node_straggler",
            message: format!("node {node} lags the cluster"),
            fields: vec![
                ("node", node.to_string()),
                ("p99_us", "45000".to_string()),
                ("cluster_p99_us", "900".to_string()),
            ],
        };
        // Healthy windows + a straggler episode: consecutive events for
        // the same node fold into one finding.
        let samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        let events = vec![
            straggle(3, 1_200_000, "agent-2"),
            straggle(4, 2_200_000, "agent-2"),
            straggle(5, 3_200_000, "agent-1"),
        ];
        let findings = diagnose(&report(samples, events.clone()));
        let stragglers: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.bottleneck == Bottleneck::StragglerNode)
            .collect();
        assert_eq!(stragglers.len(), 2, "{findings:?}");
        let top = stragglers[0];
        assert_eq!(top.start_us, 1_200_000);
        assert_eq!(top.end_us, 2_200_000);
        assert_eq!(top.causal_event, Some(3));
        assert_eq!(top.causal_kind, Some("node_straggler"));
        assert!(top.evidence.contains("agent-2"), "{}", top.evidence);
        assert!(top.evidence.contains("45000us"), "{}", top.evidence);
        assert_eq!(top.to_json().get("bottleneck").and_then(Json::as_str), Some("straggler_node"));

        // A sample-free report (the coordinator has no telemetry recorder)
        // still surfaces stragglers.
        let findings = diagnose(&report(vec![], events));
        assert!(findings.iter().any(|f| f.bottleneck == Bottleneck::StragglerNode));
    }

    #[test]
    fn trace_evict_events_become_budget_hint() {
        let evict = |seq: u64, ts_us: u64, evicted: &str| Event {
            seq,
            ts_us,
            severity: Severity::Warn,
            source: "obs",
            kind: "trace_evict",
            message: format!("span budget full: {evicted} retained spans evicted"),
            fields: vec![
                ("evicted", evicted.to_string()),
                ("budget", "512".to_string()),
            ],
        };
        let samples: Vec<TelemetrySample> = (0..4).map(healthy).collect();
        let events = vec![evict(2, 1_100_000, "40"), evict(3, 2_100_000, "230")];
        let findings = diagnose(&report(samples, events.clone()));
        let hints: Vec<&Finding> =
            findings.iter().filter(|f| f.bottleneck == Bottleneck::TraceBudget).collect();
        assert_eq!(hints.len(), 1, "all evicts fold into one hint: {findings:?}");
        let hint = hints[0];
        assert_eq!(hint.start_us, 1_100_000);
        assert_eq!(hint.end_us, 2_100_000);
        assert_eq!(hint.causal_kind, Some("trace_evict"));
        assert!(hint.evidence.contains("evicted 230"), "{}", hint.evidence);
        assert!(hint.evidence.contains("budget 512"), "{}", hint.evidence);
        assert!(hint.evidence.contains("spanbudget"), "{}", hint.evidence);
        assert_eq!(
            hint.to_json().get("bottleneck").and_then(Json::as_str),
            Some("trace_budget")
        );
        // Sample-free reports surface it too.
        assert!(diagnose(&report(vec![], events))
            .iter()
            .any(|f| f.bottleneck == Bottleneck::TraceBudget));
    }

    #[test]
    fn findings_cite_trace_ids_from_events() {
        let straggle = Event {
            seq: 5,
            ts_us: 1_200_000,
            severity: Severity::Warn,
            source: "cluster",
            kind: "node_straggler",
            message: "node n2 lags".into(),
            fields: vec![
                ("node", "n2".to_string()),
                ("p99_us", "45000".to_string()),
                ("cluster_p99_us", "900".to_string()),
                ("trace_id", "00ab12cd34ef5678".to_string()),
            ],
        };
        let crash = Event {
            seq: 9,
            ts_us: 2_000_000,
            severity: Severity::Error,
            source: "storage",
            kind: "server_crash",
            message: "crashed".into(),
            fields: vec![
                ("crashpoint", "torn".to_string()),
                ("trace_id", "deadbeefdeadbeef".to_string()),
            ],
        };
        let findings = diagnose(&report(vec![], vec![straggle, crash]));
        let strag = findings.iter().find(|f| f.bottleneck == Bottleneck::StragglerNode).unwrap();
        assert!(strag.evidence.contains("trace 00ab12cd34ef5678"), "{}", strag.evidence);
        let cr = findings.iter().find(|f| f.bottleneck == Bottleneck::CrashRecovery).unwrap();
        assert!(cr.evidence.contains("trace deadbeefdeadbeef"), "{}", cr.evidence);
    }

    #[test]
    fn findings_render_json() {
        let mut samples: Vec<TelemetrySample> = (0..3).map(healthy).collect();
        let mut s = healthy(3);
        s.deadlocks = 150;
        s.lock_wait_us = 600_000;
        samples.push(s);
        let findings = diagnose(&report(samples, vec![]));
        let j = findings[0].to_json();
        assert_eq!(j.get("bottleneck").and_then(Json::as_str), Some("lock_contention"));
        assert!(j.get("evidence").and_then(Json::as_str).is_some());
        assert!(j.get("score").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn doctor_consumes_recorder_output() {
        let journal = EventJournal::new();
        journal.emit(Severity::Info, "api", "run_start", "run voter");
        let rec = TelemetryRecorder::new(1_000_000);
        for t in 0..4 {
            rec.record(healthy(t));
        }
        let mut s = healthy(4);
        s.fsync_us = 3_000_000;
        s.p99_us = 40_000;
        s.commits = 60;
        rec.record(s);
        let findings = diagnose(&rec.report(&journal));
        assert_eq!(findings[0].bottleneck, Bottleneck::IoSaturation);
    }
}
