//! The event journal: a structured "why" channel next to the metric "what".
//!
//! Counters say *that* p99 rose; the journal says *what happened right
//! before* — a phase transition, an SLO decision, a chaos fault arming, a
//! breaker trip, a WAL rotation. Every layer emits [`Event`]s into one
//! lock-sharded, fixed-capacity ring; the doctor ([`crate::doctor`]) and
//! `GET /events` read them back aligned with the telemetry timeline.
//!
//! Cost model mirrors the chaos gate: when the journal is disabled the
//! emit probe is a single relaxed load and a branch (< 5 ns, asserted by
//! the `event_overhead` bench), and [`EventJournal::emit_with`] takes a
//! closure so message formatting is never paid on the disabled path. When
//! enabled, an emit takes one uncontended shard lock and writes one ring
//! slot; old events are overwritten, flight-recorder style.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bp_util::json::Json;
use bp_util::sync::{thread_slot, CachePadded, Mutex};

use crate::registry::{MetricsBuf, MetricsSource};

/// Event severity, ordered so `>=` filters work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Severity {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Severity {
    pub const ALL: [Severity; 4] =
        [Severity::Debug, Severity::Info, Severity::Warn, Severity::Error];

    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parse a `?severity=` query value or report-artifact token.
    pub fn parse(s: &str) -> Option<Severity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// One structured event: fixed identity fields plus free-form key=value
/// context. `source`/`kind` are `&'static str` so an event body is ~40
/// bytes plus the message and field values.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Globally ordered sequence number (1-based, never reused).
    pub seq: u64,
    /// Microseconds since the journal's clock origin (run start).
    pub ts_us: u64,
    pub severity: Severity,
    /// Emitting layer: `core`, `slo`, `chaos`, `storage`, `api`, `monitor`.
    pub source: &'static str,
    /// Machine-matchable event type, e.g. `phase_change`, `chaos_armed`.
    pub kind: &'static str,
    pub message: String,
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// JSON object for the `/events` endpoint.
    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields = fields.set(k, v.as_str());
        }
        Json::obj()
            .set("seq", self.seq)
            .set("ts_us", self.ts_us)
            .set("severity", self.severity.name())
            .set("source", self.source)
            .set("kind", self.kind)
            .set("message", self.message.as_str())
            .set("fields", fields)
    }

    /// One-line rendering for logs and the `#bp-report v1` artifact:
    /// `event <seq> <ts_us> <severity> <source> <kind> <k=v,...|-> <message>`.
    /// Field values and the message have whitespace control characters
    /// flattened so the line stays line-oriented.
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "event {} {} {} {} {} ",
            self.seq,
            self.ts_us,
            self.severity.name(),
            self.source,
            self.kind
        );
        if self.fields.is_empty() {
            out.push('-');
        } else {
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}={}", flatten(v));
            }
        }
        out.push(' ');
        out.push_str(&flatten(&self.message));
        out
    }

    /// Parse one [`Event::to_line`] line. `source`/`kind` come back leaked
    /// as `&'static str` only for the fixed vocabulary this build knows;
    /// unknown tokens fall back to `"unknown"` rather than leaking memory.
    pub fn from_line(line: &str) -> Result<Event, String> {
        let rest = line.strip_prefix("event ").ok_or("missing `event` prefix")?;
        let mut it = rest.splitn(6, ' ');
        let mut next = |what: &str| it.next().ok_or(format!("missing {what}"));
        let seq = next("seq")?.parse::<u64>().map_err(|e| format!("bad seq: {e}"))?;
        let ts_us = next("ts_us")?.parse::<u64>().map_err(|e| format!("bad ts: {e}"))?;
        let severity = Severity::parse(next("severity")?).ok_or("bad severity")?;
        let source = intern(next("source")?);
        let kind = intern(next("kind")?);
        let tail = next("fields")?;
        let (fields_tok, message) = match tail.split_once(' ') {
            Some((f, m)) => (f, m.to_string()),
            None => (tail, String::new()),
        };
        let mut fields = Vec::new();
        if fields_tok != "-" {
            for kv in fields_tok.split(',') {
                let (k, v) = kv.split_once('=').ok_or(format!("bad field `{kv}`"))?;
                fields.push((intern(k), v.to_string()));
            }
        }
        Ok(Event { seq, ts_us, severity, source, kind, message, fields })
    }
}

/// Replace the characters that would break the line-oriented formats
/// (newlines, and in field values also the separators).
fn flatten(s: &str) -> String {
    s.chars()
        .map(|c| if c == '\n' || c == '\r' || c == ',' || c == '=' { '_' } else { c })
        .collect()
}

/// The fixed source/kind/field vocabulary, so parsed events round-trip to
/// `&'static str` without leaking.
const VOCAB: &[&str] = &[
    "core", "slo", "chaos", "storage", "api", "monitor", "game", "run_start", "run_stop",
    "phase_change", "rate_change", "mixture_change", "slo_decision", "slo_armed", "slo_disarmed",
    "chaos_armed", "chaos_disarmed", "breaker_transition", "deadlock_victim", "wal_rotate",
    "buffer_pressure", "saturation_change", "replay_launch", "doctor", "phase", "rate", "before",
    "after", "plan", "state", "txn", "holder", "segment", "lsn", "bytes", "ratio", "from", "to",
    "workload", "adjustment", "p99_us", "limit_us", "crash", "obs", "trace_evict", "evicted",
    "budget", "trace_id", "unknown",
];

fn intern(s: &str) -> &'static str {
    VOCAB.iter().find(|v| **v == s).copied().unwrap_or("unknown")
}

struct Shard {
    ring: Vec<Event>,
    written: u64,
}

impl Shard {
    /// Events in write order (oldest first) for this shard.
    fn ordered(&self, capacity: usize) -> impl Iterator<Item = &Event> {
        let split = if self.ring.len() < capacity {
            0
        } else {
            (self.written % capacity as u64) as usize
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }
}

/// The lock-sharded event ring. See the module docs for the design.
pub struct EventJournal {
    /// The gate: disabled journals cost one relaxed load per emit probe.
    enabled: AtomicBool,
    /// Global sequence counter; also the emitted-total metric.
    seq: AtomicU64,
    shards: Vec<CachePadded<Mutex<Shard>>>,
    shard_capacity: usize,
}

impl EventJournal {
    /// Default total capacity: enough for hours of control-plane events;
    /// storms overwrite the oldest.
    pub const DEFAULT_CAPACITY: usize = 4096;
    pub const DEFAULT_SHARDS: usize = 8;

    pub fn new() -> EventJournal {
        EventJournal::with_capacity(Self::DEFAULT_CAPACITY, Self::DEFAULT_SHARDS)
    }

    pub fn with_capacity(capacity: usize, shards: usize) -> EventJournal {
        let shards = shards.max(1);
        let shard_capacity = (capacity / shards).max(16);
        EventJournal {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            shards: (0..shards)
                .map(|_| CachePadded::new(Mutex::new(Shard { ring: Vec::new(), written: 0 })))
                .collect(),
            shard_capacity,
        }
    }

    /// A journal that starts disabled (for overhead benches and for
    /// components constructed without a run to attach to).
    pub fn disabled() -> EventJournal {
        let j = EventJournal::new();
        j.set_enabled(false);
        j
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Emit with lazily built message/fields: the closure runs only when
    /// the journal is enabled, so a disabled emit site pays one relaxed
    /// load and never formats.
    #[inline]
    pub fn emit_with<F>(&self, severity: Severity, source: &'static str, kind: &'static str, f: F)
    where
        F: FnOnce() -> (String, Vec<(&'static str, String)>),
    {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let (message, fields) = f();
        self.emit_slow(severity, source, kind, message, fields);
    }

    /// Emit with a pre-built message and no fields.
    #[inline]
    pub fn emit(
        &self,
        severity: Severity,
        source: &'static str,
        kind: &'static str,
        message: impl Into<String>,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.emit_slow(severity, source, kind, message.into(), Vec::new());
    }

    #[cold]
    fn emit_slow(
        &self,
        severity: Severity,
        source: &'static str,
        kind: &'static str,
        message: String,
        fields: Vec<(&'static str, String)>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            ts_us: now_us(),
            severity,
            source,
            kind,
            message,
            fields,
        };
        let mut sh = self.shards[thread_slot() % self.shards.len()].lock();
        let idx = (sh.written % self.shard_capacity as u64) as usize;
        if idx < sh.ring.len() {
            sh.ring[idx] = event;
        } else {
            sh.ring.push(event);
        }
        sh.written += 1;
    }

    /// Total events ever emitted (including ones since overwritten).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrites.
    pub fn overwritten(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let sh = s.lock();
                sh.written.saturating_sub(sh.ring.len() as u64)
            })
            .sum()
    }

    /// Total ring slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The most recent `n` retained events at or above `min_severity`,
    /// oldest first (globally ordered by seq).
    pub fn recent(&self, n: usize, min_severity: Severity) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::new();
        for s in &self.shards {
            let sh = s.lock();
            all.extend(
                sh.ordered(self.shard_capacity)
                    .filter(|e| e.severity >= min_severity)
                    .cloned(),
            );
        }
        all.sort_by_key(|e| e.seq);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// All retained events, oldest first.
    pub fn all(&self) -> Vec<Event> {
        self.recent(usize::MAX, Severity::Debug)
    }
}

impl Default for EventJournal {
    fn default() -> EventJournal {
        EventJournal::new()
    }
}

impl MetricsSource for EventJournal {
    fn collect(&self, buf: &mut MetricsBuf) {
        buf.counter(
            "bp_events_emitted_total",
            "Structured events emitted into the journal",
            &[],
            self.emitted() as f64,
        );
        buf.counter(
            "bp_events_overwritten_total",
            "Journal events lost to ring-buffer overwrites",
            &[],
            self.overwritten() as f64,
        );
    }
}

/// Wall-clock microseconds since the first call in this process. The
/// journal timestamps with its own origin so events from every layer line
/// up without threading a clock through each constructor. Public so the
/// telemetry sensor can stamp samples on the *same* axis as events — the
/// doctor's causal-event matching depends on that alignment.
pub fn journal_now_us() -> u64 {
    now_us()
}

fn now_us() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_in_global_order() {
        let j = EventJournal::new();
        j.emit(Severity::Info, "core", "phase_change", "phase 0 -> 1");
        j.emit(Severity::Warn, "chaos", "chaos_armed", "plan storm");
        j.emit(Severity::Error, "storage", "deadlock_victim", "txn 9 died");
        let all = j.all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].seq, 1);
        assert_eq!(all[2].seq, 3);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(j.emitted(), 3);
    }

    #[test]
    fn disabled_gate_skips_closure() {
        let j = EventJournal::disabled();
        let mut called = false;
        j.emit_with(Severity::Info, "core", "rate_change", || {
            called = true;
            (String::new(), Vec::new())
        });
        assert!(!called, "closure must not run while disabled");
        assert_eq!(j.emitted(), 0);
        j.set_enabled(true);
        j.emit_with(Severity::Info, "core", "rate_change", || {
            ("300 -> 500".to_string(), vec![("before", "300".to_string())])
        });
        assert_eq!(j.emitted(), 1);
        assert_eq!(j.all()[0].fields[0], ("before", "300".to_string()));
    }

    #[test]
    fn severity_filter_and_last_n() {
        let j = EventJournal::new();
        for i in 0..10u64 {
            let sev = if i % 2 == 0 { Severity::Debug } else { Severity::Warn };
            j.emit(sev, "core", "rate_change", format!("e{i}"));
        }
        assert_eq!(j.recent(100, Severity::Warn).len(), 5);
        let last2 = j.recent(2, Severity::Debug);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[1].message, "e9");
        assert!(last2[0].seq < last2[1].seq);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let j = EventJournal::with_capacity(16, 1);
        for i in 0..40u64 {
            j.emit(Severity::Info, "core", "rate_change", format!("e{i}"));
        }
        assert_eq!(j.emitted(), 40);
        assert_eq!(j.overwritten(), 24);
        let all = j.all();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0].message, "e24", "oldest retained after overwrite");
        assert_eq!(all.last().unwrap().message, "e39");
    }

    #[test]
    fn line_round_trips() {
        let e = Event {
            seq: 142,
            ts_us: 12_000_000,
            severity: Severity::Warn,
            source: "chaos",
            kind: "chaos_armed",
            message: "plan lock-storm armed".to_string(),
            fields: vec![("plan", "lock-storm".to_string()), ("state", "armed".to_string())],
        };
        let line = e.to_line();
        let back = Event::from_line(&line).unwrap();
        assert_eq!(back, e);

        // Hostile content flattens instead of corrupting the line format.
        let nasty = Event {
            fields: vec![("plan", "a,b=c\nd".to_string())],
            message: "line1\nline2".to_string(),
            ..e
        };
        let back = Event::from_line(&nasty.to_line()).unwrap();
        assert_eq!(back.fields[0].1, "a_b_c_d");
        assert_eq!(back.message, "line1_line2");
    }

    #[test]
    fn from_line_rejects_garbage() {
        assert!(Event::from_line("not an event").is_err());
        assert!(Event::from_line("event x 0 info core rate_change - m").is_err());
        assert!(Event::from_line("event 1 0 loud core rate_change - m").is_err());
        assert!(Event::from_line("event 1 0 info core rate_change badfield m").is_err());
    }

    #[test]
    fn severity_parses() {
        assert_eq!(Severity::parse("WARN"), Some(Severity::Warn));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warn));
        assert_eq!(Severity::parse("info"), Some(Severity::Info));
        assert_eq!(Severity::parse("loud"), None);
        assert!(Severity::Error > Severity::Debug);
    }

    #[test]
    fn json_shape() {
        let j = EventJournal::new();
        j.emit_with(Severity::Info, "api", "run_start", || {
            ("run voter".to_string(), vec![("workload", "voter".to_string())])
        });
        let e = &j.all()[0];
        let json = e.to_json();
        assert_eq!(json.get("severity").and_then(Json::as_str), Some("info"));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("run_start"));
        assert_eq!(
            json.get("fields").and_then(|f| f.get("workload")).and_then(Json::as_str),
            Some("voter")
        );
    }

    #[test]
    fn multithreaded_emission_keeps_order() {
        let j = std::sync::Arc::new(EventJournal::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        j.emit(Severity::Debug, "core", "rate_change", format!("t{t}e{i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.emitted(), 800);
        let all = j.all();
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq), "globally ordered");
    }
}
