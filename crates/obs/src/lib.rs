//! Observability substrate: per-request lifecycle spans and a unified
//! metrics registry (§2.1, §4.2 of the paper describe the visibility loop
//! this crate closes).
//!
//! Two pieces:
//!
//! * [`SpanRecorder`] — a "flight recorder" for request lifecycles. Each
//!   worker thread writes fixed-size [`Span`] values into a per-thread
//!   sharded ring buffer that is fully preallocated at startup: the hot
//!   path never allocates, never contends with other recording workers,
//!   and old spans are silently overwritten once a ring fills. Recording
//!   can be disabled (`off`), probabilistically sampled (`sampled`), or
//!   exhaustive (`full`) per run via [`ObsConfig`].
//! * [`MetricsRegistry`] — one snapshot API over every metrics silo in the
//!   system (client-side statistics, storage-engine counters, resource
//!   monitor samples, span stage histograms). Sources implement
//!   [`MetricsSource`]; the registry renders the union in Prometheus text
//!   exposition format for `GET /metrics`.
//!
//! This crate depends only on `bp-util` so every other layer (core,
//! storage, monitor, api) can depend on it without cycles.

pub mod registry;
pub mod span;

pub use registry::{MetricValue, MetricsBuf, MetricsRegistry, MetricsSource, Sample};
pub use span::{
    add_commit_us, add_lock_wait_us, format_stage_line, take_stage_acc, ObsConfig, Span,
    SpanMode, SpanOutcome, SpanRecorder, Stage, StageSummary,
};
