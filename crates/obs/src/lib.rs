//! Observability substrate: per-request lifecycle spans and a unified
//! metrics registry (§2.1, §4.2 of the paper describe the visibility loop
//! this crate closes).
//!
//! Two pieces:
//!
//! * [`SpanRecorder`] — a "flight recorder" for request lifecycles. Each
//!   worker thread writes fixed-size [`Span`] values into a per-thread
//!   sharded ring buffer that is fully preallocated at startup: the hot
//!   path never allocates, never contends with other recording workers,
//!   and old spans are silently overwritten once a ring fills. Recording
//!   can be disabled (`off`), probabilistically sampled (`sampled`), or
//!   exhaustive (`full`) per run via [`ObsConfig`].
//! * [`MetricsRegistry`] — one snapshot API over every metrics silo in the
//!   system (client-side statistics, storage-engine counters, resource
//!   monitor samples, span stage histograms). Sources implement
//!   [`MetricsSource`]; the registry renders the union in Prometheus text
//!   exposition format for `GET /metrics`.
//!
//! PR 7 adds the black-box layer on top:
//!
//! * [`EventJournal`] — a lock-sharded ring of structured control-plane
//!   [`Event`]s (phase changes, SLO decisions, chaos arms, breaker trips,
//!   deadlock victims, WAL rotations…), behind a <5ns disarmed gate.
//! * [`TelemetryRecorder`] — a background sampler that snapshots the
//!   run's vitals every tick and exports a versioned `#bp-report v1`
//!   timeline aligned with the journal.
//! * [`doctor`] — a pure analysis pass over a [`Report`] that names the
//!   dominant bottleneck per window with evidence and a causal event.
//!
//! This crate depends only on `bp-util` so every other layer (core,
//! storage, monitor, api) can depend on it without cycles.

pub mod doctor;
pub mod journal;
pub mod recorder;
pub mod registry;
pub mod span;

pub use doctor::{diagnose, Bottleneck, Finding};
pub use journal::{journal_now_us, Event, EventJournal, Severity};
pub use recorder::{
    Report, TelemetryGuard, TelemetryRecorder, TelemetrySample, SAMPLE_COLUMNS,
};
pub use registry::{
    escape_label_value, merge_samples, render_samples, Exemplar, MetricValue, MetricsBuf,
    MetricsRegistry, MetricsSource, Sample,
};
pub use span::{
    add_commit_us, add_lock_wait_us, current_trace, format_stage_line, format_trace_id,
    parse_trace_id, set_current_trace, take_stage_acc, trace_id, ObsConfig, RetainReason, Span,
    SpanMode, SpanOutcome, SpanRecorder, Stage, StageSummary,
};
