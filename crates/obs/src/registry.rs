//! The unified metrics registry.
//!
//! Every metrics silo in the system — the client-side `StatsCollector`,
//! the storage engine's `ServerMetrics`, the resource `Monitor`, the span
//! recorder — implements [`MetricsSource`] and contributes flat samples to
//! a [`MetricsBuf`]. The registry holds the sources and renders their
//! union as one snapshot, either structurally ([`MetricsRegistry::snapshot`])
//! or as Prometheus text exposition format for `GET /metrics`
//! ([`MetricsRegistry::render_prometheus`]).
//!
//! Collection is pull-based and cold-path: sources are only walked when a
//! scrape happens, so registering a source adds zero overhead to the
//! request hot path.

use std::sync::Arc;

use bp_util::histogram::Histogram;
use bp_util::sync::Mutex;

/// Upper bounds (µs) for rendered latency histogram buckets. Chosen to
/// bracket everything from in-memory point reads to multi-second stalls.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// One metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(f64),
    Gauge(f64),
    /// Cumulative buckets `(le, count)`; the final entry is `(+Inf, count)`.
    Histogram {
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    },
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// One OpenMetrics exemplar: a concrete trace id attached to a histogram
/// bucket, rendered as `... # {trace_id="<id>"} <value>` after the bucket
/// line. At most one per bucket (`le` is unique within a sample).
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Upper bound of the bucket this exemplar belongs to.
    pub le: f64,
    /// Trace id, already escaped like a label value.
    pub trace_id: String,
    /// The observed value (µs) that fell into the bucket.
    pub value: f64,
}

/// One named sample contributed by a source.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub help: String,
    pub value: MetricValue,
    /// Histogram bucket exemplars (empty for counters/gauges and for
    /// histograms without any recent traced observation).
    pub exemplars: Vec<Exemplar>,
}

impl Sample {
    /// Structural JSON encoding, used by the cluster snapshot endpoint to
    /// ship a registry's samples to the coordinator without a Prometheus
    /// text parser on the other end.
    pub fn to_json(&self) -> bp_util::json::Json {
        use bp_util::json::Json;
        let labels = Json::Arr(
            self.labels
                .iter()
                .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                .collect(),
        );
        let mut j = Json::obj()
            .set("name", self.name.as_str())
            .set("help", self.help.as_str())
            .set("labels", labels);
        if !self.exemplars.is_empty() {
            j = j.set(
                "exemplars",
                Json::Arr(
                    self.exemplars
                        .iter()
                        .map(|e| {
                            let le = if e.le.is_infinite() {
                                Json::Str("+Inf".into())
                            } else {
                                Json::Num(e.le)
                            };
                            Json::obj()
                                .set("le", le)
                                .set("trace_id", e.trace_id.as_str())
                                .set("value", e.value)
                        })
                        .collect(),
                ),
            );
        }
        match &self.value {
            MetricValue::Counter(v) => j.set("type", "counter").set("value", *v),
            MetricValue::Gauge(v) => j.set("type", "gauge").set("value", *v),
            MetricValue::Histogram { buckets, sum, count } => j
                .set("type", "histogram")
                .set("sum", *sum)
                .set("count", *count)
                .set(
                    "buckets",
                    Json::Arr(
                        buckets
                            .iter()
                            .map(|(le, c)| {
                                // +Inf is not representable as a JSON number.
                                let le = if le.is_infinite() {
                                    Json::Str("+Inf".into())
                                } else {
                                    Json::Num(*le)
                                };
                                Json::Arr(vec![le, Json::Num(*c as f64)])
                            })
                            .collect(),
                    ),
                ),
        }
    }

    /// Inverse of [`Sample::to_json`]. Returns `None` on any structural
    /// mismatch — a peer speaking a different version is skipped, not
    /// trusted.
    pub fn from_json(j: &bp_util::json::Json) -> Option<Sample> {
        use bp_util::json::Json;
        let name = j.get("name")?.as_str()?.to_string();
        let help = j.get("help").and_then(Json::as_str).unwrap_or("").to_string();
        let labels = j
            .get("labels")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let kv = pair.as_arr()?;
                Some((kv.first()?.as_str()?.to_string(), kv.get(1)?.as_str()?.to_string()))
            })
            .collect::<Option<Vec<_>>>()?;
        let value = match j.get("type")?.as_str()? {
            "counter" => MetricValue::Counter(j.get("value")?.as_f64()?),
            "gauge" => MetricValue::Gauge(j.get("value")?.as_f64()?),
            "histogram" => {
                let buckets = j
                    .get("buckets")?
                    .as_arr()?
                    .iter()
                    .map(|b| {
                        let pair = b.as_arr()?;
                        let le = match pair.first()? {
                            Json::Str(s) if s == "+Inf" => f64::INFINITY,
                            v => v.as_f64()?,
                        };
                        Some((le, pair.get(1)?.as_f64()? as u64))
                    })
                    .collect::<Option<Vec<_>>>()?;
                MetricValue::Histogram {
                    buckets,
                    sum: j.get("sum")?.as_f64()?,
                    count: j.get("count")?.as_u64()?,
                }
            }
            _ => return None,
        };
        // Exemplars are optional on the wire: older peers omit the key.
        let exemplars = match j.get("exemplars").and_then(Json::as_arr) {
            Some(arr) => arr
                .iter()
                .map(|e| {
                    let le = match e.get("le")? {
                        Json::Str(s) if s == "+Inf" => f64::INFINITY,
                        v => v.as_f64()?,
                    };
                    Some(Exemplar {
                        le,
                        trace_id: e.get("trace_id")?.as_str()?.to_string(),
                        value: e.get("value")?.as_f64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            None => Vec::new(),
        };
        Some(Sample { name, labels, help, value, exemplars })
    }
}

/// Collection buffer handed to [`MetricsSource::collect`].
#[derive(Debug, Default)]
pub struct MetricsBuf {
    samples: Vec<Sample>,
}

/// Replace characters Prometheus forbids in metric/label names.
fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline become `\\`, `\"`, `\n`. Applied
/// once at [`MetricsBuf`] push time, so stored samples are already
/// scrape-safe and the renderer writes them verbatim.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsBuf {
    pub fn new() -> MetricsBuf {
        MetricsBuf::default()
    }

    fn push(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], value: MetricValue) {
        self.push_with_exemplars(name, help, labels, value, Vec::new());
    }

    fn push_with_exemplars(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: MetricValue,
        exemplars: Vec<Exemplar>,
    ) {
        self.samples.push(Sample {
            name: sanitize_name(name),
            labels: labels
                .iter()
                .map(|(k, v)| (sanitize_name(k), escape_label_value(v)))
                .collect(),
            help: help.to_string(),
            value,
            exemplars,
        });
    }

    /// A monotonically increasing total.
    pub fn counter(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], v: f64) {
        self.push(name, help, labels, MetricValue::Counter(v));
    }

    /// A point-in-time value that can go up or down.
    pub fn gauge(&mut self, name: &str, help: &'static str, labels: &[(&str, &str)], v: f64) {
        self.push(name, help, labels, MetricValue::Gauge(v));
    }

    /// Render a [`Histogram`] into cumulative Prometheus buckets using the
    /// standard latency bounds.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        h: &Histogram,
    ) {
        self.histogram_with_bounds(name, help, labels, h, &LATENCY_BOUNDS_US);
    }

    /// Render a [`Histogram`] with explicit bucket upper bounds (µs).
    pub fn histogram_with_bounds(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        h: &Histogram,
        bounds: &[u64],
    ) {
        let value = project_histogram(h, bounds);
        self.push(name, help, labels, value);
    }

    /// Render a [`Histogram`] on the standard latency bounds, attaching at
    /// most one exemplar per bucket from `(observed_us, trace_id)` pairs.
    /// Pairs are expected oldest-first; the most recent observation per
    /// bucket wins. Trace ids are escaped here like label values, so
    /// hostile content cannot break out of the exemplar braces.
    pub fn histogram_with_exemplars(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        h: &Histogram,
        observations: &[(u64, String)],
    ) {
        let bounds = &LATENCY_BOUNDS_US;
        let value = project_histogram(h, bounds);
        // One slot per bound plus +Inf; later (more recent) pairs overwrite.
        let mut slots: Vec<Option<Exemplar>> = vec![None; bounds.len() + 1];
        for (us, trace) in observations {
            let (i, le) = match bounds.iter().position(|&b| *us <= b) {
                Some(i) => (i, bounds[i] as f64),
                None => (bounds.len(), f64::INFINITY),
            };
            slots[i] = Some(Exemplar {
                le,
                trace_id: escape_label_value(trace),
                value: *us as f64,
            });
        }
        let exemplars = slots.into_iter().flatten().collect();
        self.push_with_exemplars(name, help, labels, value, exemplars);
    }

    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

/// Project a log-linear [`Histogram`] onto fixed bounds: each internal
/// bucket's count lands in the first bound that covers its lower edge
/// (≤3% representative error, same as the histogram).
fn project_histogram(h: &Histogram, bounds: &[u64]) -> MetricValue {
    let mut per_bound = vec![0u64; bounds.len()];
    let mut overflow = 0u64;
    for (low, count) in h.iter() {
        match bounds.iter().position(|&b| low <= b) {
            Some(i) => per_bound[i] += count,
            None => overflow += count,
        }
    }
    let mut buckets = Vec::with_capacity(bounds.len() + 1);
    let mut cum = 0u64;
    for (b, c) in bounds.iter().zip(&per_bound) {
        cum += c;
        buckets.push((*b as f64, cum));
    }
    buckets.push((f64::INFINITY, cum + overflow));
    MetricValue::Histogram {
        buckets,
        // An empty histogram's mean is NaN; its sum must render 0.
        sum: if h.count() == 0 { 0.0 } else { h.mean() * h.count() as f64 },
        count: h.count(),
    }
}

/// Anything that can contribute metrics to a scrape.
pub trait MetricsSource: Send + Sync {
    fn collect(&self, buf: &mut MetricsBuf);
}

/// The registry: a list of sources, snapshotted on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn MetricsSource>)>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a source under a diagnostic name. Registering the same
    /// `Arc` twice is a no-op (controllers sharing one database would
    /// otherwise double-count its `ServerMetrics`).
    pub fn register(&self, name: &str, source: Arc<dyn MetricsSource>) {
        let mut sources = self.sources.lock();
        let new_ptr = Arc::as_ptr(&source) as *const ();
        if sources.iter().any(|(_, s)| Arc::as_ptr(s) as *const () == new_ptr) {
            return;
        }
        sources.push((name.to_string(), source));
    }

    pub fn source_count(&self) -> usize {
        self.sources.lock().len()
    }

    pub fn source_names(&self) -> Vec<String> {
        self.sources.lock().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Collect every source into one flat, name-sorted sample list. Build
    /// identity and uptime are always appended so scrapes are
    /// self-identifying regardless of which sources got registered.
    pub fn snapshot(&self) -> Vec<Sample> {
        let sources: Vec<Arc<dyn MetricsSource>> =
            self.sources.lock().iter().map(|(_, s)| s.clone()).collect();
        let mut buf = MetricsBuf::new();
        for s in &sources {
            s.collect(&mut buf);
        }
        collect_build_info(&mut buf);
        let mut samples = buf.into_samples();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        samples
    }

    /// Render the current snapshot in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        render_samples(&self.snapshot())
    }
}

/// Render a name-sorted sample list in Prometheus text exposition format.
/// One `# HELP`/`# TYPE` header per metric family, however many sample
/// sets the list was merged from.
pub fn render_samples(samples: &[Sample]) -> String {
    let mut out = String::with_capacity(4096 + samples.len() * 64);
    let mut last_family = "";
    for s in samples {
        if s.name != last_family {
            out.push_str("# HELP ");
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(&s.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&s.name);
            out.push(' ');
            out.push_str(s.value.type_name());
            out.push('\n');
            last_family = &s.name;
        }
        render_sample(&mut out, s);
    }
    out
}

/// Merge several snapshots (e.g. one per cluster node) into one
/// name-sorted sample list. Samples with the same name *and* label set
/// fold into a single series — counters and gauges sum, histograms merge
/// bucket-wise over the union of their bounds — so scraping the merged
/// set never emits duplicate series or duplicate `HELP`/`TYPE` lines.
/// Same-name samples with different labels stay separate series under one
/// family, exactly as a single registry renders them.
pub fn merge_samples(sets: Vec<Vec<Sample>>) -> Vec<Sample> {
    let mut all: Vec<Sample> = sets.into_iter().flatten().collect();
    all.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    let mut out: Vec<Sample> = Vec::with_capacity(all.len());
    for s in all {
        match out.last_mut() {
            Some(prev) if prev.name == s.name && prev.labels == s.labels => {
                if !fold_value(&mut prev.value, &s.value) {
                    out.push(s);
                } else {
                    // Keep at most one exemplar per bucket across nodes;
                    // the first node's exemplar wins on a shared bound.
                    for e in s.exemplars {
                        if !prev.exemplars.iter().any(|p| p.le.total_cmp(&e.le).is_eq()) {
                            prev.exemplars.push(e);
                        }
                    }
                }
            }
            _ => out.push(s),
        }
    }
    out
}

/// Fold `b` into `a` when the two values are the same metric type;
/// returns false (leaving both untouched) on a type clash.
fn fold_value(a: &mut MetricValue, b: &MetricValue) -> bool {
    match (a, b) {
        (MetricValue::Counter(x), MetricValue::Counter(y)) => {
            *x += y;
            true
        }
        (MetricValue::Gauge(x), MetricValue::Gauge(y)) => {
            *x += y;
            true
        }
        (
            MetricValue::Histogram { buckets, sum, count },
            MetricValue::Histogram { buckets: b2, sum: s2, count: c2 },
        ) => {
            *buckets = merge_buckets(buckets, b2);
            *sum += s2;
            *count += c2;
            true
        }
        _ => false,
    }
}

/// Merge two cumulative bucket lists over the union of their bounds.
/// Works on per-bound increments so peers with different bound sets still
/// produce a monotone cumulative result.
fn merge_buckets(a: &[(f64, u64)], b: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let increments = |list: &[(f64, u64)]| {
        let mut prev = 0u64;
        list.iter()
            .map(|&(le, c)| {
                let inc = c.saturating_sub(prev);
                prev = c;
                (le, inc)
            })
            .collect::<Vec<_>>()
    };
    let mut bounds: Vec<f64> = a.iter().chain(b).map(|&(le, _)| le).collect();
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    let mut merged: Vec<(f64, u64)> = bounds.into_iter().map(|le| (le, 0)).collect();
    for (le, inc) in increments(a).into_iter().chain(increments(b)) {
        // Each increment lands at its own bound, which is always present
        // in the union (`==` is exact here: both sides are the same
        // literal bound or +Inf).
        if let Some(slot) = merged.iter_mut().find(|(b, _)| b.total_cmp(&le).is_eq()) {
            slot.1 += inc;
        }
    }
    let mut cum = 0u64;
    for slot in &mut merged {
        cum += slot.1;
        slot.1 = cum;
    }
    merged
}

/// The always-on self-identification samples: `bp_build_info` (value 1,
/// identity in the labels, Prometheus `*_build_info` convention) and
/// `bp_uptime_seconds` on the journal's process-wide clock origin.
fn collect_build_info(buf: &mut MetricsBuf) {
    let journal_shards = crate::journal::EventJournal::DEFAULT_SHARDS.to_string();
    buf.gauge(
        "bp_build_info",
        "Build identity; value is constant 1, identity is in the labels",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("git_hash", option_env!("BP_GIT_HASH").unwrap_or("unknown")),
            ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }),
            ("journal_shards", journal_shards.as_str()),
        ],
        1.0,
    );
    buf.gauge(
        "bp_uptime_seconds",
        "Seconds since this process first touched the observability clock",
        &[],
        crate::journal::journal_now_us() as f64 / 1e6,
    );
}

fn render_sample(out: &mut String, s: &Sample) {
    match &s.value {
        MetricValue::Counter(v) | MetricValue::Gauge(v) => {
            out.push_str(&s.name);
            render_labels(out, &s.labels, None);
            out.push(' ');
            render_value(out, *v);
            out.push('\n');
        }
        MetricValue::Histogram { buckets, sum, count } => {
            for (le, c) in buckets {
                out.push_str(&s.name);
                out.push_str("_bucket");
                render_labels(out, &s.labels, Some(*le));
                out.push(' ');
                out.push_str(&c.to_string());
                // OpenMetrics exemplar: `# {trace_id="..."} <value>` after
                // the bucket count. Ids were escaped at push time.
                if let Some(e) = s.exemplars.iter().find(|e| e.le.total_cmp(le).is_eq()) {
                    out.push_str(" # {trace_id=\"");
                    out.push_str(&e.trace_id);
                    out.push_str("\"} ");
                    render_value(out, e.value);
                }
                out.push('\n');
            }
            out.push_str(&s.name);
            out.push_str("_sum");
            render_labels(out, &s.labels, None);
            out.push(' ');
            render_value(out, *sum);
            out.push('\n');
            out.push_str(&s.name);
            out.push_str("_count");
            render_labels(out, &s.labels, None);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<f64>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        // Values were escaped at push time (`escape_label_value`), so they
        // are written verbatim — escaping again would double the slashes.
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        if le.is_infinite() {
            out.push_str("+Inf");
        } else {
            render_value(out, le);
        }
        out.push('"');
    }
    out.push('}');
}

/// Prometheus floats: integral values print without a trailing `.0`.
fn render_value(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource;

    impl MetricsSource for FakeSource {
        fn collect(&self, buf: &mut MetricsBuf) {
            buf.counter("fake_total", "a counter", &[("kind", "x")], 3.0);
            buf.counter("fake_total", "a counter", &[("kind", "y")], 4.0);
            buf.gauge("fake_gauge", "a gauge", &[], 1.5);
            let mut h = Histogram::latency();
            h.record(120);
            h.record(700);
            h.record(2_000_000);
            buf.histogram("fake_latency_us", "a histogram", &[], &h);
        }
    }

    #[test]
    fn render_groups_families_once() {
        let reg = MetricsRegistry::new();
        reg.register("fake", Arc::new(FakeSource));
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# HELP fake_total ").count(), 1);
        assert_eq!(text.matches("# TYPE fake_total counter").count(), 1);
        assert!(text.contains("fake_total{kind=\"x\"} 3\n"));
        assert!(text.contains("fake_total{kind=\"y\"} 4\n"));
        assert!(text.contains("fake_gauge 1.5\n"));
        assert!(text.contains("# TYPE fake_latency_us histogram"));
        assert!(text.contains("fake_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("fake_latency_us_count 3\n"));
    }

    #[test]
    fn histogram_buckets_cumulative_and_complete() {
        let mut h = Histogram::latency();
        for v in [50u64, 400, 800, 30_000, 2_000_000] {
            h.record(v);
        }
        let mut buf = MetricsBuf::new();
        buf.histogram("lat", "h", &[], &h);
        let s = &buf.into_samples()[0];
        let MetricValue::Histogram { buckets, count, .. } = &s.value else {
            panic!("not a histogram");
        };
        assert_eq!(*count, 5);
        // Cumulative counts never decrease and end at the total.
        let mut prev = 0;
        for (_, c) in buckets {
            assert!(*c >= prev);
            prev = *c;
        }
        let (last_le, last_c) = buckets.last().unwrap();
        assert!(last_le.is_infinite());
        assert_eq!(*last_c, 5, "out-of-range value lands in +Inf");
    }

    #[test]
    fn register_dedupes_same_arc() {
        let reg = MetricsRegistry::new();
        let src: Arc<dyn MetricsSource> = Arc::new(FakeSource);
        reg.register("a", src.clone());
        reg.register("b", src.clone());
        assert_eq!(reg.source_count(), 1);
        reg.register("c", Arc::new(FakeSource));
        assert_eq!(reg.source_count(), 2);
    }

    #[test]
    fn sanitizes_names_and_escapes_labels() {
        let mut buf = MetricsBuf::new();
        buf.counter("9bad-name.total", "c", &[("work load", "a\"b\\c\nd")], 1.0);
        let s = &buf.into_samples()[0];
        assert_eq!(s.name, "_9bad_name_total");
        assert_eq!(s.labels[0].0, "work_load");
        let reg = MetricsRegistry::new();
        struct One;
        impl MetricsSource for One {
            fn collect(&self, buf: &mut MetricsBuf) {
                buf.counter("m_total", "c", &[("l", "a\"b")], 1.0);
            }
        }
        reg.register("one", Arc::new(One));
        assert!(reg.render_prometheus().contains("m_total{l=\"a\\\"b\"} 1\n"));
    }

    #[test]
    fn empty_histogram_renders_zero_sum() {
        let h = Histogram::latency();
        let mut buf = MetricsBuf::new();
        buf.histogram("lat", "h", &[], &h);
        let s = &buf.into_samples()[0];
        let MetricValue::Histogram { buckets, sum, count } = &s.value else {
            panic!("not a histogram");
        };
        assert_eq!(*count, 0);
        assert_eq!(*sum, 0.0, "empty histogram must not render NaN sum");
        assert!(buckets.iter().all(|(_, c)| *c == 0));
        let mut out = String::new();
        render_sample(&mut out, s);
        assert!(out.contains("lat_sum 0\n"), "{out}");
        assert!(out.contains("lat_count 0\n"), "{out}");
        assert!(!out.contains("NaN"), "{out}");
    }

    #[test]
    fn build_info_and_uptime_always_present() {
        let reg = MetricsRegistry::new();
        let text = reg.render_prometheus();
        assert!(text.contains("bp_build_info{"), "{text}");
        assert!(text.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))), "{text}");
        assert!(text.contains("git_hash=\""), "{text}");
        assert!(text.contains("bp_uptime_seconds "), "{text}");
    }

    #[test]
    fn label_values_escaped_once_at_push() {
        let mut buf = MetricsBuf::new();
        buf.counter("m_total", "c", &[("l", "a\"b\\c\nd")], 1.0);
        let s = &buf.into_samples()[0];
        assert_eq!(s.labels[0].1, "a\\\"b\\\\c\\nd", "stored pre-escaped");
        let mut out = String::new();
        render_sample(&mut out, s);
        assert!(out.contains("m_total{l=\"a\\\"b\\\\c\\nd\"} 1\n"), "no double escape: {out}");
    }

    #[test]
    fn merged_registries_dedupe_families_and_sum_counters() {
        // Two nodes exposing the same families: the merged scrape must
        // carry ONE HELP/TYPE per family and the *sum* of each counter,
        // not duplicate exposition lines.
        let node = |commits: f64, lat: u64| {
            struct Src(f64, u64);
            impl MetricsSource for Src {
                fn collect(&self, buf: &mut MetricsBuf) {
                    buf.counter("bp_client_committed_total", "commits", &[("type", "T")], self.0);
                    buf.gauge("bp_queue_depth", "depth", &[], 2.0);
                    let mut h = Histogram::latency();
                    h.record(self.1);
                    buf.histogram("bp_latency_us", "lat", &[], &h);
                }
            }
            let reg = MetricsRegistry::new();
            reg.register("stats", Arc::new(Src(commits, lat)));
            reg
        };
        let (a, b) = (node(10.0, 120), node(32.0, 600_000));
        let merged = merge_samples(vec![a.snapshot(), b.snapshot()]);
        let text = render_samples(&merged);

        assert_eq!(text.matches("# HELP bp_client_committed_total").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE bp_client_committed_total").count(), 1);
        assert!(text.contains("bp_client_committed_total{type=\"T\"} 42\n"), "{text}");
        // Gauges sum across nodes (cluster-wide totals).
        assert!(text.contains("bp_queue_depth 4\n"), "{text}");
        // Histograms merge bucket-wise: one series, count 2, both samples.
        assert_eq!(text.matches("# TYPE bp_latency_us histogram").count(), 1);
        assert!(text.contains("bp_latency_us_count 2\n"), "{text}");
        assert!(text.contains("bp_latency_us_bucket{le=\"+Inf\"} 2\n"), "{text}");
        // Exactly one series line per (name, labels): no duplicates.
        let dup = text
            .lines()
            .filter(|l| l.starts_with("bp_client_committed_total{"))
            .count();
        assert_eq!(dup, 1, "{text}");
        // Per-node build_info gauges share one family header too.
        assert_eq!(text.matches("# TYPE bp_build_info gauge").count(), 1);
    }

    #[test]
    fn merge_keeps_distinct_label_sets_separate() {
        let mut buf = MetricsBuf::new();
        buf.counter("m_total", "c", &[("w", "a")], 1.0);
        buf.counter("m_total", "c", &[("w", "b")], 2.0);
        let s1 = buf.into_samples();
        let mut buf = MetricsBuf::new();
        buf.counter("m_total", "c", &[("w", "a")], 5.0);
        let s2 = buf.into_samples();
        let merged = merge_samples(vec![s1, s2]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].value, MetricValue::Counter(6.0));
        assert_eq!(merged[1].value, MetricValue::Counter(2.0));
    }

    #[test]
    fn exemplar_renders_after_bucket_line() {
        let mut h = Histogram::latency();
        h.record(120);
        h.record(30_000);
        let mut buf = MetricsBuf::new();
        buf.histogram_with_exemplars(
            "lat_us",
            "h",
            &[("stage", "exec")],
            &h,
            &[(120, "00ab12cd34ef5678".to_string()), (30_000, "ffffffffffffffff".to_string())],
        );
        let s = &buf.into_samples()[0];
        let mut out = String::new();
        render_sample(&mut out, s);
        // 120µs lands in the first (le=250) bucket; 30ms in le=50000.
        assert!(
            out.contains("lat_us_bucket{stage=\"exec\",le=\"250\"} 1 # {trace_id=\"00ab12cd34ef5678\"} 120\n"),
            "{out}"
        );
        assert!(
            out.contains("le=\"50000\"} 2 # {trace_id=\"ffffffffffffffff\"} 30000\n"),
            "{out}"
        );
        // Buckets without an exemplar render bare.
        assert!(out.contains("lat_us_bucket{stage=\"exec\",le=\"100\"} 0\n"), "{out}");
    }

    #[test]
    fn at_most_one_exemplar_per_bucket_most_recent_wins() {
        let mut h = Histogram::latency();
        for v in [150u64, 160, 170] {
            h.record(v);
        }
        let mut buf = MetricsBuf::new();
        // All three land in the le=250 bucket; pairs are oldest-first.
        buf.histogram_with_exemplars(
            "lat_us",
            "h",
            &[],
            &h,
            &[
                (150, "aaaa".to_string()),
                (160, "bbbb".to_string()),
                (170, "cccc".to_string()),
            ],
        );
        let s = &buf.into_samples()[0];
        assert_eq!(s.exemplars.len(), 1, "one exemplar per bucket");
        assert_eq!(s.exemplars[0].trace_id, "cccc", "most recent wins");
        let mut out = String::new();
        render_sample(&mut out, s);
        assert_eq!(out.matches(" # {").count(), 1, "{out}");
    }

    #[test]
    fn exemplar_trace_ids_escaped_inside_braces() {
        let mut h = Histogram::latency();
        h.record(120);
        let mut buf = MetricsBuf::new();
        buf.histogram_with_exemplars(
            "lat_us",
            "h",
            &[],
            &h,
            &[(120, "bad\"id\\with\nstuff".to_string())],
        );
        let s = &buf.into_samples()[0];
        assert_eq!(s.exemplars[0].trace_id, "bad\\\"id\\\\with\\nstuff", "stored pre-escaped");
        let mut out = String::new();
        render_sample(&mut out, s);
        assert!(out.contains("# {trace_id=\"bad\\\"id\\\\with\\nstuff\"} 120"), "{out}");
        // No raw quote/newline survives inside the braces.
        let brace = out.split(" # {").nth(1).unwrap();
        assert!(!brace.contains('\n') || brace.ends_with('\n'), "{out}");
    }

    #[test]
    fn overflow_observation_lands_in_inf_exemplar() {
        let mut h = Histogram::latency();
        h.record(5_000_000);
        let mut buf = MetricsBuf::new();
        buf.histogram_with_exemplars("lat_us", "h", &[], &h, &[(5_000_000, "abcd".to_string())]);
        let s = &buf.into_samples()[0];
        assert_eq!(s.exemplars.len(), 1);
        assert!(s.exemplars[0].le.is_infinite());
        let mut out = String::new();
        render_sample(&mut out, s);
        assert!(out.contains("le=\"+Inf\"} 1 # {trace_id=\"abcd\"} 5000000\n"), "{out}");
    }

    #[test]
    fn exemplars_survive_json_round_trip_and_merge() {
        let mut h = Histogram::latency();
        h.record(120);
        let mut buf = MetricsBuf::new();
        buf.histogram_with_exemplars("lat_us", "h", &[], &h, &[(120, "aaaa".to_string())]);
        let s = buf.into_samples().remove(0);
        let back = Sample::from_json(&s.to_json()).expect("round-trip");
        assert_eq!(back, s);
        // Merge: same bound keeps the first node's exemplar; a bound only
        // the second node has comes through.
        let mut h2 = Histogram::latency();
        h2.record(130);
        h2.record(40_000);
        let mut buf = MetricsBuf::new();
        buf.histogram_with_exemplars(
            "lat_us",
            "h",
            &[],
            &h2,
            &[(130, "bbbb".to_string()), (40_000, "cccc".to_string())],
        );
        let s2 = buf.into_samples().remove(0);
        let merged = merge_samples(vec![vec![s], vec![s2]]);
        assert_eq!(merged.len(), 1);
        let ids: Vec<&str> = merged[0].exemplars.iter().map(|e| e.trace_id.as_str()).collect();
        assert!(ids.contains(&"aaaa"), "first node's exemplar kept: {ids:?}");
        assert!(ids.contains(&"cccc"), "second node's unique bound merged: {ids:?}");
        assert!(!ids.contains(&"bbbb"), "shared bound keeps one exemplar: {ids:?}");
    }

    #[test]
    fn sample_json_round_trip() {
        let mut h = Histogram::latency();
        h.record(300);
        h.record(40_000);
        h.record(5_000_000); // lands in +Inf
        let mut buf = MetricsBuf::new();
        buf.counter("c_total", "a counter", &[("k", "v\"q")], 7.5);
        buf.gauge("g", "a gauge", &[], -1.25);
        buf.histogram("h_us", "a histogram", &[("node", "n1")], &h);
        for s in buf.into_samples() {
            let back = Sample::from_json(&s.to_json()).expect("round-trip");
            assert_eq!(back, s);
        }
        // Garbage is rejected, not misparsed.
        assert!(Sample::from_json(&bp_util::json::Json::obj()).is_none());
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.register("fake", Arc::new(FakeSource));
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
