//! The request-lifecycle flight recorder.
//!
//! Every request the testbed dispatches passes through the same stages:
//! submitted (scheduled arrival) → dequeued (queue wait ends, execution
//! starts) → lock waits inside the storage engine → commit/abort. A
//! [`Span`] captures that lifecycle as explicit timestamps and stage
//! durations, small enough (one cache line) to copy by value.
//!
//! [`SpanRecorder`] stores spans in per-thread sharded, fixed-capacity
//! ring buffers. Everything is preallocated when the recorder is built:
//! the hot path takes one uncontended lock, writes 64 bytes into a ring
//! slot, and bumps four stage histograms — no allocation, no shared
//! atomics beyond the mode check. When a ring fills, the oldest spans are
//! overwritten (flight-recorder semantics); aggregate stage histograms
//! keep counting regardless, so percentiles cover the whole run even when
//! the raw rings only hold the tail.
//!
//! Lock-wait and commit durations are produced deep inside `bp-storage`,
//! which knows nothing about requests. Rather than thread a context
//! through every call signature, the storage layer deposits stage time
//! into a thread-local accumulator ([`add_lock_wait_us`] /
//! [`add_commit_us`]); the worker loop drains it per request with
//! [`take_stage_acc`]. Workers execute one request at a time on one
//! thread, so the accumulator needs no synchronization at all.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use bp_util::histogram::Histogram;
use bp_util::json::Json;
use bp_util::sync::{thread_slot, CachePadded, Mutex};

use crate::registry::{MetricsBuf, MetricsSource};

/// Lifecycle stages a request passes through; indexes into per-stage
/// histogram arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Scheduled arrival → dispatched to a worker.
    Queue = 0,
    /// Time blocked waiting for row locks inside the storage engine.
    Lock = 1,
    /// Execution time excluding lock waits and commit.
    Exec = 2,
    /// Commit processing (WAL write + fsync cost model).
    Commit = 3,
}

impl Stage {
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Lock, Stage::Exec, Stage::Commit];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Lock => "lock",
            Stage::Exec => "exec",
            Stage::Commit => "commit",
        }
    }
}

/// How the request ended. Mirrors `bp-core`'s `RequestOutcome` without
/// depending on it (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanOutcome {
    Committed = 0,
    UserAborted = 1,
    Failed = 2,
    /// Fast-failed by the admission controller without executing.
    Shed = 3,
}

impl SpanOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            SpanOutcome::Committed => "committed",
            SpanOutcome::UserAborted => "user_aborted",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Shed => "shed",
        }
    }
}

/// One request's recorded lifecycle. `Copy` and exactly one cache line so
/// ring writes are a plain memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Queue sequence number of the request.
    pub seq: u64,
    /// Scheduled arrival time (µs since run start).
    pub submitted_us: u64,
    /// When a worker pulled it off the queue and began executing.
    pub dequeued_us: u64,
    /// When execution (including retries and commit) finished.
    pub end_us: u64,
    /// Total time blocked on locks inside the storage engine.
    pub lock_wait_us: u64,
    /// Commit processing time.
    pub commit_us: u64,
    /// Tenant that issued the request (0 for single-tenant runs).
    pub tenant: u16,
    /// Phase of the script active when the request executed.
    pub phase: u16,
    /// Transaction type index within the workload.
    pub txn_type: u16,
    /// Retries before the final outcome.
    pub retries: u16,
    pub outcome: SpanOutcome,
}

impl Span {
    /// Queue wait: scheduled arrival → dispatch.
    pub fn queue_wait_us(&self) -> u64 {
        self.dequeued_us.saturating_sub(self.submitted_us)
    }

    /// Execution time excluding lock waits and commit processing.
    pub fn exec_us(&self) -> u64 {
        self.end_us
            .saturating_sub(self.dequeued_us)
            .saturating_sub(self.lock_wait_us)
            .saturating_sub(self.commit_us)
    }

    /// End-to-end latency including queue wait.
    pub fn total_us(&self) -> u64 {
        self.end_us.saturating_sub(self.submitted_us)
    }

    /// Stage duration by stage index.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Queue => self.queue_wait_us(),
            Stage::Lock => self.lock_wait_us,
            Stage::Exec => self.exec_us(),
            Stage::Commit => self.commit_us,
        }
    }

    /// JSON object for the `/trace/spans` JSONL endpoint.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("seq", self.seq)
            .set("tenant", self.tenant as u64)
            .set("phase", self.phase as u64)
            .set("txn_type", self.txn_type as u64)
            .set("submitted_us", self.submitted_us)
            .set("dequeued_us", self.dequeued_us)
            .set("end_us", self.end_us)
            .set("queue_us", self.queue_wait_us())
            .set("lock_us", self.lock_wait_us)
            .set("exec_us", self.exec_us())
            .set("commit_us", self.commit_us)
            .set("retries", self.retries as u64)
            .set("outcome", self.outcome.name())
    }
}

/// Recording mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SpanMode {
    /// Record nothing; `should_record` is a single relaxed load.
    Off = 0,
    /// Record a deterministic pseudo-random subset of requests.
    Sampled = 1,
    /// Record every request.
    #[default]
    Full = 2,
}

impl SpanMode {
    pub fn name(&self) -> &'static str {
        match self {
            SpanMode::Off => "off",
            SpanMode::Sampled => "sampled",
            SpanMode::Full => "full",
        }
    }

    /// Parse the `observability.spans` config value.
    pub fn parse(s: &str) -> Option<SpanMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(SpanMode::Off),
            "sampled" => Some(SpanMode::Sampled),
            "full" => Some(SpanMode::Full),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> SpanMode {
        match v {
            0 => SpanMode::Off,
            1 => SpanMode::Sampled,
            _ => SpanMode::Full,
        }
    }
}

/// Per-run observability configuration (`<observability>` in config.xml).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    pub mode: SpanMode,
    /// Fraction of requests recorded in `Sampled` mode (0.0..=1.0).
    pub sample_ratio: f64,
    /// Total span slots across all shards (divided evenly, min 64/shard).
    pub ring_capacity: usize,
    /// Shard count; power of two keeps the thread-slot modulo cheap.
    pub shards: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            mode: SpanMode::Full,
            sample_ratio: 0.1,
            ring_capacity: 8192,
            shards: 16,
        }
    }
}

thread_local! {
    /// (lock_wait_us, commit_us) deposited by the storage layer while the
    /// current thread executes one request.
    static STAGE_ACC: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Storage layer: add lock-wait time for the request executing on this
/// thread. No-op cost when nobody drains it.
#[inline]
pub fn add_lock_wait_us(us: u64) {
    STAGE_ACC.with(|c| {
        let (l, m) = c.get();
        c.set((l.saturating_add(us), m));
    });
}

/// Storage layer: add commit-processing time for the request executing on
/// this thread.
#[inline]
pub fn add_commit_us(us: u64) {
    STAGE_ACC.with(|c| {
        let (l, m) = c.get();
        c.set((l, m.saturating_add(us)));
    });
}

/// Worker loop: drain and reset this thread's (lock_wait_us, commit_us)
/// accumulator. Called once per request so stage time cannot leak across
/// requests.
#[inline]
pub fn take_stage_acc() -> (u64, u64) {
    STAGE_ACC.with(|c| c.replace((0, 0)))
}

/// SplitMix64 finalizer: maps sequence numbers to uniform u64s so sampling
/// is deterministic per request yet unbiased across arrival patterns.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One worker-side shard: a preallocated ring of spans plus per-stage
/// latency histograms that outlive ring overwrites.
struct Shard {
    ring: Vec<Span>,
    /// Total spans ever written to this shard (ring index = written % cap).
    written: u64,
    stage_hist: [Histogram; 4],
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            ring: Vec::with_capacity(capacity),
            written: 0,
            stage_hist: std::array::from_fn(|_| Histogram::latency()),
        }
    }

    /// Spans in write order (oldest first).
    fn ordered(&self, capacity: usize) -> impl Iterator<Item = &Span> {
        let split = if self.ring.len() < capacity {
            0
        } else {
            (self.written % capacity as u64) as usize
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }
}

/// Per-stage latency roll-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    pub stage: Stage,
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub mean_us: f64,
}

impl StageSummary {
    pub fn from_hist(stage: Stage, h: &Histogram) -> StageSummary {
        StageSummary {
            stage,
            count: h.count(),
            p50_us: h.p50(),
            p95_us: h.p95(),
            p99_us: h.p99(),
            mean_us: h.mean(),
        }
    }
}

/// Render the standard one-line per-stage summary:
/// `spans=N queue p50/p95/p99=a/b/c lock=... exec=... commit=...` (µs).
pub fn format_stage_line(count: u64, stages: &[StageSummary; 4]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("spans={count}");
    for s in stages {
        let _ = write!(
            out,
            " {} p50/p95/p99={}/{}/{}µs",
            s.stage.name(),
            s.p50_us,
            s.p95_us,
            s.p99_us
        );
    }
    out
}

/// The sharded flight recorder. See the module docs for the design.
pub struct SpanRecorder {
    shards: Vec<CachePadded<Mutex<Shard>>>,
    /// Ring capacity per shard.
    shard_capacity: usize,
    /// Current [`SpanMode`] as a u8 (hot-path reads are one relaxed load).
    mode: AtomicU8,
    /// Sampling threshold: record when `splitmix64(seq) <= threshold`.
    threshold: AtomicU64,
}

impl SpanRecorder {
    pub fn new(cfg: ObsConfig) -> SpanRecorder {
        let shards = cfg.shards.max(1);
        let shard_capacity = (cfg.ring_capacity / shards).max(64);
        SpanRecorder {
            shards: (0..shards)
                .map(|_| CachePadded::new(Mutex::new(Shard::new(shard_capacity))))
                .collect(),
            shard_capacity,
            mode: AtomicU8::new(cfg.mode as u8),
            threshold: AtomicU64::new(Self::ratio_to_threshold(cfg.sample_ratio)),
        }
    }

    fn ratio_to_threshold(ratio: f64) -> u64 {
        (ratio.clamp(0.0, 1.0) * u64::MAX as f64) as u64
    }

    pub fn mode(&self) -> SpanMode {
        SpanMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Change the recording mode (and sampling ratio) at runtime.
    pub fn set_mode(&self, mode: SpanMode, sample_ratio: f64) {
        self.threshold
            .store(Self::ratio_to_threshold(sample_ratio), Ordering::Relaxed);
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Should the request with this sequence number be recorded? In `Off`
    /// mode this is one relaxed load and a branch (~1ns); in `Sampled` it
    /// adds a 4-multiply hash — deterministic per seq, so reruns of the
    /// same schedule sample the same requests.
    #[inline]
    pub fn should_record(&self, seq: u64) -> bool {
        match self.mode.load(Ordering::Relaxed) {
            0 => false,
            2 => true,
            _ => splitmix64(seq) <= self.threshold.load(Ordering::Relaxed),
        }
    }

    /// Record one span into the calling thread's shard. One uncontended
    /// lock, four histogram bumps, one 64-byte ring write; no allocation
    /// once the ring has grown to capacity.
    pub fn record(&self, span: Span) {
        let mut sh = self.shards[thread_slot() % self.shards.len()].lock();
        sh.stage_hist[Stage::Queue as usize].record(span.queue_wait_us());
        sh.stage_hist[Stage::Lock as usize].record(span.lock_wait_us);
        sh.stage_hist[Stage::Exec as usize].record(span.exec_us());
        sh.stage_hist[Stage::Commit as usize].record(span.commit_us);
        let idx = (sh.written % self.shard_capacity as u64) as usize;
        if idx < sh.ring.len() {
            sh.ring[idx] = span;
        } else {
            sh.ring.push(span);
        }
        sh.written += 1;
    }

    /// Total spans ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().written).sum()
    }

    /// Spans lost to ring overwrites.
    pub fn overwritten(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let sh = s.lock();
                sh.written.saturating_sub(sh.ring.len() as u64)
            })
            .sum()
    }

    /// Total ring slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The most recent `n` retained spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let mut all: Vec<Span> = Vec::new();
        for s in &self.shards {
            let sh = s.lock();
            all.extend(sh.ordered(self.shard_capacity).copied());
        }
        all.sort_by_key(|s| (s.end_us, s.seq));
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Merged per-stage histograms (cover the whole run, not just the
    /// retained rings).
    pub fn stage_histograms(&self) -> [Histogram; 4] {
        let mut acc: [Histogram; 4] = std::array::from_fn(|_| Histogram::latency());
        for s in &self.shards {
            let sh = s.lock();
            for (a, h) in acc.iter_mut().zip(&sh.stage_hist) {
                a.merge(h);
            }
        }
        acc
    }

    /// Per-stage p50/p95/p99/mean across the whole run.
    pub fn stage_summaries(&self) -> [StageSummary; 4] {
        let hists = self.stage_histograms();
        std::array::from_fn(|i| StageSummary::from_hist(Stage::ALL[i], &hists[i]))
    }

    /// One-line per-stage roll-up for logs.
    pub fn summary_line(&self) -> String {
        format_stage_line(self.recorded(), &self.stage_summaries())
    }

    /// Per-phase stage summaries built from the retained spans, ordered by
    /// phase index. Older phases may be partially overwritten in long runs
    /// (flight-recorder semantics).
    pub fn phase_summaries(&self) -> Vec<(u16, [StageSummary; 4])> {
        let spans = self.recent(usize::MAX);
        let mut phases: Vec<u16> = spans.iter().map(|s| s.phase).collect();
        phases.sort_unstable();
        phases.dedup();
        phases
            .into_iter()
            .map(|phase| {
                let mut hists: [Histogram; 4] = std::array::from_fn(|_| Histogram::latency());
                for sp in spans.iter().filter(|s| s.phase == phase) {
                    for stage in Stage::ALL {
                        hists[stage as usize].record(sp.stage_us(stage));
                    }
                }
                (
                    phase,
                    std::array::from_fn(|i| StageSummary::from_hist(Stage::ALL[i], &hists[i])),
                )
            })
            .collect()
    }
}

impl MetricsSource for SpanRecorder {
    fn collect(&self, buf: &mut MetricsBuf) {
        let hists = self.stage_histograms();
        for (stage, h) in Stage::ALL.iter().zip(&hists) {
            buf.histogram(
                "bp_stage_latency_us",
                "Per-stage request latency in microseconds",
                &[("stage", stage.name())],
                h,
            );
        }
        buf.counter(
            "bp_spans_recorded_total",
            "Lifecycle spans recorded by the flight recorder",
            &[],
            self.recorded() as f64,
        );
        buf.counter(
            "bp_spans_overwritten_total",
            "Spans lost to ring-buffer overwrites",
            &[],
            self.overwritten() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, phase: u16) -> Span {
        Span {
            seq,
            submitted_us: seq * 100,
            dequeued_us: seq * 100 + 40,
            end_us: seq * 100 + 240,
            lock_wait_us: 30,
            commit_us: 20,
            tenant: 0,
            phase,
            txn_type: (seq % 3) as u16,
            retries: 0,
            outcome: SpanOutcome::Committed,
        }
    }

    #[test]
    fn stage_durations_derive() {
        let s = span(1, 0);
        assert_eq!(s.queue_wait_us(), 40);
        assert_eq!(s.lock_wait_us, 30);
        assert_eq!(s.commit_us, 20);
        assert_eq!(s.exec_us(), 200 - 30 - 20);
        assert_eq!(s.total_us(), 240);
    }

    #[test]
    fn exec_never_underflows() {
        let mut s = span(1, 0);
        s.lock_wait_us = 10_000; // accumulator raced past the wall clock
        assert_eq!(s.exec_us(), 0);
    }

    #[test]
    fn full_mode_records_everything() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..500 {
            assert!(r.should_record(i));
            r.record(span(i, 0));
        }
        assert_eq!(r.recorded(), 500);
        assert_eq!(r.overwritten(), 0);
        let sums = r.stage_summaries();
        assert_eq!(sums[Stage::Queue as usize].count, 500);
        assert!((sums[Stage::Queue as usize].mean_us - 40.0).abs() < 2.0);
    }

    #[test]
    fn off_mode_records_nothing() {
        let r = SpanRecorder::new(ObsConfig { mode: SpanMode::Off, ..ObsConfig::default() });
        for i in 0..100 {
            assert!(!r.should_record(i));
        }
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn sampled_mode_hits_ratio() {
        let cfg = ObsConfig { mode: SpanMode::Sampled, sample_ratio: 0.25, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| r.should_record(i)).count() as f64;
        let ratio = hits / n as f64;
        assert!((ratio - 0.25).abs() < 0.01, "observed ratio {ratio}");
        // Deterministic: the same seq always gives the same answer.
        assert_eq!(r.should_record(42), r.should_record(42));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let cfg = ObsConfig { ring_capacity: 64, shards: 1, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        assert_eq!(r.capacity(), 64);
        for i in 0..100 {
            r.record(span(i, 0));
        }
        assert_eq!(r.recorded(), 100);
        assert_eq!(r.overwritten(), 36);
        let recent = r.recent(1000);
        assert_eq!(recent.len(), 64);
        // Oldest retained span is #36; newest is #99; order is oldest-first.
        assert_eq!(recent.first().unwrap().seq, 36);
        assert_eq!(recent.last().unwrap().seq, 99);
        // Histograms still cover all 100.
        assert_eq!(r.stage_summaries()[0].count, 100);
    }

    #[test]
    fn recent_caps_at_n() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..50 {
            r.record(span(i, 0));
        }
        let recent = r.recent(10);
        assert_eq!(recent.len(), 10);
        assert_eq!(recent.last().unwrap().seq, 49);
    }

    #[test]
    fn mode_switch_at_runtime() {
        let r = SpanRecorder::new(ObsConfig::default());
        assert_eq!(r.mode(), SpanMode::Full);
        r.set_mode(SpanMode::Off, 0.0);
        assert_eq!(r.mode(), SpanMode::Off);
        assert!(!r.should_record(7));
        r.set_mode(SpanMode::Sampled, 1.0);
        assert!(r.should_record(7), "ratio 1.0 samples everything");
    }

    #[test]
    fn stage_accumulator_drains_per_request() {
        take_stage_acc();
        add_lock_wait_us(100);
        add_lock_wait_us(50);
        add_commit_us(25);
        assert_eq!(take_stage_acc(), (150, 25));
        assert_eq!(take_stage_acc(), (0, 0), "drained");
    }

    #[test]
    fn phase_summaries_grouped() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..10 {
            r.record(span(i, 0));
        }
        for i in 10..30 {
            r.record(span(i, 1));
        }
        let phases = r.phase_summaries();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, 0);
        assert_eq!(phases[0].1[0].count, 10);
        assert_eq!(phases[1].1[0].count, 20);
    }

    #[test]
    fn summary_line_mentions_all_stages() {
        let r = SpanRecorder::new(ObsConfig::default());
        r.record(span(1, 0));
        let line = r.summary_line();
        for stage in Stage::ALL {
            assert!(line.contains(stage.name()), "{line}");
        }
        assert!(line.starts_with("spans=1"));
    }

    #[test]
    fn span_json_has_all_stage_fields() {
        let j = span(3, 1).to_json();
        for key in [
            "seq", "tenant", "phase", "txn_type", "queue_us", "lock_us", "exec_us", "commit_us",
            "outcome",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("outcome").unwrap().as_str(), Some("committed"));
    }

    #[test]
    fn multithreaded_recording_merges() {
        let r = std::sync::Arc::new(SpanRecorder::new(ObsConfig::default()));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.record(span(t * 1000 + i, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 8 * 500);
        assert_eq!(r.stage_summaries()[0].count, 8 * 500);
    }
}
