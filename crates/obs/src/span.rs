//! The request-lifecycle flight recorder and distributed-tracing core.
//!
//! Every request the testbed dispatches passes through the same stages:
//! submitted (scheduled arrival) → dequeued (queue wait ends, execution
//! starts) → lock waits inside the storage engine → commit/abort. A
//! [`Span`] captures that lifecycle as explicit timestamps and stage
//! durations, small enough (~72 bytes) to copy by value. Each span carries
//! a 64-bit [`trace id`](trace_id) derived deterministically from the run
//! seed and the request's schedule sequence number, so same-seed runs
//! produce identical ids and a trace id printed by one tool (an exemplar
//! on `/metrics`, a journal event, a doctor finding) resolves in any other
//! (`GET /trace/{id}`), across every node of a cluster.
//!
//! [`SpanRecorder`] stores spans in per-thread sharded, fixed-capacity
//! ring buffers. Everything is preallocated when the recorder is built:
//! the hot path takes one uncontended lock, writes one ring slot, and
//! bumps four stage histograms — no allocation, no shared atomics beyond
//! the mode check. When a ring fills, the oldest spans are overwritten
//! (flight-recorder semantics); aggregate stage histograms keep counting
//! regardless, so percentiles cover the whole run even when the raw rings
//! only hold the tail.
//!
//! Sampling is **tail-based** in `Sampled` mode: the keep/drop decision
//! happens at span *completion* ([`SpanRecorder::offer`]), when the
//! outcome and total latency are known. Slow (above the live p99-derived
//! threshold), errored, shed, and crash-straddling requests are always
//! retained; the healthy rest is ratio-sampled by the deterministic
//! splitmix64 head-sampler under a fixed span budget.
//!
//! Lock-wait and commit durations are produced deep inside `bp-storage`,
//! which knows nothing about requests. Rather than thread a context
//! through every call signature, the storage layer deposits stage time
//! into a thread-local accumulator ([`add_lock_wait_us`] /
//! [`add_commit_us`]); the worker loop drains it per request with
//! [`take_stage_acc`]. Workers execute one request at a time on one
//! thread, so the accumulator needs no synchronization at all.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use bp_util::histogram::Histogram;
use bp_util::json::Json;
use bp_util::sync::{thread_slot, CachePadded, Mutex};

use crate::registry::{MetricsBuf, MetricsSource};

/// Lifecycle stages a request passes through; indexes into per-stage
/// histogram arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Scheduled arrival → dispatched to a worker.
    Queue = 0,
    /// Time blocked waiting for row locks inside the storage engine.
    Lock = 1,
    /// Execution time excluding lock waits and commit.
    Exec = 2,
    /// Commit processing (WAL write + fsync cost model).
    Commit = 3,
}

impl Stage {
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Lock, Stage::Exec, Stage::Commit];

    pub fn name(&self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Lock => "lock",
            Stage::Exec => "exec",
            Stage::Commit => "commit",
        }
    }
}

/// How the request ended. Mirrors `bp-core`'s `RequestOutcome` without
/// depending on it (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanOutcome {
    Committed = 0,
    UserAborted = 1,
    Failed = 2,
    /// Fast-failed by the admission controller without executing.
    Shed = 3,
}

impl SpanOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            SpanOutcome::Committed => "committed",
            SpanOutcome::UserAborted => "user_aborted",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Shed => "shed",
        }
    }

    /// Parse the `?outcome=` filter value of `GET /trace/spans`.
    pub fn parse(s: &str) -> Option<SpanOutcome> {
        match s {
            "committed" => Some(SpanOutcome::Committed),
            "user_aborted" => Some(SpanOutcome::UserAborted),
            "failed" => Some(SpanOutcome::Failed),
            "shed" => Some(SpanOutcome::Shed),
            _ => None,
        }
    }
}

/// One request's recorded lifecycle. `Copy` and small (~72 bytes) so ring
/// writes are a plain memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 64-bit distributed trace id; deterministic from (run seed, seq) via
    /// [`trace_id`]. Never 0 for real requests (0 means "untraced").
    pub trace_id: u64,
    /// Queue sequence number of the request.
    pub seq: u64,
    /// Scheduled arrival time (µs since run start).
    pub submitted_us: u64,
    /// When a worker pulled it off the queue and began executing.
    pub dequeued_us: u64,
    /// When execution (including retries and commit) finished.
    pub end_us: u64,
    /// Total time blocked on locks inside the storage engine.
    pub lock_wait_us: u64,
    /// Commit processing time.
    pub commit_us: u64,
    /// Tenant that issued the request (0 for single-tenant runs).
    pub tenant: u16,
    /// Phase of the script active when the request executed.
    pub phase: u16,
    /// Transaction type index within the workload.
    pub txn_type: u16,
    /// Retries before the final outcome.
    pub retries: u16,
    pub outcome: SpanOutcome,
}

impl Span {
    /// Queue wait: scheduled arrival → dispatch.
    pub fn queue_wait_us(&self) -> u64 {
        self.dequeued_us.saturating_sub(self.submitted_us)
    }

    /// Execution time excluding lock waits and commit processing.
    pub fn exec_us(&self) -> u64 {
        self.end_us
            .saturating_sub(self.dequeued_us)
            .saturating_sub(self.lock_wait_us)
            .saturating_sub(self.commit_us)
    }

    /// End-to-end latency including queue wait.
    pub fn total_us(&self) -> u64 {
        self.end_us.saturating_sub(self.submitted_us)
    }

    /// Stage duration by stage index.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Queue => self.queue_wait_us(),
            Stage::Lock => self.lock_wait_us,
            Stage::Exec => self.exec_us(),
            Stage::Commit => self.commit_us,
        }
    }

    /// JSON object for the `/trace/spans` JSONL endpoint.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("trace_id", format_trace_id(self.trace_id).as_str())
            .set("seq", self.seq)
            .set("tenant", self.tenant as u64)
            .set("phase", self.phase as u64)
            .set("txn_type", self.txn_type as u64)
            .set("submitted_us", self.submitted_us)
            .set("dequeued_us", self.dequeued_us)
            .set("end_us", self.end_us)
            .set("queue_us", self.queue_wait_us())
            .set("lock_us", self.lock_wait_us)
            .set("exec_us", self.exec_us())
            .set("commit_us", self.commit_us)
            .set("retries", self.retries as u64)
            .set("outcome", self.outcome.name())
    }
}

/// Recording mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SpanMode {
    /// Record nothing; `should_record` is a single relaxed load.
    Off = 0,
    /// Record a deterministic pseudo-random subset of requests.
    Sampled = 1,
    /// Record every request.
    #[default]
    Full = 2,
}

impl SpanMode {
    pub fn name(&self) -> &'static str {
        match self {
            SpanMode::Off => "off",
            SpanMode::Sampled => "sampled",
            SpanMode::Full => "full",
        }
    }

    /// Parse the `observability.spans` config value.
    pub fn parse(s: &str) -> Option<SpanMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(SpanMode::Off),
            "sampled" => Some(SpanMode::Sampled),
            "full" => Some(SpanMode::Full),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> SpanMode {
        match v {
            0 => SpanMode::Off,
            1 => SpanMode::Sampled,
            _ => SpanMode::Full,
        }
    }
}

/// Per-run observability configuration (`<observability>` in config.xml).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    pub mode: SpanMode,
    /// Fraction of requests recorded in `Sampled` mode (0.0..=1.0).
    pub sample_ratio: f64,
    /// Total span slots across all shards (divided evenly, min 64/shard).
    pub ring_capacity: usize,
    /// Shard count; power of two keeps the thread-slot modulo cheap.
    pub shards: usize,
    /// Tail-sampling span budget: total retained-span slots across shards.
    /// 0 (the default) means "use `ring_capacity`".
    pub span_budget: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            mode: SpanMode::Full,
            sample_ratio: 0.1,
            ring_capacity: 8192,
            shards: 16,
            span_budget: 0,
        }
    }
}

/// Derive the deterministic 64-bit trace id for request `seq` of a run
/// with the given seed. Same (seed, seq) → same id on every node and
/// every rerun; never returns 0 (0 is the "untraced" sentinel).
#[inline]
pub fn trace_id(seed: u64, seq: u64) -> u64 {
    let id = splitmix64(seed ^ splitmix64(seq));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Canonical lowercase 16-hex-digit rendering of a trace id — the form
/// used in exemplars, journal fields, and `/trace/{id}` paths.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a trace id in the canonical hex form (1–16 hex digits, case
/// insensitive). Returns `None` for anything else, including empty
/// strings and ids that would be 0.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

thread_local! {
    /// Trace id of the request currently executing on this thread, or 0.
    /// Lets deep storage-layer journal events (deadlock victims, crashes)
    /// tag themselves with the request that was on-CPU, without threading
    /// an id through every engine call signature.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Worker loop: mark `id` as the trace executing on this thread (0 to
/// clear between requests).
#[inline]
pub fn set_current_trace(id: u64) {
    CURRENT_TRACE.with(|c| c.set(id));
}

/// The trace id currently executing on this thread (0 if none).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

thread_local! {
    /// (lock_wait_us, commit_us) deposited by the storage layer while the
    /// current thread executes one request.
    static STAGE_ACC: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Storage layer: add lock-wait time for the request executing on this
/// thread. No-op cost when nobody drains it.
#[inline]
pub fn add_lock_wait_us(us: u64) {
    STAGE_ACC.with(|c| {
        let (l, m) = c.get();
        c.set((l.saturating_add(us), m));
    });
}

/// Storage layer: add commit-processing time for the request executing on
/// this thread.
#[inline]
pub fn add_commit_us(us: u64) {
    STAGE_ACC.with(|c| {
        let (l, m) = c.get();
        c.set((l, m.saturating_add(us)));
    });
}

/// Worker loop: drain and reset this thread's (lock_wait_us, commit_us)
/// accumulator. Called once per request so stage time cannot leak across
/// requests.
#[inline]
pub fn take_stage_acc() -> (u64, u64) {
    STAGE_ACC.with(|c| c.replace((0, 0)))
}

/// SplitMix64 finalizer: maps sequence numbers to uniform u64s so sampling
/// is deterministic per request yet unbiased across arrival patterns.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One worker-side shard: a preallocated ring of spans plus per-stage
/// latency histograms that outlive ring overwrites.
struct Shard {
    ring: Vec<Span>,
    /// Total spans ever written to this shard (ring index = written % cap).
    written: u64,
    stage_hist: [Histogram; 4],
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            ring: Vec::with_capacity(capacity),
            written: 0,
            stage_hist: std::array::from_fn(|_| Histogram::latency()),
        }
    }

    /// Spans in write order (oldest first).
    fn ordered(&self, capacity: usize) -> impl Iterator<Item = &Span> {
        let split = if self.ring.len() < capacity {
            0
        } else {
            (self.written % capacity as u64) as usize
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }
}

/// Per-stage latency roll-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    pub stage: Stage,
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub mean_us: f64,
}

impl StageSummary {
    pub fn from_hist(stage: Stage, h: &Histogram) -> StageSummary {
        StageSummary {
            stage,
            count: h.count(),
            p50_us: h.p50(),
            p95_us: h.p95(),
            p99_us: h.p99(),
            mean_us: h.mean(),
        }
    }
}

/// Render the standard one-line per-stage summary:
/// `spans=N queue p50/p95/p99=a/b/c lock=... exec=... commit=...` (µs).
pub fn format_stage_line(count: u64, stages: &[StageSummary; 4]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("spans={count}");
    for s in stages {
        let _ = write!(
            out,
            " {} p50/p95/p99={}/{}/{}µs",
            s.stage.name(),
            s.p50_us,
            s.p95_us,
            s.p99_us
        );
    }
    out
}

/// Why the tail sampler retained a span. Indexes into the per-reason
/// counters and the `reason` label on `bp_spans_tail_retained_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum RetainReason {
    /// Total latency exceeded the live slow threshold (tracks window p99).
    Slow = 0,
    /// The request failed (serialization error, deadlock, engine error).
    Error = 1,
    /// Shed by the admission controller without executing.
    Shed = 2,
    /// The request's lifetime straddled a server crash.
    Crash = 3,
    /// Healthy request kept by the deterministic ratio sampler.
    Ratio = 4,
}

impl RetainReason {
    pub const ALL: [RetainReason; 5] = [
        RetainReason::Slow,
        RetainReason::Error,
        RetainReason::Shed,
        RetainReason::Crash,
        RetainReason::Ratio,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            RetainReason::Slow => "slow",
            RetainReason::Error => "error",
            RetainReason::Shed => "shed",
            RetainReason::Crash => "crash",
            RetainReason::Ratio => "ratio",
        }
    }
}

/// Sentinel for "no slow threshold learned yet".
const SLOW_UNSET: u64 = u64::MAX;

/// The sharded flight recorder. See the module docs for the design.
pub struct SpanRecorder {
    shards: Vec<CachePadded<Mutex<Shard>>>,
    /// Ring capacity per shard.
    shard_capacity: usize,
    /// Current [`SpanMode`] as a u8 (hot-path reads are one relaxed load).
    mode: AtomicU8,
    /// Sampling threshold: record when `splitmix64(seq) <= threshold`.
    threshold: AtomicU64,
    /// Tail-sampling slow cutoff in µs ([`SLOW_UNSET`] until the sensor
    /// pushes the first live window p99).
    slow_threshold: AtomicU64,
    /// Span-clock time of the most recent observed server crash (0: none).
    last_crash_us: AtomicU64,
    /// Spans retained by the tail sampler, by [`RetainReason`].
    tail_retained: [AtomicU64; 5],
    /// Retained spans later evicted by budget-ring overwrite (Sampled
    /// mode only — in Full mode overwrites are ordinary flight-recorder
    /// wraparound, not a budget problem).
    tail_evicted: AtomicU64,
    /// Journal for `trace_evict` events (optional: tests and standalone
    /// recorders run without one).
    journal: Option<std::sync::Arc<crate::journal::EventJournal>>,
    /// Last second (journal clock) a `trace_evict` event was emitted;
    /// rate-limits eviction logging to ~1/s.
    evict_logged_s: AtomicU64,
}

impl SpanRecorder {
    pub fn new(cfg: ObsConfig) -> SpanRecorder {
        let shards = cfg.shards.max(1);
        let budget = if cfg.span_budget > 0 { cfg.span_budget } else { cfg.ring_capacity };
        let shard_capacity = (budget / shards).max(64);
        SpanRecorder {
            shards: (0..shards)
                .map(|_| CachePadded::new(Mutex::new(Shard::new(shard_capacity))))
                .collect(),
            shard_capacity,
            mode: AtomicU8::new(cfg.mode as u8),
            threshold: AtomicU64::new(Self::ratio_to_threshold(cfg.sample_ratio)),
            slow_threshold: AtomicU64::new(SLOW_UNSET),
            last_crash_us: AtomicU64::new(0),
            tail_retained: std::array::from_fn(|_| AtomicU64::new(0)),
            tail_evicted: AtomicU64::new(0),
            journal: None,
            evict_logged_s: AtomicU64::new(0),
        }
    }

    /// Attach the event journal so budget-ring evictions of retained spans
    /// surface as `trace_evict` events.
    pub fn with_journal(mut self, journal: std::sync::Arc<crate::journal::EventJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Convert a sample ratio to the u64 comparison threshold, rounding
    /// half-up so tiny ratios aren't truncated to "never sample". A ratio
    /// of exactly 1.0 (or more) must map to `u64::MAX` so every hash value
    /// passes the `<=` gate.
    fn ratio_to_threshold(ratio: f64) -> u64 {
        let r = ratio.clamp(0.0, 1.0);
        if r >= 1.0 {
            return u64::MAX;
        }
        // u64::MAX as f64 rounds to 2^64 exactly, so r * 2^64 + 0.5 floors
        // to the half-up-rounded threshold; guard the edge where rounding
        // lands on 2^64 itself.
        let scaled = (r * u64::MAX as f64 + 0.5).floor();
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }

    pub fn mode(&self) -> SpanMode {
        SpanMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Is any recording active? Workers use this as the cheap per-request
    /// gate; the retain/drop decision itself is tail-based in [`offer`].
    ///
    /// [`offer`]: SpanRecorder::offer
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != 0
    }

    /// Change the recording mode (and sampling ratio) at runtime.
    pub fn set_mode(&self, mode: SpanMode, sample_ratio: f64) {
        self.threshold
            .store(Self::ratio_to_threshold(sample_ratio), Ordering::Relaxed);
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Should the request with this sequence number be recorded? In `Off`
    /// mode this is one relaxed load and a branch (~1ns); in `Sampled` it
    /// adds a 4-multiply hash — deterministic per seq, so reruns of the
    /// same schedule sample the same requests.
    #[inline]
    pub fn should_record(&self, seq: u64) -> bool {
        match self.mode.load(Ordering::Relaxed) {
            0 => false,
            2 => true,
            _ => splitmix64(seq) <= self.threshold.load(Ordering::Relaxed),
        }
    }

    /// Update the tail sampler's slow cutoff from the live windowed p99.
    /// Rises slowly (1/8 of the gap per push, so a latency spike can't
    /// drag the cutoff up fast enough to hide its own tail) but falls
    /// fast (adopts a lower p99 immediately, so recovery re-arms slow
    /// detection right away). The first push is adopted directly.
    pub fn set_slow_threshold(&self, p99_us: u64) {
        let target = p99_us.max(1);
        let cur = self.slow_threshold.load(Ordering::Relaxed);
        let next = if cur == SLOW_UNSET || target <= cur {
            target
        } else {
            cur.saturating_add(((target - cur) / 8).max(1))
        };
        self.slow_threshold.store(next, Ordering::Relaxed);
    }

    /// Current slow cutoff in µs, if one has been learned.
    pub fn slow_threshold_us(&self) -> Option<u64> {
        match self.slow_threshold.load(Ordering::Relaxed) {
            SLOW_UNSET => None,
            v => Some(v),
        }
    }

    /// Note a server crash observed at `now_us` (span-clock axis) so
    /// requests whose lifetime straddles it are always retained.
    pub fn note_crash(&self, now_us: u64) {
        self.last_crash_us.store(now_us.max(1), Ordering::Relaxed);
    }

    /// Tail-sampling decision for one *completed* span. In `Full` mode
    /// everything is recorded; in `Off` mode nothing. In `Sampled` mode a
    /// span is always retained when it is slow (above the live threshold),
    /// errored, shed, or crash-straddling; otherwise the deterministic
    /// ratio sampler decides. Returns whether the span was recorded.
    pub fn offer(&self, span: Span) -> bool {
        match self.mode.load(Ordering::Relaxed) {
            0 => return false,
            2 => {
                self.record(span);
                return true;
            }
            _ => {}
        }
        let reason = if span.outcome == SpanOutcome::Failed {
            Some(RetainReason::Error)
        } else if span.outcome == SpanOutcome::Shed {
            Some(RetainReason::Shed)
        } else if self.is_slow(&span) {
            Some(RetainReason::Slow)
        } else if self.straddles_crash(&span) {
            Some(RetainReason::Crash)
        } else if splitmix64(span.seq) <= self.threshold.load(Ordering::Relaxed) {
            Some(RetainReason::Ratio)
        } else {
            None
        };
        match reason {
            Some(r) => {
                self.tail_retained[r as usize].fetch_add(1, Ordering::Relaxed);
                self.record(span);
                true
            }
            None => false,
        }
    }

    /// Compares *service* latency (dequeue → end) against the cutoff — the
    /// same domain the cutoff is learned from (the live windowed latency
    /// p99). Queue wait is excluded deliberately: under saturation every
    /// request queues, and a total-latency comparison would retain nearly
    /// all of them, flooding the budget ring and evicting the genuinely
    /// slow spans.
    fn is_slow(&self, span: &Span) -> bool {
        let cutoff = self.slow_threshold.load(Ordering::Relaxed);
        cutoff != SLOW_UNSET && span.end_us.saturating_sub(span.dequeued_us) > cutoff
    }

    fn straddles_crash(&self, span: &Span) -> bool {
        let crash = self.last_crash_us.load(Ordering::Relaxed);
        crash != 0 && span.submitted_us <= crash && crash <= span.end_us
    }

    /// Spans retained by the tail sampler for `reason`.
    pub fn tail_retained(&self, reason: RetainReason) -> u64 {
        self.tail_retained[reason as usize].load(Ordering::Relaxed)
    }

    /// Retained spans later dropped by budget-ring overwrite (Sampled mode).
    pub fn tail_evicted(&self) -> u64 {
        self.tail_evicted.load(Ordering::Relaxed)
    }

    /// Record one span into the calling thread's shard. One uncontended
    /// lock, four histogram bumps, one ring-slot write; no allocation once
    /// the ring has grown to capacity.
    pub fn record(&self, span: Span) {
        let mut evicted_now = None;
        {
            let mut sh = self.shards[thread_slot() % self.shards.len()].lock();
            sh.stage_hist[Stage::Queue as usize].record(span.queue_wait_us());
            sh.stage_hist[Stage::Lock as usize].record(span.lock_wait_us);
            sh.stage_hist[Stage::Exec as usize].record(span.exec_us());
            sh.stage_hist[Stage::Commit as usize].record(span.commit_us);
            let idx = (sh.written % self.shard_capacity as u64) as usize;
            if idx < sh.ring.len() {
                sh.ring[idx] = span;
                // In Sampled mode every ring slot holds a deliberately
                // retained span, so an overwrite means the budget is too
                // small for the retention rate — count it and (rate
                // limited) journal it. Full-mode wraparound is expected
                // flight-recorder behavior, not a budget problem.
                if self.mode.load(Ordering::Relaxed) == SpanMode::Sampled as u8 {
                    evicted_now = Some(self.tail_evicted.fetch_add(1, Ordering::Relaxed) + 1);
                }
            } else {
                sh.ring.push(span);
            }
            sh.written += 1;
        }
        if let Some(total) = evicted_now {
            self.log_evict(total);
        }
    }

    /// Emit a rate-limited (~1/s) `trace_evict` journal event.
    fn log_evict(&self, evicted_total: u64) {
        let Some(journal) = &self.journal else { return };
        // Stamp is the wall second + 1 so the very first eviction (second
        // 0 vs the initial 0) still logs; at most one event per second.
        let stamp = crate::journal::journal_now_us() / 1_000_000 + 1;
        let last = self.evict_logged_s.load(Ordering::Relaxed);
        if stamp == last
            || self
                .evict_logged_s
                .compare_exchange(last, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        let budget = self.capacity();
        journal.emit_with(crate::journal::Severity::Warn, "obs", "trace_evict", || {
            (
                format!(
                    "span budget full: {evicted_total} retained spans evicted (budget {budget})"
                ),
                vec![("evicted", evicted_total.to_string()), ("budget", budget.to_string())],
            )
        });
    }

    /// Total spans ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().written).sum()
    }

    /// Spans lost to ring overwrites.
    pub fn overwritten(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let sh = s.lock();
                sh.written.saturating_sub(sh.ring.len() as u64)
            })
            .sum()
    }

    /// Total ring slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// The most recent `n` retained spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let mut all: Vec<Span> = Vec::new();
        for s in &self.shards {
            let sh = s.lock();
            all.extend(sh.ordered(self.shard_capacity).copied());
        }
        all.sort_by_key(|s| (s.end_us, s.seq));
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Find the retained span for a trace id, if it is still in a ring.
    /// If multiple spans match (never for real runs — ids are unique per
    /// seq), the most recently completed wins.
    pub fn find_trace(&self, id: u64) -> Option<Span> {
        if id == 0 {
            return None;
        }
        let mut best: Option<Span> = None;
        for s in &self.shards {
            let sh = s.lock();
            for sp in sh.ordered(self.shard_capacity) {
                if sp.trace_id == id && best.is_none_or(|b| sp.end_us >= b.end_us) {
                    best = Some(*sp);
                }
            }
        }
        best
    }

    /// Merged per-stage histograms (cover the whole run, not just the
    /// retained rings).
    pub fn stage_histograms(&self) -> [Histogram; 4] {
        let mut acc: [Histogram; 4] = std::array::from_fn(|_| Histogram::latency());
        for s in &self.shards {
            let sh = s.lock();
            for (a, h) in acc.iter_mut().zip(&sh.stage_hist) {
                a.merge(h);
            }
        }
        acc
    }

    /// Per-stage p50/p95/p99/mean across the whole run.
    pub fn stage_summaries(&self) -> [StageSummary; 4] {
        let hists = self.stage_histograms();
        std::array::from_fn(|i| StageSummary::from_hist(Stage::ALL[i], &hists[i]))
    }

    /// One-line per-stage roll-up for logs.
    pub fn summary_line(&self) -> String {
        format_stage_line(self.recorded(), &self.stage_summaries())
    }

    /// Per-phase stage summaries built from the retained spans, ordered by
    /// phase index. Older phases may be partially overwritten in long runs
    /// (flight-recorder semantics).
    pub fn phase_summaries(&self) -> Vec<(u16, [StageSummary; 4])> {
        let spans = self.recent(usize::MAX);
        let mut phases: Vec<u16> = spans.iter().map(|s| s.phase).collect();
        phases.sort_unstable();
        phases.dedup();
        phases
            .into_iter()
            .map(|phase| {
                let mut hists: [Histogram; 4] = std::array::from_fn(|_| Histogram::latency());
                for sp in spans.iter().filter(|s| s.phase == phase) {
                    for stage in Stage::ALL {
                        hists[stage as usize].record(sp.stage_us(stage));
                    }
                }
                (
                    phase,
                    std::array::from_fn(|i| StageSummary::from_hist(Stage::ALL[i], &hists[i])),
                )
            })
            .collect()
    }
}

impl MetricsSource for SpanRecorder {
    fn collect(&self, buf: &mut MetricsBuf) {
        let hists = self.stage_histograms();
        // Exemplars: pair each stage histogram with (duration, trace id)
        // samples from the recently retained spans so a human staring at a
        // bucket can jump straight to one concrete request.
        let recent = self.recent(256);
        for (stage, h) in Stage::ALL.iter().zip(&hists) {
            let exemplars: Vec<(u64, String)> = recent
                .iter()
                .filter(|s| s.trace_id != 0)
                .map(|s| (s.stage_us(*stage), format_trace_id(s.trace_id)))
                .collect();
            buf.histogram_with_exemplars(
                "bp_stage_latency_us",
                "Per-stage request latency in microseconds",
                &[("stage", stage.name())],
                h,
                &exemplars,
            );
        }
        buf.counter(
            "bp_spans_recorded_total",
            "Lifecycle spans recorded by the flight recorder",
            &[],
            self.recorded() as f64,
        );
        buf.counter(
            "bp_spans_overwritten_total",
            "Spans lost to ring-buffer overwrites",
            &[],
            self.overwritten() as f64,
        );
        for reason in RetainReason::ALL {
            buf.counter(
                "bp_spans_tail_retained_total",
                "Spans retained by the tail-based sampler, by reason",
                &[("reason", reason.name())],
                self.tail_retained(reason) as f64,
            );
        }
        buf.counter(
            "bp_spans_tail_evicted_total",
            "Tail-retained spans evicted by span-budget ring overwrites",
            &[],
            self.tail_evicted() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, phase: u16) -> Span {
        Span {
            trace_id: trace_id(42, seq),
            seq,
            submitted_us: seq * 100,
            dequeued_us: seq * 100 + 40,
            end_us: seq * 100 + 240,
            lock_wait_us: 30,
            commit_us: 20,
            tenant: 0,
            phase,
            txn_type: (seq % 3) as u16,
            retries: 0,
            outcome: SpanOutcome::Committed,
        }
    }

    #[test]
    fn stage_durations_derive() {
        let s = span(1, 0);
        assert_eq!(s.queue_wait_us(), 40);
        assert_eq!(s.lock_wait_us, 30);
        assert_eq!(s.commit_us, 20);
        assert_eq!(s.exec_us(), 200 - 30 - 20);
        assert_eq!(s.total_us(), 240);
    }

    #[test]
    fn exec_never_underflows() {
        let mut s = span(1, 0);
        s.lock_wait_us = 10_000; // accumulator raced past the wall clock
        assert_eq!(s.exec_us(), 0);
    }

    #[test]
    fn full_mode_records_everything() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..500 {
            assert!(r.should_record(i));
            r.record(span(i, 0));
        }
        assert_eq!(r.recorded(), 500);
        assert_eq!(r.overwritten(), 0);
        let sums = r.stage_summaries();
        assert_eq!(sums[Stage::Queue as usize].count, 500);
        assert!((sums[Stage::Queue as usize].mean_us - 40.0).abs() < 2.0);
    }

    #[test]
    fn off_mode_records_nothing() {
        let r = SpanRecorder::new(ObsConfig { mode: SpanMode::Off, ..ObsConfig::default() });
        for i in 0..100 {
            assert!(!r.should_record(i));
        }
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn sampled_mode_hits_ratio() {
        let cfg = ObsConfig { mode: SpanMode::Sampled, sample_ratio: 0.25, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| r.should_record(i)).count() as f64;
        let ratio = hits / n as f64;
        assert!((ratio - 0.25).abs() < 0.01, "observed ratio {ratio}");
        // Deterministic: the same seq always gives the same answer.
        assert_eq!(r.should_record(42), r.should_record(42));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let cfg = ObsConfig { ring_capacity: 64, shards: 1, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        assert_eq!(r.capacity(), 64);
        for i in 0..100 {
            r.record(span(i, 0));
        }
        assert_eq!(r.recorded(), 100);
        assert_eq!(r.overwritten(), 36);
        let recent = r.recent(1000);
        assert_eq!(recent.len(), 64);
        // Oldest retained span is #36; newest is #99; order is oldest-first.
        assert_eq!(recent.first().unwrap().seq, 36);
        assert_eq!(recent.last().unwrap().seq, 99);
        // Histograms still cover all 100.
        assert_eq!(r.stage_summaries()[0].count, 100);
    }

    #[test]
    fn recent_caps_at_n() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..50 {
            r.record(span(i, 0));
        }
        let recent = r.recent(10);
        assert_eq!(recent.len(), 10);
        assert_eq!(recent.last().unwrap().seq, 49);
    }

    #[test]
    fn mode_switch_at_runtime() {
        let r = SpanRecorder::new(ObsConfig::default());
        assert_eq!(r.mode(), SpanMode::Full);
        r.set_mode(SpanMode::Off, 0.0);
        assert_eq!(r.mode(), SpanMode::Off);
        assert!(!r.should_record(7));
        r.set_mode(SpanMode::Sampled, 1.0);
        assert!(r.should_record(7), "ratio 1.0 samples everything");
    }

    #[test]
    fn stage_accumulator_drains_per_request() {
        take_stage_acc();
        add_lock_wait_us(100);
        add_lock_wait_us(50);
        add_commit_us(25);
        assert_eq!(take_stage_acc(), (150, 25));
        assert_eq!(take_stage_acc(), (0, 0), "drained");
    }

    #[test]
    fn phase_summaries_grouped() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..10 {
            r.record(span(i, 0));
        }
        for i in 10..30 {
            r.record(span(i, 1));
        }
        let phases = r.phase_summaries();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, 0);
        assert_eq!(phases[0].1[0].count, 10);
        assert_eq!(phases[1].1[0].count, 20);
    }

    #[test]
    fn summary_line_mentions_all_stages() {
        let r = SpanRecorder::new(ObsConfig::default());
        r.record(span(1, 0));
        let line = r.summary_line();
        for stage in Stage::ALL {
            assert!(line.contains(stage.name()), "{line}");
        }
        assert!(line.starts_with("spans=1"));
    }

    #[test]
    fn span_json_has_all_stage_fields() {
        let j = span(3, 1).to_json();
        for key in [
            "seq", "tenant", "phase", "txn_type", "queue_us", "lock_us", "exec_us", "commit_us",
            "outcome",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("outcome").unwrap().as_str(), Some("committed"));
    }

    #[test]
    fn trace_ids_deterministic_and_distinct() {
        // Same (seed, seq) → same id; different seq or seed → different id.
        assert_eq!(trace_id(42, 7), trace_id(42, 7));
        assert_ne!(trace_id(42, 7), trace_id(42, 8));
        assert_ne!(trace_id(42, 7), trace_id(43, 7));
        assert_ne!(trace_id(42, 7), 0, "0 is the untraced sentinel");
        // 100k seqs under one seed: no collisions (birthday bound is ~3e-10).
        let mut ids: Vec<u64> = (0..100_000).map(|s| trace_id(1, s)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100_000);
    }

    #[test]
    fn trace_id_hex_round_trips() {
        let id = trace_id(42, 1234);
        let hex = format_trace_id(id);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_trace_id(&hex), Some(id));
        assert_eq!(parse_trace_id(&hex.to_uppercase()), Some(id));
        assert_eq!(parse_trace_id("1"), Some(1), "short forms parse");
        for bad in ["", "xyz", "0", "00000000000000000", "12 34", "-1"] {
            assert_eq!(parse_trace_id(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn ratio_to_threshold_rounds_half_up_exactly() {
        // u64::MAX as f64 == 2^64 exactly, so ratios that are exact
        // multiples of 2^-64 map to exact thresholds. The old truncating
        // conversion lost the fractional part and rounded tiny ratios to
        // "never sample".
        let ulp = 2f64.powi(-64);
        assert_eq!(SpanRecorder::ratio_to_threshold(0.0), 0);
        assert_eq!(SpanRecorder::ratio_to_threshold(0.25 * ulp), 0, "below half rounds down");
        assert_eq!(SpanRecorder::ratio_to_threshold(0.5 * ulp), 1, "half rounds up");
        assert_eq!(SpanRecorder::ratio_to_threshold(1.5 * ulp), 2, "half rounds up");
        assert_eq!(SpanRecorder::ratio_to_threshold(2.0 * ulp), 2, "exact multiples exact");
        assert_eq!(SpanRecorder::ratio_to_threshold(1.0), u64::MAX);
        assert_eq!(SpanRecorder::ratio_to_threshold(7.5), u64::MAX, "clamped above");
        assert_eq!(SpanRecorder::ratio_to_threshold(-0.5), 0, "clamped below");
    }

    #[test]
    fn current_trace_tls_round_trips() {
        set_current_trace(0);
        assert_eq!(current_trace(), 0);
        set_current_trace(0xdead_beef);
        assert_eq!(current_trace(), 0xdead_beef);
        set_current_trace(0);
        assert_eq!(current_trace(), 0);
    }

    fn slow_span(seq: u64, total_us: u64) -> Span {
        let mut s = span(seq, 0);
        s.end_us = s.submitted_us + total_us;
        s
    }

    #[test]
    fn tail_sampler_always_keeps_slow_errored_shed_and_crash_spans() {
        let cfg = ObsConfig { mode: SpanMode::Sampled, sample_ratio: 0.0, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        // Ratio 0: nothing healthy is kept…
        assert!(!r.offer(span(1, 0)));
        // …but errors, sheds always are.
        let mut failed = span(2, 0);
        failed.outcome = SpanOutcome::Failed;
        assert!(r.offer(failed));
        assert_eq!(r.tail_retained(RetainReason::Error), 1);
        let mut shed = span(3, 0);
        shed.outcome = SpanOutcome::Shed;
        assert!(r.offer(shed));
        assert_eq!(r.tail_retained(RetainReason::Shed), 1);
        // Slow: only once a threshold has been learned.
        assert!(!r.offer(slow_span(4, 1_000_000)), "no threshold learned yet");
        r.set_slow_threshold(10_000);
        assert!(r.offer(slow_span(5, 1_000_000)));
        assert_eq!(r.tail_retained(RetainReason::Slow), 1);
        assert!(!r.offer(slow_span(6, 5_000)), "below threshold, healthy, ratio 0");
        // Crash-straddling: submitted ≤ crash ≤ end.
        let sp = span(7, 0); // lives [700, 940]
        r.note_crash(800);
        assert!(r.offer(sp));
        assert_eq!(r.tail_retained(RetainReason::Crash), 1);
        let after = span(9, 0); // lives [900, 1140]; crash at 800 is before
        assert!(!r.offer(after));
    }

    #[test]
    fn tail_sampler_ratio_gate_matches_head_sampler() {
        let cfg = ObsConfig { mode: SpanMode::Sampled, sample_ratio: 0.25, ..ObsConfig::default() };
        let r = SpanRecorder::new(cfg);
        for i in 0..10_000 {
            let kept = r.offer(span(i, 0));
            assert_eq!(kept, r.should_record(i), "offer and head gate agree on healthy spans");
        }
        let ratio = r.tail_retained(RetainReason::Ratio) as f64 / 10_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "observed ratio {ratio}");
    }

    #[test]
    fn slow_threshold_rises_slowly_falls_fast() {
        let r = SpanRecorder::new(ObsConfig::default());
        assert_eq!(r.slow_threshold_us(), None);
        r.set_slow_threshold(10_000);
        assert_eq!(r.slow_threshold_us(), Some(10_000), "first push adopted directly");
        r.set_slow_threshold(90_000);
        assert_eq!(r.slow_threshold_us(), Some(20_000), "rises 1/8 of the gap");
        r.set_slow_threshold(5_000);
        assert_eq!(r.slow_threshold_us(), Some(5_000), "falls immediately");
        r.set_slow_threshold(5_001);
        assert_eq!(r.slow_threshold_us(), Some(5_001), "tiny rises still move (min 1µs)");
    }

    #[test]
    fn sampled_overwrite_counts_eviction_but_full_does_not() {
        let full = SpanRecorder::new(ObsConfig { ring_capacity: 64, shards: 1, ..ObsConfig::default() });
        for i in 0..100 {
            full.record(span(i, 0));
        }
        assert_eq!(full.tail_evicted(), 0, "full-mode wraparound is not an eviction");
        let cfg = ObsConfig {
            mode: SpanMode::Sampled,
            sample_ratio: 1.0,
            ring_capacity: 128,
            span_budget: 64,
            shards: 1,
            ..ObsConfig::default()
        };
        let tail = SpanRecorder::new(cfg);
        assert_eq!(tail.capacity(), 64, "span_budget overrides ring_capacity");
        for i in 0..100 {
            assert!(tail.offer(span(i, 0)));
        }
        assert_eq!(tail.tail_evicted(), 36);
    }

    #[test]
    fn eviction_emits_rate_limited_journal_event() {
        let journal = std::sync::Arc::new(crate::journal::EventJournal::new());
        let cfg = ObsConfig {
            mode: SpanMode::Sampled,
            sample_ratio: 1.0,
            span_budget: 64,
            shards: 1,
            ..ObsConfig::default()
        };
        let r = SpanRecorder::new(cfg).with_journal(journal.clone());
        for i in 0..1_000 {
            r.offer(span(i, 0));
        }
        let evicts: Vec<_> = journal
            .recent(usize::MAX, crate::journal::Severity::Debug)
            .into_iter()
            .filter(|e| e.kind == "trace_evict")
            .collect();
        assert!(!evicts.is_empty(), "eviction must journal");
        assert!(evicts.len() <= 2, "rate-limited to ~1/s, got {}", evicts.len());
        let e = &evicts[0];
        assert!(e.fields.iter().any(|(k, _)| *k == "evicted"));
        assert!(e.fields.iter().any(|(k, v)| *k == "budget" && v == "64"));
    }

    #[test]
    fn find_trace_locates_retained_span() {
        let r = SpanRecorder::new(ObsConfig::default());
        for i in 0..50 {
            r.record(span(i, 0));
        }
        let want = trace_id(42, 17);
        let found = r.find_trace(want).expect("span retained");
        assert_eq!(found.seq, 17);
        assert_eq!(r.find_trace(0), None);
        assert_eq!(r.find_trace(0x1234_5678), None, "unknown id");
    }

    #[test]
    fn multithreaded_recording_merges() {
        let r = std::sync::Arc::new(SpanRecorder::new(ObsConfig::default()));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.record(span(t * 1000 + i, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 8 * 500);
        assert_eq!(r.stage_summaries()[0].count, 8 * 500);
    }
}
