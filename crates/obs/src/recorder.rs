//! The continuous telemetry recorder and the `#bp-report v1` artifact.
//!
//! A background thread ([`TelemetryRecorder::spawn`]) calls a sensor
//! closure every tick; the closure (built by `bp-core`, which can see the
//! stats collector, the engine counters, the breaker and the commanded
//! rate) returns one [`TelemetrySample`] — client-window latency
//! percentiles plus per-interval engine counter deltas. Samples land in a
//! fixed-capacity in-memory ring, flight-recorder style.
//!
//! [`Report`] is the export: a versioned, self-describing, line-oriented
//! text artifact in the same style as `#bp-replay v1`, carrying the sample
//! timeline *and* the event journal so a single file answers both "what
//! happened" and "what changed right before". [`Report::from_text`] is the
//! exact inverse of [`Report::to_text`]; the doctor consumes the parsed
//! form.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bp_util::sync::Mutex;

use crate::journal::{Event, EventJournal};
use crate::registry::{MetricsBuf, MetricsSource};

/// One telemetry tick: client-side window stats plus per-interval deltas
/// of the engine counters the doctor classifies on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetrySample {
    /// Journal-aligned timestamp (µs, same origin as [`Event::ts_us`]).
    pub t_us: u64,
    /// Commanded offered rate (tx/s); `f64::INFINITY` for unlimited.
    pub rate: f64,
    /// Delivered throughput over the window (tx/s).
    pub throughput: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    /// Failed / completed in the window (0..=1).
    pub error_rate: f64,
    /// Shed / (completed + shed) in the window (0..=1).
    pub shed_rate: f64,
    /// Breaker state gauge: 0 closed, 1 open, 2 half-open.
    pub breaker_state: u8,
    /// Request-queue backlog at sample time.
    pub queue_depth: u64,
    // Engine counter deltas over the interval:
    pub commits: u64,
    pub lock_waits: u64,
    pub lock_wait_us: u64,
    pub deadlocks: u64,
    pub io_reads: u64,
    pub io_writes: u64,
    pub wal_fsyncs: u64,
    pub wal_bytes: u64,
    /// Time spent in commit/fsync processing (includes injected stalls).
    pub fsync_us: u64,
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub busy_us: u64,
}

/// Column names, index-aligned with [`TelemetrySample::values`] /
/// [`TelemetrySample::from_values`]. Written into the artifact header so
/// the format is self-describing.
pub const SAMPLE_COLUMNS: [&str; 21] = [
    "t_us", "rate", "tput", "p50_us", "p99_us", "err", "shed", "breaker", "qdepth", "commits",
    "lock_waits", "lock_wait_us", "deadlocks", "io_reads", "io_writes", "wal_fsyncs", "wal_bytes",
    "fsync_us", "buf_hits", "buf_misses", "busy_us",
];

impl TelemetrySample {
    fn values(&self) -> [f64; 21] {
        [
            self.t_us as f64,
            self.rate,
            self.throughput,
            self.p50_us as f64,
            self.p99_us as f64,
            self.error_rate,
            self.shed_rate,
            self.breaker_state as f64,
            self.queue_depth as f64,
            self.commits as f64,
            self.lock_waits as f64,
            self.lock_wait_us as f64,
            self.deadlocks as f64,
            self.io_reads as f64,
            self.io_writes as f64,
            self.wal_fsyncs as f64,
            self.wal_bytes as f64,
            self.fsync_us as f64,
            self.buf_hits as f64,
            self.buf_misses as f64,
            self.busy_us as f64,
        ]
    }

    fn from_values(v: &[f64]) -> TelemetrySample {
        let u = |i: usize| v[i] as u64;
        TelemetrySample {
            t_us: u(0),
            rate: v[1],
            throughput: v[2],
            p50_us: u(3),
            p99_us: u(4),
            error_rate: v[5],
            shed_rate: v[6],
            breaker_state: v[7] as u8,
            queue_depth: u(8),
            commits: u(9),
            lock_waits: u(10),
            lock_wait_us: u(11),
            deadlocks: u(12),
            io_reads: u(13),
            io_writes: u(14),
            wal_fsyncs: u(15),
            wal_bytes: u(16),
            fsync_us: u(17),
            buf_hits: u(18),
            buf_misses: u(19),
            busy_us: u(20),
        }
    }

    /// One artifact line: the 21 columns space-separated, floats in Rust
    /// round-trip `Display` form (`inf` for unlimited rate).
    pub fn to_line(&self) -> String {
        let vals = self.values();
        let mut out = String::with_capacity(128);
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                out.push_str(&format!("{}", *v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        out
    }

    pub fn from_line(line: &str) -> Result<TelemetrySample, String> {
        let vals: Vec<f64> = line
            .split_whitespace()
            .map(|t| t.parse::<f64>().map_err(|e| format!("bad sample value `{t}`: {e}")))
            .collect::<Result<_, _>>()?;
        if vals.len() != SAMPLE_COLUMNS.len() {
            return Err(format!(
                "sample has {} columns, expected {}",
                vals.len(),
                SAMPLE_COLUMNS.len()
            ));
        }
        Ok(TelemetrySample::from_values(&vals))
    }
}

struct Ring {
    samples: Vec<TelemetrySample>,
    written: u64,
}

/// Guard for the background sampling thread; stops and joins on drop.
pub struct TelemetryGuard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryGuard {
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Fixed-capacity ring of [`TelemetrySample`]s with an optional background
/// sampling thread.
pub struct TelemetryRecorder {
    interval_us: u64,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl TelemetryRecorder {
    pub const DEFAULT_CAPACITY: usize = 1024;

    pub fn new(interval_us: u64) -> TelemetryRecorder {
        TelemetryRecorder::with_capacity(interval_us, Self::DEFAULT_CAPACITY)
    }

    pub fn with_capacity(interval_us: u64, capacity: usize) -> TelemetryRecorder {
        TelemetryRecorder {
            interval_us: interval_us.max(1),
            capacity: capacity.max(4),
            ring: Mutex::new(Ring { samples: Vec::new(), written: 0 }),
        }
    }

    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Record one sample (the background thread's tick body; also the
    /// direct path for DES runs that tick a simulated clock).
    pub fn record(&self, sample: TelemetrySample) {
        let mut ring = self.ring.lock();
        let idx = (ring.written % self.capacity as u64) as usize;
        if idx < ring.samples.len() {
            ring.samples[idx] = sample;
        } else {
            ring.samples.push(sample);
        }
        ring.written += 1;
    }

    /// Samples ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().written
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        let ring = self.ring.lock();
        let split = if ring.samples.len() < self.capacity {
            0
        } else {
            (ring.written % self.capacity as u64) as usize
        };
        ring.samples[split..]
            .iter()
            .chain(ring.samples[..split].iter())
            .copied()
            .collect()
    }

    /// Spawn the sampling thread: every `interval_us` of wall time, call
    /// `sensor` and record what it returns. Stops when the guard drops.
    pub fn spawn(
        self: &Arc<Self>,
        mut sensor: Box<dyn FnMut() -> TelemetrySample + Send>,
    ) -> TelemetryGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let recorder = self.clone();
        let interval = std::time::Duration::from_micros(self.interval_us);
        let handle = std::thread::Builder::new()
            .name("bp-telemetry".into())
            .spawn(move || {
                // Sleep in small slices so stop is honored promptly even
                // with second-long intervals.
                let slice = interval.min(std::time::Duration::from_millis(25));
                let mut next = std::time::Instant::now() + interval;
                while !stop2.load(Ordering::Relaxed) {
                    if std::time::Instant::now() >= next {
                        recorder.record(sensor());
                        next += interval;
                    }
                    std::thread::sleep(slice);
                }
            })
            .expect("spawn telemetry thread");
        TelemetryGuard { stop, handle: Some(handle) }
    }

    /// Export the recorded timeline plus the journal as a report.
    pub fn report(&self, journal: &EventJournal) -> Report {
        Report {
            version: REPORT_VERSION,
            interval_us: self.interval_us,
            samples: self.samples(),
            events: journal.all(),
        }
    }
}

impl MetricsSource for TelemetryRecorder {
    fn collect(&self, buf: &mut MetricsBuf) {
        buf.counter(
            "bp_report_samples_total",
            "Telemetry samples recorded by the report recorder",
            &[],
            self.recorded() as f64,
        );
        buf.gauge(
            "bp_report_interval_us",
            "Telemetry recorder tick interval in microseconds",
            &[],
            self.interval_us as f64,
        );
    }
}

/// Report artifact version this build writes and understands.
pub const REPORT_VERSION: u32 = 1;
const HEADER: &str = "#bp-report v1";

/// The parsed (or about-to-be-serialized) report artifact: a per-run
/// timeline of samples aligned with the event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    pub version: u32,
    pub interval_us: u64,
    pub samples: Vec<TelemetrySample>,
    pub events: Vec<Event>,
}

impl Report {
    /// Serialize: header, column legend, samples, events, `end`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.samples.len() * 96 + self.events.len() * 64);
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "interval_us {}", self.interval_us);
        let _ = writeln!(out, "columns {}", SAMPLE_COLUMNS.join(" "));
        let _ = writeln!(out, "samples {}", self.samples.len());
        for s in &self.samples {
            let _ = writeln!(out, "{}", s.to_line());
        }
        let _ = writeln!(out, "events {}", self.events.len());
        for e in &self.events {
            let _ = writeln!(out, "{}", e.to_line());
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Line-streaming parse; the exact inverse of [`Report::to_text`].
    pub fn from_text(text: &str) -> Result<Report, String> {
        let mut lines = text.lines().enumerate();
        let err = |lineno: usize, msg: String| format!("report line {}: {msg}", lineno + 1);

        let (n0, first) = lines.next().ok_or("empty report")?;
        match first.trim().strip_prefix("#bp-report v") {
            Some("1") => {}
            Some(_) => return Err(err(n0, "unsupported report version".into())),
            None => return Err(err(n0, "missing #bp-report header".into())),
        }

        let mut report = Report { version: REPORT_VERSION, ..Report::default() };
        let mut saw_end = false;
        while let Some((lineno, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            match key {
                "interval_us" => {
                    report.interval_us =
                        value.trim().parse().map_err(|e| err(lineno, format!("bad interval: {e}")))?;
                }
                "columns" => {
                    let cols: Vec<&str> = value.split_whitespace().collect();
                    if cols != SAMPLE_COLUMNS {
                        return Err(err(lineno, "unknown column layout".into()));
                    }
                }
                "samples" => {
                    let n: usize =
                        value.trim().parse().map_err(|e| err(lineno, format!("bad count: {e}")))?;
                    report.samples.reserve(n);
                    for _ in 0..n {
                        let (ln, row) = lines.next().ok_or("truncated samples section")?;
                        report.samples.push(
                            TelemetrySample::from_line(row.trim()).map_err(|e| err(ln, e))?,
                        );
                    }
                }
                "events" => {
                    let n: usize =
                        value.trim().parse().map_err(|e| err(lineno, format!("bad count: {e}")))?;
                    report.events.reserve(n);
                    for _ in 0..n {
                        let (ln, row) = lines.next().ok_or("truncated events section")?;
                        report.events.push(Event::from_line(row.trim()).map_err(|e| err(ln, e))?);
                    }
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(err(lineno, format!("unknown section `{other}`"))),
            }
        }
        if !saw_end {
            return Err("report missing `end` marker".into());
        }
        Ok(report)
    }

    /// Run duration covered by the samples, µs.
    pub fn duration_us(&self) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t_us.saturating_sub(a.t_us) + self.interval_us,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Severity;

    fn sample(i: u64) -> TelemetrySample {
        TelemetrySample {
            t_us: i * 1_000_000,
            rate: if i == 0 { f64::INFINITY } else { 300.5 },
            throughput: 295.25,
            p50_us: 180,
            p99_us: 900 + i * 10,
            error_rate: 0.0125,
            shed_rate: 0.0,
            breaker_state: (i % 3) as u8,
            queue_depth: 4,
            commits: 295,
            lock_waits: 12,
            lock_wait_us: 35_000,
            deadlocks: 1,
            io_reads: 40,
            io_writes: 8,
            wal_fsyncs: 295,
            wal_bytes: 29_500,
            fsync_us: 2_400,
            buf_hits: 900,
            buf_misses: 11,
            busy_us: 180_000,
        }
    }

    #[test]
    fn sample_line_round_trips() {
        for i in 0..3 {
            let s = sample(i);
            let back = TelemetrySample::from_line(&s.to_line()).unwrap();
            assert_eq!(back, s, "line: {}", s.to_line());
        }
        assert!(TelemetrySample::from_line("1 2 3").is_err(), "short row rejected");
        assert!(TelemetrySample::from_line(&"x ".repeat(21)).is_err());
    }

    #[test]
    fn report_round_trips_with_events() {
        let journal = EventJournal::new();
        journal.emit_with(Severity::Warn, "chaos", "chaos_armed", || {
            ("plan lock-storm armed".into(), vec![("plan", "lock-storm".to_string())])
        });
        journal.emit(Severity::Info, "core", "phase_change", "phase 0 -> 1");

        let rec = TelemetryRecorder::new(1_000_000);
        for i in 0..5 {
            rec.record(sample(i));
        }
        let report = rec.report(&journal);
        assert_eq!(report.samples.len(), 5);
        assert_eq!(report.events.len(), 2);

        let text = report.to_text();
        assert!(text.starts_with("#bp-report v1\n"));
        assert!(text.contains("columns t_us rate tput"));
        let back = Report::from_text(&text).unwrap();
        assert_eq!(back, report, "byte-identical round trip");
        assert_eq!(back.to_text(), text);
        assert_eq!(report.duration_us(), 5_000_000);
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(Report::from_text("").is_err());
        assert!(Report::from_text("#bp-report v2\nend\n").is_err());
        assert!(Report::from_text("#bp-report v1\nsamples 1\n").is_err(), "truncated");
        assert!(Report::from_text("#bp-report v1\nbogus 3\nend\n").is_err());
        assert!(Report::from_text("#bp-report v1\nsamples 0\nevents 0\n").is_err(), "no end");
        assert!(
            Report::from_text("#bp-report v1\ncolumns a b c\nend\n").is_err(),
            "column mismatch"
        );
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = TelemetryRecorder::with_capacity(1_000_000, 4);
        for i in 0..10 {
            rec.record(sample(i));
        }
        assert_eq!(rec.recorded(), 10);
        let kept = rec.samples();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].t_us, 6_000_000, "oldest retained");
        assert_eq!(kept[3].t_us, 9_000_000);
    }

    #[test]
    fn spawned_sensor_ticks_and_stops() {
        let rec = Arc::new(TelemetryRecorder::new(10_000));
        let n = Arc::new(AtomicBool::new(false));
        let guard = rec.spawn(Box::new({
            let mut i = 0u64;
            move || {
                i += 1;
                sample(i)
            }
        }));
        std::thread::sleep(std::time::Duration::from_millis(120));
        guard.stop();
        let after = rec.recorded();
        assert!(after >= 2, "expected ticks, got {after}");
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(rec.recorded(), after, "no ticks after stop");
        drop(n);
    }
}
