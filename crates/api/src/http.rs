//! Minimal HTTP/1.x transport for the control API over `std::net`.
//!
//! Enough of HTTP for programmatic clients: request line, headers,
//! `Content-Length` bodies, JSON in/out, connection-close semantics.
//!
//! The parser is hardened against misbehaving clients: request line and
//! headers are read through hard byte/count ceilings (431), bodies are
//! capped at [`MAX_BODY_BYTES`] (413), a malformed `Content-Length` is a
//! 400, and a truncated or stalled body is a 400/408 instead of a hung
//! worker thread or an abandoned connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bp_util::json::Json;

use crate::router::{ApiServer, Method, Request};

/// A running HTTP listener; shuts down when the guard is dropped.
pub struct HttpServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServerGuard {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl ApiServer {
    /// Serve the API over HTTP on `addr` (e.g. "127.0.0.1:0").
    pub fn serve_http(self: &Arc<Self>, addr: &str) -> std::io::Result<HttpServerGuard> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let server = self.clone();
        let handle = std::thread::Builder::new()
            .name("bp-api-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &server);
                    });
                }
            })?;
        Ok(HttpServerGuard { addr: local, stop, handle: Some(handle) })
    }
}

/// Ceiling on one header or request line, bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Ceiling on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Ceiling on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Read one CRLF/LF-terminated line without ever buffering more than
/// `max` bytes. `Ok(None)` means the line exceeded the ceiling.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            break; // EOF mid-line: serve what we have
        }
        let take = available.len().min(max + 1 - buf.len());
        match available[..take].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                buf.extend_from_slice(&available[..take]);
                reader.consume(take);
                if buf.len() > max {
                    return Ok(None);
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

fn handle_connection(stream: TcpStream, server: &ApiServer) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    // Request line, bounded.
    let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES)? {
        Some(l) => l,
        None => {
            return write_json(stream, 431, &Json::obj().set("error", "request line too long"))
        }
    };
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return write_json(stream, 400, &Json::obj().set("error", "bad request line")),
    };

    // Headers: bounded per line and in count; a malformed Content-Length is
    // rejected rather than silently treated as "no body".
    let mut content_length = 0usize;
    let mut header_count = 0usize;
    loop {
        if header_count >= MAX_HEADERS {
            return write_json(stream, 431, &Json::obj().set("error", "too many headers"));
        }
        let header = match read_line_bounded(&mut reader, MAX_LINE_BYTES)? {
            Some(h) => h,
            None => {
                return write_json(stream, 431, &Json::obj().set("error", "header too long"))
            }
        };
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return write_json(
                            stream,
                            400,
                            &Json::obj().set("error", "bad content-length"),
                        )
                    }
                };
            }
        }
    }

    // Body: size-capped, and a short or stalled read answers instead of
    // hanging the connection or dying silently.
    let body = if content_length > 0 {
        if content_length > MAX_BODY_BYTES {
            return write_json(stream, 413, &Json::obj().set("error", "body too large"));
        }
        let mut buf = vec![0u8; content_length];
        if let Err(e) = reader.read_exact(&mut buf) {
            let (status, msg) = match e.kind() {
                std::io::ErrorKind::UnexpectedEof => (400, "truncated body"),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    (408, "body read timed out")
                }
                _ => return Err(e),
            };
            return write_json(stream, status, &Json::obj().set("error", msg));
        }
        match std::str::from_utf8(&buf).ok().and_then(|s| Json::parse(s).ok()) {
            Some(j) => Some(j),
            None => {
                return write_json(stream, 400, &Json::obj().set("error", "invalid JSON body"))
            }
        }
    } else {
        None
    };

    let Some(method) = Method::parse(&method) else {
        return write_json(stream, 405, &Json::obj().set("error", "unsupported method"));
    };
    let response = server.handle(&Request { method, path, body });
    match &response.raw {
        Some((content_type, text)) => write_response(stream, response.status, content_type, text),
        None => write_json(stream, response.status, &response.body),
    }
}

fn write_json(stream: TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    write_response(stream, status, "application/json", &body.to_string())
}

fn write_response(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    text: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        text.len(),
        text
    )?;
    stream.flush()
}

/// Per-request I/O ceiling for the blocking HTTP client: connect, every
/// read, and every write each give up after this long, so a dead or
/// wedged peer costs a bounded wait instead of a hung thread. Heartbeat
/// and fan-out paths in the cluster layer pass tighter ceilings via
/// [`http_request_text_timeout`].
pub const CLIENT_IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// A tiny blocking HTTP client for tests and examples.
pub fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> std::io::Result<(u16, Json)> {
    let (status, text) = http_request_text(addr, method, path, body)?;
    let json = Json::parse(&text).unwrap_or(Json::Null);
    Ok((status, json))
}

/// Like [`http_request`] but with an explicit per-request timeout.
pub fn http_request_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: std::time::Duration,
) -> std::io::Result<(u16, Json)> {
    let (status, text) = http_request_text_timeout(addr, method, path, body, timeout)?;
    let json = Json::parse(&text).unwrap_or(Json::Null);
    Ok((status, json))
}

/// Like [`http_request`] but returns the raw response body — what text
/// endpoints (`/metrics`, `/trace/spans`) need.
pub fn http_request_text(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<(u16, String)> {
    http_request_text_timeout(addr, method, path, body, CLIENT_IO_TIMEOUT)
}

/// The raw-body client with an explicit timeout applied to connect, reads
/// and writes independently.
pub fn http_request_text_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: std::time::Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body_text = body.map(|b| b.to_string()).unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body_text.len(),
        body_text
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let text = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ControlState, Controller, Mixture, Rate, RequestQueue, StatsCollector, TransactionType};
    use bp_storage::{Database, Personality};
    use bp_util::clock::sim_clock;

    fn server() -> Arc<ApiServer> {
        let (_, clock) = sim_clock();
        let types = vec![TransactionType::new("T", 100.0, true)];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(50.0), mixture, 1e4);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["T"]));
        let db = Database::new(Personality::test());
        let c = Controller::new(state, queue, stats, db, types, "w");
        let s = Arc::new(ApiServer::new());
        s.register("w", c);
        s
    }

    #[test]
    fn http_roundtrip() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, body) = http_request(guard.addr(), "GET", "/workloads", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, Json::Arr(vec![Json::Str("w".into())]));

        let (status, body) = http_request(
            guard.addr(),
            "POST",
            "/workloads/w/rate",
            Some(&Json::obj().set("tps", 123.0)),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("rate").unwrap().as_f64(), Some(123.0));
    }

    #[test]
    fn http_errors() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, _) = http_request(guard.addr(), "GET", "/ghost", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(guard.addr(), "PATCH", "/workloads", None).unwrap();
        assert_eq!(status, 405);
    }

    #[test]
    fn http_metrics_plaintext() {
        let (_, clock) = sim_clock();
        let types = vec![TransactionType::new("T", 100.0, true)];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(50.0), mixture, 1e4);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["T"]));
        let db = Database::new(Personality::test());
        let c = Controller::new(state, queue, stats, db, types, "w");
        let reg = Arc::new(bp_obs::MetricsRegistry::new());
        let s = Arc::new(ApiServer::new().with_registry(reg));
        s.register("w", c);

        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("# TYPE bp_server_commits_total counter"), "{text}");
    }

    #[test]
    fn http_health_and_readiness() {
        // An empty server is alive but not ready.
        let empty = Arc::new(ApiServer::new());
        let guard = empty.serve_http("127.0.0.1:0").unwrap();
        let (status, body) = http_request(guard.addr(), "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));
        let (status, body) = http_request(guard.addr(), "GET", "/readyz", None).unwrap();
        assert_eq!(status, 503, "{body}");
        assert_eq!(body.get("ready").unwrap().as_bool(), Some(false));

        // With a workload registered, readiness flips to 200.
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, body) = http_request(guard.addr(), "GET", "/readyz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("ready").unwrap().as_bool(), Some(true));
        assert_eq!(body.get("workloads").unwrap().as_u64(), Some(1));
    }

    /// Fire raw bytes at a live socket and return the response status line's
    /// status code (0 if the server dropped the connection without replying).
    fn raw_request(addr: SocketAddr, bytes: &[u8]) -> u16 {
        let mut stream = TcpStream::connect(addr).unwrap();
        // The server may answer-and-close before the full request is
        // written (early 431/413), breaking the write mid-stream.
        let _ = stream.write_all(bytes);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    #[test]
    fn truncated_body_gets_400_not_hang() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        // Promise 100 bytes, send 8, close: must answer 400, not hang
        // until the read timeout or die without a response.
        let status = raw_request(
            guard.addr(),
            b"POST /workloads/w/rate HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"tps\":",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn oversized_body_gets_413() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        // The server must reject on the declared length alone — no need to
        // stream 2 MiB at it.
        let status = raw_request(
            guard.addr(),
            format!("POST /workloads/w/rate HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20)
                .as_bytes(),
        );
        assert_eq!(status, 413);
    }

    #[test]
    fn bad_content_length_gets_400() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let status = raw_request(
            guard.addr(),
            b"POST /workloads/w/rate HTTP/1.1\r\nContent-Length: banana\r\n\r\n{}",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn oversized_request_line_gets_431() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 * 1024));
        assert_eq!(raw_request(guard.addr(), long_path.as_bytes()), 431);
    }

    #[test]
    fn oversized_header_gets_431() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let req = format!("GET /status HTTP/1.1\r\nX-Junk: {}\r\n\r\n", "y".repeat(64 * 1024));
        assert_eq!(raw_request(guard.addr(), req.as_bytes()), 431);
    }

    #[test]
    fn too_many_headers_gets_431() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let mut req = String::from("GET /status HTTP/1.1\r\n");
        for i in 0..100 {
            req.push_str(&format!("X-H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert_eq!(raw_request(guard.addr(), req.as_bytes()), 431);
    }

    #[test]
    fn garbage_request_line_gets_400() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        assert_eq!(raw_request(guard.addr(), b"\x00\x01\x02\r\n\r\n"), 400);
        assert_eq!(raw_request(guard.addr(), b"ONLYONETOKEN\r\n\r\n"), 400);
    }

    #[test]
    fn client_times_out_on_dead_peer() {
        // A listener that accepts and then never answers: the client must
        // give up after its read timeout, not block forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = std::thread::spawn(move || {
            let mut held = Vec::new();
            for s in listener.incoming().flatten() {
                held.push(s); // hold the socket open, say nothing
            }
        });
        let t0 = std::time::Instant::now();
        let err = http_request_text_timeout(
            addr,
            "GET",
            "/status",
            None,
            std::time::Duration::from_millis(150),
        );
        assert!(err.is_err(), "dead peer must not look like a response");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "timed out in {:?}, not bounded by the 150ms ceiling",
            t0.elapsed()
        );
    }

    #[test]
    fn route_extension_served_over_http() {
        use crate::router::RouteExtension;
        struct Ext;
        impl RouteExtension for Ext {
            fn handle(&self, req: &Request) -> Option<crate::router::Response> {
                (req.path == "/cluster/ping")
                    .then(|| crate::router::Response::ok(Json::obj().set("pong", true)))
            }
        }
        let s = server();
        s.set_extension(Arc::new(Ext));
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, body) = http_request(guard.addr(), "GET", "/cluster/ping", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("pong").unwrap().as_bool(), Some(true));
        // Built-in routes still win, and unclaimed paths still 404.
        let (status, _) = http_request(guard.addr(), "GET", "/workloads", None).unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_request(guard.addr(), "GET", "/cluster/ghost", None).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn concurrent_clients() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let addr = guard.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, _) = http_request(addr, "GET", "/status", None).unwrap();
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
