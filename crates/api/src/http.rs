//! Minimal HTTP/1.x transport for the control API over `std::net`.
//!
//! Enough of HTTP for programmatic clients: request line, headers,
//! `Content-Length` bodies, JSON in/out, connection-close semantics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bp_util::json::Json;

use crate::router::{ApiServer, Method, Request};

/// A running HTTP listener; shuts down when the guard is dropped.
pub struct HttpServerGuard {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServerGuard {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl ApiServer {
    /// Serve the API over HTTP on `addr` (e.g. "127.0.0.1:0").
    pub fn serve_http(self: &Arc<Self>, addr: &str) -> std::io::Result<HttpServerGuard> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let server = self.clone();
        let handle = std::thread::Builder::new()
            .name("bp-api-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let server = server.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &server);
                    });
                }
            })?;
        Ok(HttpServerGuard { addr: local, stop, handle: Some(handle) })
    }
}

fn handle_connection(stream: TcpStream, server: &ApiServer) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);

    // Request line.
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return write_json(stream, 400, &Json::obj().set("error", "bad request line")),
    };

    // Headers.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    // Body.
    let body = if content_length > 0 {
        let mut buf = vec![0u8; content_length.min(1 << 20)];
        reader.read_exact(&mut buf)?;
        match std::str::from_utf8(&buf).ok().and_then(|s| Json::parse(s).ok()) {
            Some(j) => Some(j),
            None => {
                return write_json(stream, 400, &Json::obj().set("error", "invalid JSON body"))
            }
        }
    } else {
        None
    };

    let Some(method) = Method::parse(&method) else {
        return write_json(stream, 405, &Json::obj().set("error", "unsupported method"));
    };
    let response = server.handle(&Request { method, path, body });
    match &response.raw {
        Some((content_type, text)) => write_response(stream, response.status, content_type, text),
        None => write_json(stream, response.status, &response.body),
    }
}

fn write_json(stream: TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    write_response(stream, status, "application/json", &body.to_string())
}

fn write_response(
    mut stream: TcpStream,
    status: u16,
    content_type: &str,
    text: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        501 => "Not Implemented",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        text.len(),
        text
    )?;
    stream.flush()
}

/// A tiny blocking HTTP client for tests and examples.
pub fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&Json>) -> std::io::Result<(u16, Json)> {
    let (status, text) = http_request_text(addr, method, path, body)?;
    let json = Json::parse(&text).unwrap_or(Json::Null);
    Ok((status, json))
}

/// Like [`http_request`] but returns the raw response body — what text
/// endpoints (`/metrics`, `/trace/spans`) need.
pub fn http_request_text(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body_text = body.map(|b| b.to_string()).unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body_text.len(),
        body_text
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let text = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ControlState, Controller, Mixture, Rate, RequestQueue, StatsCollector, TransactionType};
    use bp_storage::{Database, Personality};
    use bp_util::clock::sim_clock;

    fn server() -> Arc<ApiServer> {
        let (_, clock) = sim_clock();
        let types = vec![TransactionType::new("T", 100.0, true)];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(50.0), mixture, 1e4);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["T"]));
        let db = Database::new(Personality::test());
        let c = Controller::new(state, queue, stats, db, types, "w");
        let s = Arc::new(ApiServer::new());
        s.register("w", c);
        s
    }

    #[test]
    fn http_roundtrip() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, body) = http_request(guard.addr(), "GET", "/workloads", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, Json::Arr(vec![Json::Str("w".into())]));

        let (status, body) = http_request(
            guard.addr(),
            "POST",
            "/workloads/w/rate",
            Some(&Json::obj().set("tps", 123.0)),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("rate").unwrap().as_f64(), Some(123.0));
    }

    #[test]
    fn http_errors() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, _) = http_request(guard.addr(), "GET", "/ghost", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(guard.addr(), "PATCH", "/workloads", None).unwrap();
        assert_eq!(status, 405);
    }

    #[test]
    fn http_metrics_plaintext() {
        let (_, clock) = sim_clock();
        let types = vec![TransactionType::new("T", 100.0, true)];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(50.0), mixture, 1e4);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["T"]));
        let db = Database::new(Personality::test());
        let c = Controller::new(state, queue, stats, db, types, "w");
        let reg = Arc::new(bp_obs::MetricsRegistry::new());
        let s = Arc::new(ApiServer::new().with_registry(reg));
        s.register("w", c);

        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let (status, text) = http_request_text(guard.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("# TYPE bp_server_commits_total counter"), "{text}");
    }

    #[test]
    fn concurrent_clients() {
        let s = server();
        let guard = s.serve_http("127.0.0.1:0").unwrap();
        let addr = guard.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let (status, _) = http_request(addr, "GET", "/status", None).unwrap();
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
