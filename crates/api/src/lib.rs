//! `bp-api`: the RESTful control API (§2.2.4).
//!
//! Exposes runtime control over running workloads — throttle the rate,
//! change the mixture, pause/resume, add benchmarks on the fly — plus
//! instantaneous throughput / per-transaction-type latency feedback. This is
//! the surface the BenchPress game drives.
//!
//! Two transports share one [`ApiServer`] router:
//! * in-process: [`ApiServer::handle`] takes a [`Request`] and returns a
//!   [`Response`] (what the game uses);
//! * HTTP/1.x over `std::net::TcpListener` ([`ApiServer::serve_http`]) with
//!   zero external dependencies, for driving the testbed from real clients.

pub mod http;
pub mod router;

pub use http::{http_request, http_request_text, http_request_text_timeout, http_request_timeout};
pub use router::{
    ApiServer, Launcher, Method, RecordProvider, ReplayLauncher, Request, Response, RouteExtension,
};
pub use router::{ARTIFACT_CONTENT_TYPE, JSONL_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE};
