//! The API router: endpoints, request/response model and handlers.

use std::collections::HashMap;
use std::sync::Arc;

use bp_util::sync::RwLock;

use bp_chaos::{ChaosController, FaultPlan};
use bp_core::{
    ControlLaw, Controller, MixturePreset, Rate, RecoveryConfig, SloConfig, SloTarget,
    StatusSnapshot,
};
use bp_obs::{Event, EventJournal, MetricsRegistry, Severity};
use bp_replay::{Artifact, ReplaySession, ReplayTiming};
use bp_util::json::Json;

/// Prometheus text exposition content type.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// JSON-lines content type used by `/trace/spans`.
pub const JSONL_CONTENT_TYPE: &str = "application/x-ndjson";

/// Content type for `GET /record` replay artifacts.
pub const ARTIFACT_CONTENT_TYPE: &str = "text/plain; charset=utf-8";

/// Slack added on each side of a span's lifetime when correlating journal
/// events by time in `GET /trace/{id}` (the clock domains align only
/// loosely).
const TRACE_EVENT_SLACK_US: u64 = 1_000;

/// Cap on correlated events returned by `GET /trace/{id}` (most recent
/// win).
const TRACE_EVENT_CAP: usize = 50;

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
    Delete,
}

impl Method {
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Some(Method::Get),
            "POST" | "PUT" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// An API request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    pub path: String,
    pub body: Option<Json>,
}

impl Request {
    pub fn get(path: &str) -> Request {
        Request { method: Method::Get, path: path.to_string(), body: None }
    }

    pub fn post(path: &str, body: Json) -> Request {
        Request { method: Method::Post, path: path.to_string(), body: Some(body) }
    }
}

/// An API response. Most endpoints return JSON (`body`); text-exposition
/// endpoints (`/metrics`, `/trace/spans`) set `raw` instead, which the HTTP
/// transport serves verbatim under its content type.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub body: Json,
    /// `(content_type, payload)` for non-JSON responses.
    pub raw: Option<(String, String)>,
}

impl Response {
    pub fn ok(body: Json) -> Response {
        Response { status: 200, body, raw: None }
    }

    pub fn error(status: u16, message: &str) -> Response {
        Response { status, body: Json::obj().set("error", message), raw: None }
    }

    /// A 200 response carrying a raw text payload.
    pub fn text(content_type: &str, payload: String) -> Response {
        Response { status: 200, body: Json::Null, raw: Some((content_type.to_string(), payload)) }
    }

    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

/// Pluggable hook for adding benchmarks on the fly (POST /workloads):
/// the embedding application decides how to set up and start a workload.
pub trait Launcher: Send + Sync {
    /// Benchmarks this launcher can start.
    fn available(&self) -> Vec<String>;

    /// Set up (if needed) and start the named benchmark; returns the new
    /// tenant's controller.
    fn launch(&self, benchmark: &str, body: &Json) -> Result<Controller, String>;
}

/// Provider for `GET /record`: returns the current capture as artifact
/// text, or `None` while there is nothing to serve.
pub type RecordProvider = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Pluggable route extension: a chance to serve requests the built-in
/// router has no route for (the cluster layer mounts its `/cluster/*`
/// endpoints this way). Returning `None` falls through to the 404.
pub trait RouteExtension: Send + Sync {
    fn handle(&self, req: &Request) -> Option<Response>;
}

/// Pluggable hook for `POST /replay`: the embedding application owns the
/// database and workload, so it decides how a captured artifact turns into
/// a live replay run (typically via `bp_replay::start_replay`).
pub trait ReplayLauncher: Send + Sync {
    /// Start replaying the artifact; the returned session is what
    /// `GET /replay/status` reports on.
    fn launch(&self, artifact: &Artifact, timing: ReplayTiming) -> Result<ReplaySession, String>;
}

/// The API server: a named set of workload controllers plus an optional
/// launcher and metrics provider.
pub struct ApiServer {
    workloads: RwLock<HashMap<String, Controller>>,
    launcher: Option<Arc<dyn Launcher>>,
    metrics: Option<Arc<dyn Fn() -> Json + Send + Sync>>,
    registry: Option<Arc<MetricsRegistry>>,
    chaos: RwLock<Option<Arc<ChaosController>>>,
    replay_launcher: Option<Arc<dyn ReplayLauncher>>,
    replay: RwLock<Option<Arc<ReplaySession>>>,
    record: RwLock<Option<RecordProvider>>,
    extension: RwLock<Option<Arc<dyn RouteExtension>>>,
}

impl Default for ApiServer {
    fn default() -> Self {
        ApiServer::new()
    }
}

fn status_json(st: &StatusSnapshot) -> Json {
    Json::obj()
        .set("throughput", st.throughput)
        .set(
            "latency_by_type",
            Json::Arr(
                st.latency_by_type
                    .iter()
                    .map(|(n, l)| Json::obj().set("type", n.as_str()).set("avg_latency_us", *l))
                    .collect(),
            ),
        )
        .set("p95_latency_us", st.p95_latency_us)
        .set("committed", st.committed)
        .set("user_aborted", st.user_aborted)
        .set("failed", st.failed)
        .set("shed", st.shed)
        .set("retries", st.retries)
        .set("elapsed_s", st.elapsed_s)
}

/// Look up a `key=value` pair in a raw query string (no percent-decoding —
/// the API's parameters are all simple tokens).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Strict `?last=N` parsing: absent falls back to `default`; present but
/// non-numeric, negative, or overflowing is a 400 (not a silent default —
/// a typo'd `last=1e4` silently returning 100 events is a debugging trap).
fn parse_last(query: &str, default: usize) -> Result<usize, Response> {
    match query_param(query, "last") {
        None => Ok(default),
        Some(v) => v.parse::<usize>().map_err(|_| {
            Response::error(400, &format!("invalid last={v}: must be a non-negative integer"))
        }),
    }
}

/// Optional `/trace/spans` filters; each absent field means "no filter".
struct SpanFilters {
    outcome: Option<bp_obs::SpanOutcome>,
    tenant: Option<u16>,
    min_us: Option<u64>,
}

impl SpanFilters {
    fn matches(&self, s: &bp_obs::Span) -> bool {
        self.outcome.is_none_or(|o| s.outcome == o)
            && self.tenant.is_none_or(|t| s.tenant == t)
            && self.min_us.is_none_or(|us| s.total_us() >= us)
    }
}

/// Strict parsing of the `/trace/spans` filters (`outcome=`, `tenant=`,
/// `min_us=`): absent falls through, present but unparseable is a 400.
fn parse_span_filters(query: &str) -> Result<SpanFilters, Response> {
    let outcome = match query_param(query, "outcome") {
        None => None,
        Some(v) => Some(bp_obs::SpanOutcome::parse(v).ok_or_else(|| {
            Response::error(
                400,
                &format!("invalid outcome={v}; known: committed, user_aborted, failed, shed"),
            )
        })?),
    };
    let tenant = match query_param(query, "tenant") {
        None => None,
        Some(v) => Some(v.parse::<u16>().map_err(|_| {
            Response::error(400, &format!("invalid tenant={v}: must be an integer in 0..=65535"))
        })?),
    };
    let min_us = match query_param(query, "min_us") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            Response::error(400, &format!("invalid min_us={v}: must be a non-negative integer"))
        })?),
    };
    Ok(SpanFilters { outcome, tenant, min_us })
}

/// Strict `?severity=` parsing: absent means everything (debug and up).
fn parse_severity(query: &str) -> Result<Severity, Response> {
    match query_param(query, "severity") {
        None => Ok(Severity::Debug),
        Some(v) => Severity::parse(v).ok_or_else(|| {
            Response::error(
                400,
                &format!("invalid severity={v}; known: debug, info, warn, error"),
            )
        }),
    }
}

fn rate_json(rate: Rate) -> Json {
    match rate {
        Rate::Unlimited => Json::Str("unlimited".into()),
        Rate::Disabled => Json::Str("disabled".into()),
        Rate::Limited(tps) => Json::Num(tps),
    }
}

/// Build an [`SloConfig`] from a `POST /slo` body; every field falls back
/// to the crate default.
fn slo_config_from_json(body: &Json) -> Result<SloConfig, String> {
    let mut cfg = SloConfig::default();
    let limit_us = match body.get("limit_ms").and_then(Json::as_f64) {
        Some(ms) if ms > 0.0 && ms.is_finite() => (ms * 1_000.0).round() as u64,
        Some(_) => return Err("limit_ms must be a positive number".into()),
        None => cfg.target.limit_us(),
    };
    let kind = body.get("target").and_then(Json::as_str).unwrap_or("p99");
    cfg.target = SloTarget::parse(kind, limit_us)
        .ok_or_else(|| format!("unknown target {kind}; known: p99, p50, max-throughput"))?;
    if let Some(law) = body.get("law").and_then(Json::as_str) {
        cfg.law =
            ControlLaw::parse(law).ok_or_else(|| format!("unknown law {law}; known: aimd, pid"))?;
    }
    if let Some(w) = body.get("window_s").and_then(Json::as_u64) {
        cfg.window_s = (w as usize).max(1);
    }
    if let Some(t) = body.get("tick_ms").and_then(Json::as_u64) {
        cfg.tick_us = t.max(1) * 1_000;
    }
    if let Some(v) = body.get("min_rate").and_then(Json::as_f64) {
        cfg.min_rate = v.max(0.0);
    }
    if let Some(v) = body.get("max_rate").and_then(Json::as_f64) {
        cfg.max_rate = v;
    }
    if let Some(v) = body.get("initial_rate").and_then(Json::as_f64) {
        cfg.initial_rate = v;
    }
    if let Some(v) = body.get("step").and_then(Json::as_f64) {
        cfg.additive_step = v;
    }
    if let Some(v) = body.get("backoff").and_then(Json::as_f64) {
        if !(0.0..1.0).contains(&v) || v == 0.0 {
            return Err("backoff must be in (0, 1)".into());
        }
        cfg.backoff = v;
    }
    if let Some(v) = body.get("breaker_backoff").and_then(Json::as_f64) {
        if !(0.0..1.0).contains(&v) || v == 0.0 {
            return Err("breaker_backoff must be in (0, 1)".into());
        }
        cfg.breaker_backoff = v;
    }
    if let Some(v) = body.get("kp").and_then(Json::as_f64) {
        cfg.kp = v;
    }
    if let Some(v) = body.get("ki").and_then(Json::as_f64) {
        cfg.ki = v;
    }
    if let Some(v) = body.get("kd").and_then(Json::as_f64) {
        cfg.kd = v;
    }
    if let Some(v) = body.get("min_samples").and_then(Json::as_u64) {
        cfg.min_samples = v;
    }
    if cfg.max_rate < cfg.min_rate {
        return Err("max_rate must be >= min_rate".into());
    }
    Ok(cfg)
}

/// The `GET /slo/status` body for one workload's SLO handle.
fn slo_status_json(id: &str, c: &Controller) -> Json {
    let h = c.slo();
    let (target, limit_us, law, window_s) = match h.config() {
        Some(cfg) => (cfg.target.kind(), cfg.target.limit_us(), cfg.law.name(), cfg.window_s as u64),
        None => ("none", 0, "none", 0),
    };
    Json::obj()
        .set("workload", id)
        .set("active", h.is_active())
        .set("target", target)
        .set("limit_us", limit_us)
        .set("law", law)
        .set("window_s", window_s)
        .set("rate", h.current_rate())
        .set("error", h.error())
        .set("observed_us", h.observed_us())
        .set("observed_throughput", h.observed_throughput())
        .set("window_samples", h.window_samples())
        .set("ticks", h.ticks())
        .set(
            "adjustments",
            Json::obj()
                .set("increase", h.increases())
                .set("decrease", h.decreases())
                .set("hold", h.holds())
                .set("breaker_backoff", h.breaker_backoffs()),
        )
}

/// GET /healthz — process liveness. Always 200: if the router runs, the
/// process is alive. Readiness (can the testbed do useful work?) is a
/// separate, stricter question answered by `/readyz`.
fn healthz() -> Response {
    Response::ok(Json::obj().set("ok", true))
}

/// The `GET /recovery/status` body: engine-side crash/recovery counters
/// plus the supervisor's own state for one workload.
fn recovery_status_json(id: &str, c: &Controller) -> Json {
    let s = c.database().recovery_status();
    let h = c.recovery();
    let (poll_us, checkpoint_us) = match h.config() {
        Some(cfg) => (cfg.poll_interval_us, cfg.checkpoint_interval_us),
        None => (0, 0),
    };
    Json::obj()
        .set("workload", id)
        .set("crashed", s.crashed)
        .set("crashes", s.crashes)
        .set("recoveries", s.recoveries)
        .set("replayed_records", s.replayed_records)
        .set("torn_truncations", s.torn_truncations)
        .set("checkpoints", s.checkpoints)
        .set("segments_truncated", s.segments_truncated)
        .set("last_recovery_us", s.last_recovery_us)
        .set(
            "last_crashpoint",
            match s.last_crashpoint {
                Some(p) => Json::Str(p.name().to_string()),
                None => Json::Null,
            },
        )
        .set("checkpoint_lsn", s.checkpoint_lsn)
        .set("durable_lsn", s.durable_lsn)
        .set("generation", s.generation)
        .set(
            "supervisor",
            Json::obj()
                .set("active", h.is_active())
                .set("poll_us", poll_us)
                .set("checkpoint_us", checkpoint_us)
                .set("recoveries_run", h.recoveries_run())
                .set("checkpoints_run", h.checkpoints_run())
                .set("ticks", h.ticks()),
        )
}

impl ApiServer {
    pub fn new() -> ApiServer {
        ApiServer {
            workloads: RwLock::new(HashMap::new()),
            launcher: None,
            metrics: None,
            registry: None,
            chaos: RwLock::new(None),
            replay_launcher: None,
            replay: RwLock::new(None),
            record: RwLock::new(None),
            extension: RwLock::new(None),
        }
    }

    /// Mount a route extension; it sees every request the built-in routes
    /// do not claim (e.g. `/cluster/*`).
    pub fn set_extension(&self, ext: Arc<dyn RouteExtension>) {
        *self.extension.write() = Some(ext);
    }

    /// Attach a replay launcher for `POST /replay`.
    pub fn with_replay_launcher(mut self, launcher: Arc<dyn ReplayLauncher>) -> ApiServer {
        self.replay_launcher = Some(launcher);
        self
    }

    /// Provide the `GET /record` artifact. A provider (rather than a stored
    /// string) lets the embedder snapshot a still-recording run on demand.
    pub fn set_record_provider(&self, f: RecordProvider) {
        *self.record.write() = Some(f);
    }

    /// The current replay session, if one was started via `POST /replay`.
    pub fn replay_session(&self) -> Option<Arc<ReplaySession>> {
        self.replay.read().clone()
    }

    /// Attach a chaos controller explicitly for the `/chaos` endpoints.
    /// Without this, the endpoints fall back to the chaos controller of the
    /// first registered workload's engine.
    pub fn with_chaos(self, chaos: Arc<ChaosController>) -> ApiServer {
        *self.chaos.write() = Some(chaos);
        self
    }

    fn chaos_controller(&self) -> Option<Arc<ChaosController>> {
        if let Some(c) = self.chaos.read().clone() {
            return Some(c);
        }
        let map = self.workloads.read();
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();
        ids.first().map(|id| map[*id].chaos().clone())
    }

    pub fn with_launcher(mut self, launcher: Arc<dyn Launcher>) -> ApiServer {
        self.launcher = Some(launcher);
        self
    }

    /// Provide a metrics callback for GET /metrics (e.g. from bp-monitor).
    /// Superseded by [`ApiServer::with_registry`], which serves Prometheus
    /// text instead of ad-hoc JSON; the callback remains as a fallback when
    /// no registry is configured.
    pub fn with_metrics(mut self, f: Arc<dyn Fn() -> Json + Send + Sync>) -> ApiServer {
        self.metrics = Some(f);
        self
    }

    /// Attach a unified metrics registry. GET /metrics then renders the
    /// Prometheus text exposition, and every controller registered with
    /// [`ApiServer::register`] has its stats / server counters / span
    /// recorder wired into it automatically.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> ApiServer {
        self.registry = Some(registry);
        self
    }

    /// The attached metrics registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Register a running workload under an id.
    pub fn register(&self, id: &str, controller: Controller) {
        if let Some(reg) = &self.registry {
            controller.register_metrics(reg);
        }
        controller.journal().emit_with(Severity::Info, "api", "run_start", || {
            (
                format!("workload {id} registered ({})", controller.workload_name()),
                vec![("workload", id.to_string())],
            )
        });
        self.workloads.write().insert(id.to_string(), controller);
    }

    pub fn controller(&self, id: &str) -> Option<Controller> {
        self.workloads.read().get(id).cloned()
    }

    pub fn workload_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.workloads.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Route and handle a request.
    pub fn handle(&self, req: &Request) -> Response {
        let (path, query) = match req.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (req.path.as_str(), ""),
        };
        let path = path.trim_matches('/');
        let parts: Vec<&str> = if path.is_empty() { Vec::new() } else { path.split('/').collect() };
        match (req.method, parts.as_slice()) {
            (Method::Get, ["status"]) | (Method::Get, []) => self.all_status(),
            (Method::Get, ["workloads"]) => Response::ok(
                Json::Arr(self.workload_ids().into_iter().map(Json::Str).collect()),
            ),
            (Method::Post, ["workloads"]) => self.add_workload(req),
            (Method::Get, ["benchmarks"]) => match &self.launcher {
                Some(l) => Response::ok(Json::Arr(
                    l.available().into_iter().map(Json::Str).collect(),
                )),
                None => Response::error(501, "no launcher configured"),
            },
            (Method::Get, ["metrics"]) => self.metrics_response(),
            (Method::Post, ["replay"]) => self.replay_start(req),
            (Method::Get, ["replay", "status"]) => self.replay_status(),
            (Method::Get, ["record"]) => self.record_artifact(),
            (Method::Post, ["chaos"]) => self.chaos_arm(req),
            (Method::Delete, ["chaos"]) => self.chaos_disarm(),
            (Method::Get, ["chaos", "status"]) => self.chaos_status(),
            (Method::Get, ["healthz"]) => healthz(),
            (Method::Get, ["readyz"]) => self.readyz(),
            (Method::Post, ["recovery"]) => self.recovery_arm(req, query),
            (Method::Delete, ["recovery"]) => self.recovery_disarm(req, query),
            (Method::Get, ["recovery", "status"]) => self.recovery_status(req, query),
            (Method::Post, ["slo"]) => self.slo_arm(req, query),
            (Method::Delete, ["slo"]) => self.slo_disarm(req, query),
            (Method::Get, ["slo", "status"]) => self.slo_status(req, query),
            (Method::Get, ["trace", "spans"]) => self.trace_spans(query),
            (Method::Get, ["trace", "summary"]) => self.trace_summary(),
            (Method::Get, ["trace", id]) => self.trace_detail(id),
            (Method::Get, ["events"]) => self.events(query),
            (Method::Get, ["report"]) => self.report(query),
            (Method::Get, ["doctor"]) => self.doctor(query),
            (Method::Get, ["workloads", id]) => self.workload_status(id),
            (Method::Post, ["workloads", id, action]) => self.workload_action(id, action, req),
            _ => {
                let ext = self.extension.read().clone();
                match ext.and_then(|e| e.handle(req)) {
                    Some(resp) => resp,
                    None => Response::error(404, &format!("no route for {}", req.path)),
                }
            }
        }
    }

    /// POST /replay — start replaying a captured artifact. Body:
    /// `{"artifact": "<bp-replay text>", "mode": "as-recorded"|"warp"|"asap",
    /// "warp": k}`. 409 while a previous replay is still running.
    fn replay_start(&self, req: &Request) -> Response {
        let Some(launcher) = &self.replay_launcher else {
            return Response::error(501, "no replay launcher configured");
        };
        if let Some(session) = self.replay.read().clone() {
            if !session.is_complete() {
                return Response::error(409, "a replay is already running");
            }
        }
        let body = req.body.clone().unwrap_or(Json::Null);
        let Some(text) = body.get("artifact").and_then(Json::as_str) else {
            return Response::error(400, "body must contain artifact (bp-replay artifact text)");
        };
        let artifact = match Artifact::from_text(text) {
            Ok(a) => a,
            Err(e) => return Response::error(400, &format!("invalid artifact: {e}")),
        };
        let timing = match ReplayTiming::parse(
            body.get("mode").and_then(Json::as_str),
            body.get("warp").and_then(Json::as_f64),
        ) {
            Ok(t) => t,
            Err(e) => return Response::error(400, &e),
        };
        match launcher.launch(&artifact, timing) {
            Ok(session) => {
                let session = Arc::new(session);
                if let Some(reg) = &self.registry {
                    session.register_metrics(reg);
                }
                session.controller.journal().emit_with(
                    Severity::Info,
                    "api",
                    "replay_launch",
                    || {
                        (
                            format!(
                                "replay of {} launched ({} scheduled requests)",
                                session.workload,
                                artifact.schedule.len(),
                            ),
                            vec![("workload", session.workload.clone())],
                        )
                    },
                );
                let resp = Response::ok(session.status_json());
                *self.replay.write() = Some(session);
                resp
            }
            Err(e) => Response::error(400, &e),
        }
    }

    /// GET /replay/status — progress and (once complete) the divergence
    /// report of the most recently started replay.
    fn replay_status(&self) -> Response {
        match self.replay.read().clone() {
            Some(session) => Response::ok(session.status_json()),
            None => Response::error(404, "no replay started"),
        }
    }

    /// GET /record — the captured artifact of the current/last recorded run
    /// as `text/plain`, ready to be fed back to `POST /replay`.
    fn record_artifact(&self) -> Response {
        let provider = self.record.read().clone();
        match provider.and_then(|f| f()) {
            Some(text) => Response::text(ARTIFACT_CONTENT_TYPE, text),
            None => Response::error(404, "no recorded artifact available"),
        }
    }

    /// POST /chaos — arm a fault scenario mid-run. Body is either
    /// `{"scenario": "error-burst", "seed": 7}` (a named preset) or
    /// `{"plan": {...}}` (an inline [`FaultPlan`]); `{"disarm": true}`
    /// disarms instead.
    fn chaos_arm(&self, req: &Request) -> Response {
        let Some(chaos) = self.chaos_controller() else {
            return Response::error(501, "no chaos controller wired");
        };
        let body = req.body.clone().unwrap_or(Json::Null);
        if body.get("disarm").and_then(Json::as_bool) == Some(true) {
            chaos.disarm();
            return Response::ok(chaos.status_json());
        }
        let plan = if let Some(name) = body.get("scenario").and_then(Json::as_str) {
            let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(42);
            match FaultPlan::scenario(name, seed) {
                Some(p) => p,
                None => {
                    return Response::error(
                        400,
                        &format!(
                            "unknown scenario {name}; known: {}",
                            FaultPlan::scenario_names().join(", ")
                        ),
                    )
                }
            }
        } else if let Some(p) = body.get("plan") {
            match FaultPlan::from_json(p) {
                Some(p) => p,
                None => return Response::error(400, "invalid fault plan"),
            }
        } else {
            return Response::error(400, "body must contain scenario, plan, or disarm");
        };
        chaos.arm(plan);
        Response::ok(chaos.status_json())
    }

    /// DELETE /chaos — disarm fault injection (counters are kept).
    fn chaos_disarm(&self) -> Response {
        let Some(chaos) = self.chaos_controller() else {
            return Response::error(501, "no chaos controller wired");
        };
        chaos.disarm();
        Response::ok(chaos.status_json())
    }

    /// GET /chaos/status — armed flag, plan, and per-kind probe/injection
    /// counters.
    fn chaos_status(&self) -> Response {
        let Some(chaos) = self.chaos_controller() else {
            return Response::error(501, "no chaos controller wired");
        };
        Response::ok(chaos.status_json())
    }

    /// The workload an `/slo` request addresses: the `workload` field of
    /// the body (or query parameter), falling back to the first registered
    /// workload id — the same convention the `/chaos` endpoints use.
    fn slo_workload(&self, body: &Json, query: &str) -> Result<(String, Controller), Response> {
        let explicit = body
            .get("workload")
            .and_then(Json::as_str)
            .or_else(|| query_param(query, "workload"));
        let map = self.workloads.read();
        match explicit {
            Some(id) => match map.get(id) {
                Some(c) => Ok((id.to_string(), c.clone())),
                None => Err(Response::error(404, &format!("unknown workload {id}"))),
            },
            None => {
                let mut ids: Vec<&String> = map.keys().collect();
                ids.sort();
                match ids.first() {
                    Some(id) => Ok(((*id).clone(), map[*id].clone())),
                    None => Err(Response::error(404, "no workloads registered")),
                }
            }
        }
    }

    /// POST /slo — arm the closed-loop admission controller on a workload.
    /// Body (all fields optional): `{"target": "p99"|"p50"|"max-throughput",
    /// "limit_ms": 50, "law": "aimd"|"pid", "window_s": 3, "tick_ms": 200,
    /// "min_rate": 10, "max_rate": 5000, "initial_rate": 100, "step": 50,
    /// "backoff": 0.7, "breaker_backoff": 0.5, "min_samples": 20,
    /// "kp": .., "ki": .., "kd": .., "workload": "<id>"}`.
    fn slo_arm(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let cfg = match slo_config_from_json(&body) {
            Ok(cfg) => cfg,
            Err(e) => return Response::error(400, &e),
        };
        c.start_slo(cfg);
        if let Some(reg) = &self.registry {
            // Arc-pointer dedupe in the registry makes re-arming a no-op.
            reg.register(&format!("slo:{id}"), c.slo().clone());
        }
        Response::ok(slo_status_json(&id, &c))
    }

    /// DELETE /slo — disarm the SLO loop; the last commanded rate sticks
    /// (operators use POST /workloads/{id}/rate to change it afterwards).
    fn slo_disarm(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        c.stop_slo();
        Response::ok(slo_status_json(&id, &c))
    }

    /// GET /slo/status — the controller's live state: target, commanded
    /// rate, windowed observation and per-adjustment counters.
    fn slo_status(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        Response::ok(slo_status_json(&id, &c))
    }

    /// GET /readyz — readiness probe: 200 once at least one workload is
    /// registered and no workload's engine is crashed (i.e. mid-outage,
    /// waiting on recovery). Load balancers and harnesses poll this to know
    /// when to (re)start driving traffic.
    fn readyz(&self) -> Response {
        let map = self.workloads.read();
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();
        let mut crashed: Vec<Json> = Vec::new();
        for id in &ids {
            if map[*id].database().is_crashed() {
                crashed.push(Json::Str((*id).clone()));
            }
        }
        let ready = !ids.is_empty() && crashed.is_empty();
        let reason = if ids.is_empty() {
            "no workloads registered"
        } else if !crashed.is_empty() {
            "engine crashed; awaiting recovery"
        } else {
            "ok"
        };
        let body = Json::obj()
            .set("ready", ready)
            .set("reason", reason)
            .set("workloads", ids.len() as u64)
            .set("crashed", Json::Arr(crashed));
        Response { status: if ready { 200 } else { 503 }, body, raw: None }
    }

    /// POST /recovery — arm the recovery supervisor (watchdog + periodic
    /// checkpointer) on a workload. Body (all optional): `{"poll_ms": 5,
    /// "checkpoint_ms": 2000, "workload": "<id>"}`. `checkpoint_ms: 0`
    /// disables periodic checkpoints.
    fn recovery_arm(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        let mut cfg = RecoveryConfig::default();
        if let Some(v) = body.get("poll_ms").and_then(Json::as_u64) {
            if v == 0 {
                return Response::error(400, "poll_ms must be > 0");
            }
            cfg.poll_interval_us = v * 1_000;
        }
        if let Some(v) = body.get("checkpoint_ms").and_then(Json::as_u64) {
            cfg.checkpoint_interval_us = v * 1_000;
        }
        c.start_recovery(cfg);
        Response::ok(recovery_status_json(&id, &c))
    }

    /// DELETE /recovery — disarm the supervisor. A crashed engine then
    /// stays down until re-armed or recovered manually.
    fn recovery_disarm(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        c.stop_recovery();
        Response::ok(recovery_status_json(&id, &c))
    }

    /// GET /recovery/status — engine crash/recovery counters and the
    /// supervisor's state.
    fn recovery_status(&self, req: &Request, query: &str) -> Response {
        let body = req.body.clone().unwrap_or(Json::Null);
        let (id, c) = match self.slo_workload(&body, query) {
            Ok(t) => t,
            Err(r) => return r,
        };
        Response::ok(recovery_status_json(&id, &c))
    }

    /// Every distinct event journal across the registered workloads
    /// (controllers sharing one database share one journal; dedupe by
    /// pointer), in sorted-workload-id order.
    fn journals(&self) -> Vec<Arc<EventJournal>> {
        let map = self.workloads.read();
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();
        let mut out: Vec<Arc<EventJournal>> = Vec::new();
        for id in ids {
            let j = map[id].journal().clone();
            if !out.iter().any(|seen| Arc::ptr_eq(seen, &j)) {
                out.push(j);
            }
        }
        out
    }

    /// GET /events?last=N&severity=S — the merged event journal across all
    /// workloads, oldest first, newest N kept (default 100).
    fn events(&self, query: &str) -> Response {
        let last = match parse_last(query, 100) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let min = match parse_severity(query) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let mut events: Vec<Event> = Vec::new();
        for j in self.journals() {
            events.extend(j.recent(usize::MAX, min));
        }
        events.sort_by_key(|e| (e.ts_us, e.seq));
        if events.len() > last {
            let cut = events.len() - last;
            events.drain(..cut);
        }
        Response::ok(
            Json::obj()
                .set("count", events.len() as u64)
                .set("events", Json::Arr(events.iter().map(Event::to_json).collect())),
        )
    }

    /// The workload a `/report` or `/doctor` request addresses (same
    /// convention as `/slo`: `?workload=` or the first registered id), plus
    /// its telemetry recorder.
    fn recorder_workload(
        &self,
        query: &str,
    ) -> Result<(String, Controller, Arc<bp_obs::TelemetryRecorder>), Response> {
        let (id, c) = self.slo_workload(&Json::Null, query)?;
        match c.recorder() {
            Some(r) => {
                let r = r.clone();
                Ok((id, c, r))
            }
            None => Err(Response::error(
                404,
                &format!("workload {id} has no telemetry recorder wired"),
            )),
        }
    }

    /// GET /report — the `#bp-report v1` flight-recorder artifact: the
    /// telemetry sample timeline plus the event journal, as text.
    fn report(&self, query: &str) -> Response {
        match self.recorder_workload(query) {
            Ok((_, c, recorder)) => {
                Response::text(ARTIFACT_CONTENT_TYPE, recorder.report(c.journal()).to_text())
            }
            Err(r) => r,
        }
    }

    /// GET /doctor — ranked bottleneck findings from `bp_obs::diagnose`
    /// over the current report, as JSON.
    fn doctor(&self, query: &str) -> Response {
        match self.recorder_workload(query) {
            Ok((id, c, recorder)) => {
                let report = recorder.report(c.journal());
                let findings = bp_obs::diagnose(&report);
                Response::ok(
                    Json::obj()
                        .set("workload", id.as_str())
                        .set("samples", report.samples.len() as u64)
                        .set("events", report.events.len() as u64)
                        .set(
                            "findings",
                            Json::Arr(findings.iter().map(|f| f.to_json()).collect()),
                        ),
                )
            }
            Err(r) => r,
        }
    }

    /// GET /metrics — Prometheus text when a registry is attached, the
    /// legacy JSON callback otherwise.
    fn metrics_response(&self) -> Response {
        if let Some(reg) = &self.registry {
            return Response::text(PROMETHEUS_CONTENT_TYPE, reg.render_prometheus());
        }
        match &self.metrics {
            Some(f) => Response::ok(f()),
            None => Response::error(501, "no metrics provider configured"),
        }
    }

    /// GET /trace/spans?last=N — the most recent N spans across every
    /// workload's flight recorder, oldest first, one JSON object per line.
    /// Optional filters: `outcome=` (committed/user_aborted/failed/shed),
    /// `tenant=` and `min_us=` (end-to-end latency floor).
    fn trace_spans(&self, query: &str) -> Response {
        let last = match parse_last(query, 100) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let filters = match parse_span_filters(query) {
            Ok(f) => f,
            Err(r) => return r,
        };
        let mut spans: Vec<(String, bp_obs::Span)> = Vec::new();
        {
            let map = self.workloads.read();
            for (id, c) in map.iter() {
                if let Some(rec) = c.spans() {
                    spans.extend(
                        rec.recent(usize::MAX)
                            .into_iter()
                            .filter(|s| filters.matches(s))
                            .map(|s| (id.clone(), s)),
                    );
                }
            }
        }
        spans.sort_by_key(|(_, s)| (s.end_us, s.seq));
        if spans.len() > last {
            let cut = spans.len() - last;
            spans.drain(..cut);
        }
        let mut out = String::new();
        use std::fmt::Write as _;
        for (id, s) in &spans {
            let _ = writeln!(out, "{}", s.to_json().set("workload", id.as_str()));
        }
        Response::text(JSONL_CONTENT_TYPE, out)
    }

    /// GET /trace/summary — per-workload per-stage latency summaries plus
    /// the one-line rendering used by run logs.
    fn trace_summary(&self) -> Response {
        let map = self.workloads.read();
        let mut ids: Vec<&String> = map.keys().collect();
        ids.sort();
        let items: Vec<Json> = ids
            .into_iter()
            .filter_map(|id| {
                let c = &map[id];
                let rec = c.spans()?;
                let stages = rec.stage_summaries();
                let stages_json = Json::Arr(
                    stages
                        .iter()
                        .map(|st| {
                            Json::obj()
                                .set("stage", st.stage.name())
                                .set("count", st.count)
                                .set("p50_us", st.p50_us)
                                .set("p95_us", st.p95_us)
                                .set("p99_us", st.p99_us)
                                .set("mean_us", st.mean_us)
                        })
                        .collect(),
                );
                Some(
                    Json::obj()
                        .set("id", id.as_str())
                        .set("mode", rec.mode().name())
                        .set("spans", rec.recorded())
                        .set("overwritten", rec.overwritten())
                        .set("line", rec.summary_line())
                        .set("stages", stages_json),
                )
            })
            .collect();
        Response::ok(Json::obj().set("workloads", Json::Arr(items)))
    }

    /// GET /trace/{id} — resolve one retained trace id to its full stage
    /// breakdown plus journal events correlated with the request: events
    /// explicitly tagged `trace_id=<id>` (deadlock victims, crashes), or
    /// events whose timestamp falls inside the span's lifetime.
    fn trace_detail(&self, id_hex: &str) -> Response {
        let Some(id) = bp_obs::parse_trace_id(id_hex) else {
            return Response::error(
                400,
                &format!("invalid trace id {id_hex}: expected 1-16 hex digits"),
            );
        };
        let found = {
            let map = self.workloads.read();
            let mut ids: Vec<&String> = map.keys().collect();
            ids.sort();
            ids.into_iter().find_map(|wid| {
                let c = &map[wid];
                let span = c.spans()?.find_trace(id)?;
                Some((wid.clone(), span, c.clone()))
            })
        };
        let Some((wid, span, c)) = found else {
            return Response::error(
                404,
                &format!("trace {id_hex} not retained (never sampled, or evicted)"),
            );
        };
        let stages = [
            ("queue", span.queue_wait_us()),
            ("lock", span.lock_wait_us),
            ("exec", span.exec_us()),
            ("commit", span.commit_us),
        ];
        let dominant =
            stages.iter().max_by_key(|(_, us)| *us).map(|(name, _)| *name).unwrap_or("queue");
        // Span timestamps count µs from the run's clock origin; journal
        // events count from the process journal origin. Align the two
        // domains by their current offset — exact enough for a per-request
        // correlation window.
        let offset = bp_obs::journal_now_us().saturating_sub(c.stats().clock().now());
        let lo = (span.submitted_us + offset).saturating_sub(TRACE_EVENT_SLACK_US);
        let hi = span.end_us + offset + TRACE_EVENT_SLACK_US;
        let hex = bp_obs::format_trace_id(id);
        let mut events: Vec<Json> = c
            .journal()
            .all()
            .into_iter()
            .filter(|e| {
                let tagged = e.fields.iter().any(|(k, v)| *k == "trace_id" && *v == hex);
                tagged || (e.ts_us >= lo && e.ts_us <= hi)
            })
            .map(|e| e.to_json())
            .collect();
        if events.len() > TRACE_EVENT_CAP {
            events.drain(..events.len() - TRACE_EVENT_CAP);
        }
        Response::ok(
            Json::obj()
                .set("trace_id", hex.as_str())
                .set("workload", wid.as_str())
                .set("node", c.node_id())
                .set("seq", span.seq)
                .set("tenant", span.tenant as u64)
                .set("txn_type", span.txn_type as u64)
                .set("phase", span.phase as u64)
                .set("retries", span.retries as u64)
                .set("outcome", span.outcome.name())
                .set("submitted_us", span.submitted_us)
                .set("end_us", span.end_us)
                .set("total_us", span.total_us())
                .set(
                    "stages",
                    Json::Arr(
                        stages
                            .iter()
                            .map(|(name, us)| Json::obj().set("stage", *name).set("us", *us))
                            .collect(),
                    ),
                )
                .set("dominant_stage", dominant)
                .set("events", Json::Arr(events)),
        )
    }

    fn all_status(&self) -> Response {
        let map = self.workloads.read();
        let items: Vec<Json> = map
            .iter()
            .map(|(id, c)| {
                Json::obj()
                    .set("id", id.as_str())
                    .set("benchmark", c.workload_name())
                    .set("paused", c.is_paused())
                    .set("stopped", c.is_stopped())
                    .set("status", status_json(&c.status()))
            })
            .collect();
        Response::ok(Json::obj().set("workloads", Json::Arr(items)))
    }

    fn workload_status(&self, id: &str) -> Response {
        let Some(c) = self.controller(id) else {
            return Response::error(404, &format!("unknown workload {id}"));
        };
        let mixture = c.current_mixture();
        let breaker = match c.breaker() {
            Some(b) => Json::obj()
                .set("state", b.state().name())
                .set("shed", b.shed_total()),
            None => Json::Null,
        };
        Response::ok(
            Json::obj()
                .set("id", id)
                .set("breaker", breaker)
                .set("benchmark", c.workload_name())
                .set("rate", rate_json(c.current_rate()))
                .set("mixture", mixture.weights().to_vec())
                .set(
                    "transaction_types",
                    Json::Arr(
                        c.transaction_types()
                            .iter()
                            .map(|t| Json::Str(t.name.to_string()))
                            .collect(),
                    ),
                )
                .set("paused", c.is_paused())
                .set("stopped", c.is_stopped())
                .set("backlog", c.backlog() as u64)
                .set("status", status_json(&c.status())),
        )
    }

    fn workload_action(&self, id: &str, action: &str, req: &Request) -> Response {
        let Some(c) = self.controller(id) else {
            return Response::error(404, &format!("unknown workload {id}"));
        };
        let body = req.body.clone().unwrap_or(Json::Null);
        match action {
            "rate" => {
                // {"tps": 500} or {"rate": "unlimited" | "disabled" | 500}
                let rate = body
                    .get("tps")
                    .and_then(Json::as_f64)
                    .map(Rate::Limited)
                    .or_else(|| match body.get("rate") {
                        Some(Json::Num(tps)) => Some(Rate::Limited(*tps)),
                        Some(Json::Str(s)) => Rate::parse(s),
                        _ => None,
                    });
                match rate {
                    Some(r @ Rate::Limited(tps)) if tps >= 0.0 => {
                        c.set_rate(r);
                        self.workload_status(id)
                    }
                    Some(r @ (Rate::Unlimited | Rate::Disabled)) => {
                        c.set_rate(r);
                        self.workload_status(id)
                    }
                    _ => Response::error(400, "body must contain tps or rate"),
                }
            }
            "mixture" => {
                // {"weights":[...]} or {"preset":"read_only"}
                if let Some(weights) = body.get("weights").and_then(Json::as_arr) {
                    let w: Option<Vec<f64>> = weights.iter().map(Json::as_f64).collect();
                    match w {
                        Some(w) => match c.set_mixture(w) {
                            Ok(()) => self.workload_status(id),
                            Err(e) => Response::error(400, &e.to_string()),
                        },
                        None => Response::error(400, "weights must be numbers"),
                    }
                } else if let Some(name) = body.get("preset").and_then(Json::as_str) {
                    match MixturePreset::by_name(name) {
                        Some(p) => {
                            c.set_preset(p);
                            self.workload_status(id)
                        }
                        None => Response::error(400, &format!("unknown preset {name}")),
                    }
                } else {
                    Response::error(400, "body must contain weights or preset")
                }
            }
            "pause" => {
                c.pause();
                self.workload_status(id)
            }
            "resume" => {
                c.resume();
                self.workload_status(id)
            }
            "stop" => {
                c.journal().emit_with(Severity::Info, "api", "run_stop", || {
                    (
                        format!("workload {id} stopped via API"),
                        vec![("workload", id.to_string())],
                    )
                });
                c.stop();
                self.workload_status(id)
            }
            "reset" => {
                // The game-over path: halt the benchmark, reset the DB.
                c.journal().emit_with(Severity::Warn, "api", "run_stop", || {
                    (
                        format!("workload {id} halted and reset via API"),
                        vec![("workload", id.to_string()), ("crash", "reset".to_string())],
                    )
                });
                let dropped = c.halt_and_reset();
                Response::ok(Json::obj().set("halted", true).set("dropped_requests", dropped))
            }
            other => Response::error(404, &format!("unknown action {other}")),
        }
    }

    fn add_workload(&self, req: &Request) -> Response {
        let Some(launcher) = &self.launcher else {
            return Response::error(501, "no launcher configured");
        };
        let body = req.body.clone().unwrap_or(Json::Null);
        let Some(benchmark) = body.get("benchmark").and_then(Json::as_str) else {
            return Response::error(400, "body must contain benchmark");
        };
        let id = body
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                let base = benchmark.to_string();
                let existing = self.workload_ids();
                if existing.contains(&base) {
                    format!("{base}-{}", existing.len())
                } else {
                    base
                }
            });
        if self.controller(&id).is_some() {
            return Response::error(409, &format!("workload {id} already exists"));
        }
        match launcher.launch(benchmark, &body) {
            Ok(controller) => {
                self.register(&id, controller);
                self.workload_status(&id)
            }
            Err(e) => Response::error(400, &e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ControlState, Mixture, RequestQueue, StatsCollector, TransactionType};
    use bp_storage::{Database, Personality};
    use bp_util::clock::sim_clock;

    fn controller() -> Controller {
        let (_, clock) = sim_clock();
        let types = vec![
            TransactionType::new("Read", 60.0, true),
            TransactionType::new("Write", 40.0, false),
        ];
        let mixture = Mixture::default_of(&types);
        let state = ControlState::new(Rate::Limited(100.0), mixture, 10_000.0);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["Read", "Write"]));
        let db = Database::new(Personality::test());
        Controller::new(state, queue, stats, db, types, "demo")
    }

    fn server() -> ApiServer {
        let s = ApiServer::new();
        s.register("demo", controller());
        s
    }

    #[test]
    fn list_workloads() {
        let s = server();
        let r = s.handle(&Request::get("/workloads"));
        assert!(r.is_ok());
        assert_eq!(r.body, Json::Arr(vec![Json::Str("demo".into())]));
    }

    #[test]
    fn get_status() {
        let s = server();
        let r = s.handle(&Request::get("/workloads/demo"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("benchmark").unwrap().as_str(), Some("demo"));
        assert_eq!(r.body.get("rate").unwrap().as_f64(), Some(100.0));
        assert!(r.body.get("status").unwrap().get("throughput").is_some());
    }

    #[test]
    fn throttle_rate() {
        let s = server();
        let r = s.handle(&Request::post("/workloads/demo/rate", Json::obj().set("tps", 750.0)));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("rate").unwrap().as_f64(), Some(750.0));
        let r = s.handle(&Request::post(
            "/workloads/demo/rate",
            Json::obj().set("rate", "unlimited"),
        ));
        assert_eq!(r.body.get("rate").unwrap().as_str(), Some("unlimited"));
    }

    #[test]
    fn rate_requires_body() {
        let s = server();
        let r = s.handle(&Request::post("/workloads/demo/rate", Json::obj()));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn change_mixture_by_weights_and_preset() {
        let s = server();
        let r = s.handle(&Request::post(
            "/workloads/demo/mixture",
            Json::obj().set("weights", vec![10.0, 90.0]),
        ));
        assert!(r.is_ok(), "{r:?}");
        let mix = r.body.get("mixture").unwrap().as_arr().unwrap();
        assert_eq!(mix[1].as_f64(), Some(90.0));

        let r = s.handle(&Request::post(
            "/workloads/demo/mixture",
            Json::obj().set("preset", "read_only"),
        ));
        assert!(r.is_ok());
        let mix = r.body.get("mixture").unwrap().as_arr().unwrap();
        assert_eq!(mix[1].as_f64(), Some(0.0));
    }

    #[test]
    fn wrong_arity_mixture_rejected() {
        let s = server();
        let r = s.handle(&Request::post(
            "/workloads/demo/mixture",
            Json::obj().set("weights", vec![1.0]),
        ));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn pause_resume_reset() {
        let s = server();
        let r = s.handle(&Request::post("/workloads/demo/pause", Json::obj()));
        assert_eq!(r.body.get("paused").unwrap().as_bool(), Some(true));
        let r = s.handle(&Request::post("/workloads/demo/resume", Json::obj()));
        assert_eq!(r.body.get("paused").unwrap().as_bool(), Some(false));
        let r = s.handle(&Request::post("/workloads/demo/reset", Json::obj()));
        assert!(r.is_ok());
        assert_eq!(r.body.get("halted").unwrap().as_bool(), Some(true));
    }

    /// Crash the workload's engine the same way the chaos layer does in
    /// production: arm `ServerCrash`, push one commit through it.
    fn crash_engine(db: &Arc<Database>) {
        use bp_chaos::{FaultKind, FaultPlan, FaultWindow};
        db.create_table(
            bp_storage::TableSchema::new(
                "crashed_t",
                vec![bp_storage::Column::new("id", bp_storage::DataType::Int)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let t = db.table("crashed_t").unwrap();
        db.chaos().arm(FaultPlan::new("crash", 1).with_window(FaultWindow::always(
            FaultKind::ServerCrash,
            1.0,
            0,
        )));
        let mut sess = db.session();
        sess.begin().unwrap();
        sess.insert(&t, vec![bp_storage::Value::Int(1)]).unwrap();
        assert_eq!(sess.commit(), Err(bp_storage::StorageError::Crashed));
        db.chaos().disarm();
        assert!(db.is_crashed());
    }

    #[test]
    fn healthz_always_ok() {
        let empty = ApiServer::new();
        let r = empty.handle(&Request::get("/healthz"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("ok").unwrap().as_bool(), Some(true));
        // Still 200 with workloads registered — liveness never depends on them.
        let r = server().handle(&Request::get("/healthz"));
        assert!(r.is_ok());
    }

    #[test]
    fn readyz_tracks_registration_and_crash() {
        let s = ApiServer::new();
        let r = s.handle(&Request::get("/readyz"));
        assert_eq!(r.status, 503);
        assert_eq!(r.body.get("ready").unwrap().as_bool(), Some(false));
        assert_eq!(r.body.get("reason").unwrap().as_str(), Some("no workloads registered"));

        s.register("demo", controller());
        let r = s.handle(&Request::get("/readyz"));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("ready").unwrap().as_bool(), Some(true));

        let db = s.controller("demo").unwrap().database().clone();
        crash_engine(&db);
        let r = s.handle(&Request::get("/readyz"));
        assert_eq!(r.status, 503);
        assert_eq!(r.body.get("reason").unwrap().as_str(), Some("engine crashed; awaiting recovery"));
        assert_eq!(r.body.get("crashed").unwrap().as_arr().unwrap().len(), 1);

        db.recover();
        let r = s.handle(&Request::get("/readyz"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("ready").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn recovery_arm_status_disarm_roundtrip() {
        let s = server();
        // Arm with a fast poll; periodic checkpoints off.
        let r = s.handle(&Request::post(
            "/recovery",
            Json::obj().set("poll_ms", 1u64).set("checkpoint_ms", 0u64),
        ));
        assert!(r.is_ok(), "{r:?}");
        let sup = r.body.get("supervisor").unwrap();
        assert_eq!(sup.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(sup.get("poll_us").unwrap().as_u64(), Some(1_000));
        assert_eq!(sup.get("checkpoint_us").unwrap().as_u64(), Some(0));

        // Crash the engine; the supervisor brings it back within a few polls.
        let db = s.controller("demo").unwrap().database().clone();
        crash_engine(&db);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while db.is_crashed() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(!db.is_crashed(), "supervisor recovered the engine");

        let r = s.handle(&Request::get("/recovery/status"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("workload").unwrap().as_str(), Some("demo"));
        assert_eq!(r.body.get("crashed").unwrap().as_bool(), Some(false));
        assert_eq!(r.body.get("crashes").unwrap().as_u64(), Some(1));
        assert_eq!(r.body.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(r.body.get("last_crashpoint").unwrap().as_str(), Some("before_append"));
        let sup = r.body.get("supervisor").unwrap();
        assert_eq!(sup.get("recoveries_run").unwrap().as_u64(), Some(1));

        let r = s.handle(&Request {
            method: Method::Delete,
            path: "/recovery".into(),
            body: None,
        });
        assert!(r.is_ok());
        let sup = r.body.get("supervisor").unwrap();
        assert_eq!(sup.get("active").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn recovery_arm_validates_input() {
        let s = server();
        let r = s.handle(&Request::post("/recovery", Json::obj().set("poll_ms", 0u64)));
        assert_eq!(r.status, 400);
        let r = s.handle(&Request::post(
            "/recovery",
            Json::obj().set("workload", "ghost"),
        ));
        assert_eq!(r.status, 404);
        // No workloads at all: 404, same convention as /slo.
        let r = ApiServer::new().handle(&Request::get("/recovery/status"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn unknown_routes_404() {
        let s = server();
        assert_eq!(s.handle(&Request::get("/nope")).status, 404);
        assert_eq!(s.handle(&Request::get("/workloads/ghost")).status, 404);
        assert_eq!(
            s.handle(&Request::post("/workloads/demo/explode", Json::obj())).status,
            404
        );
    }

    #[test]
    fn add_workload_without_launcher_501() {
        let s = server();
        let r = s.handle(&Request::post("/workloads", Json::obj().set("benchmark", "voter")));
        assert_eq!(r.status, 501);
    }

    struct FakeLauncher;
    impl Launcher for FakeLauncher {
        fn available(&self) -> Vec<String> {
            vec!["demo2".into()]
        }
        fn launch(&self, benchmark: &str, _body: &Json) -> Result<Controller, String> {
            if benchmark == "demo2" {
                Ok(controller())
            } else {
                Err(format!("unknown benchmark {benchmark}"))
            }
        }
    }

    #[test]
    fn add_workload_on_the_fly() {
        let s = ApiServer::new().with_launcher(Arc::new(FakeLauncher));
        let r = s.handle(&Request::get("/benchmarks"));
        assert!(r.is_ok());
        let r = s.handle(&Request::post("/workloads", Json::obj().set("benchmark", "demo2")));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(s.workload_ids(), vec!["demo2"]);
        // Duplicate id rejected.
        let r = s.handle(&Request::post(
            "/workloads",
            Json::obj().set("benchmark", "demo2").set("id", "demo2"),
        ));
        assert_eq!(r.status, 409);
        // Unknown benchmark surfaces launcher error.
        let r = s.handle(&Request::post("/workloads", Json::obj().set("benchmark", "ghost")));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn metrics_endpoint() {
        let s = ApiServer::new()
            .with_metrics(Arc::new(|| Json::obj().set("cpu_busy", 0.42)));
        let r = s.handle(&Request::get("/metrics"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("cpu_busy").unwrap().as_f64(), Some(0.42));
    }

    use bp_obs::{MetricsRegistry, ObsConfig, Span, SpanOutcome, SpanRecorder};

    fn controller_with_spans() -> Controller {
        let rec = Arc::new(SpanRecorder::new(ObsConfig::default()));
        for seq in 0..3u64 {
            rec.record(Span {
                trace_id: bp_obs::trace_id(42, seq),
                seq,
                submitted_us: seq * 100,
                dequeued_us: seq * 100 + 50,
                end_us: seq * 100 + 250,
                lock_wait_us: 20,
                commit_us: 30,
                tenant: (seq % 2) as u16,
                phase: 0,
                txn_type: (seq % 2) as u16,
                retries: 0,
                outcome: if seq == 2 { SpanOutcome::Failed } else { SpanOutcome::Committed },
            });
        }
        controller().with_spans(rec)
    }

    #[test]
    fn metrics_prometheus_with_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let s = ApiServer::new().with_registry(reg.clone());
        s.register("demo", controller_with_spans());
        assert_eq!(reg.source_count(), 6, "stats + server + chaos + spans + journal + recovery");
        let r = s.handle(&Request::get("/metrics"));
        assert!(r.is_ok());
        let (ctype, text) = r.raw.expect("raw payload");
        assert!(ctype.starts_with("text/plain"));
        assert!(text.contains("bp_server_commits_total"), "{text}");
        assert!(text.contains("bp_stage_latency_us_bucket"), "{text}");
        assert!(text.contains("bp_client_committed_total"), "{text}");
    }

    #[test]
    fn trace_spans_jsonl() {
        let s = ApiServer::new();
        s.register("demo", controller_with_spans());
        let r = s.handle(&Request::get("/trace/spans"));
        let (ctype, text) = r.raw.expect("raw payload");
        assert_eq!(ctype, JSONL_CONTENT_TYPE);
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let j = Json::parse(line).expect("valid JSON line");
            assert_eq!(j.get("workload").unwrap().as_str(), Some("demo"));
            assert!(j.get("queue_us").is_some());
        }
        // ?last=N keeps only the newest N, oldest first.
        let r = s.handle(&Request::get("/trace/spans?last=1"));
        let (_, text) = r.raw.unwrap();
        assert_eq!(text.lines().count(), 1);
        let j = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(j.get("seq").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn trace_summary_reports_stages() {
        let s = ApiServer::new();
        s.register("demo", controller_with_spans());
        let r = s.handle(&Request::get("/trace/summary"));
        assert!(r.is_ok());
        let items = r.body.get("workloads").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("spans").unwrap().as_u64(), Some(3));
        let line = items[0].get("line").unwrap().as_str().unwrap().to_string();
        assert!(line.contains("spans=3"), "{line}");
        let stages = items[0].get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 4);
        assert!(stages.iter().any(|st| st.get("stage").unwrap().as_str() == Some("queue")));
    }

    #[test]
    fn trace_spans_filters() {
        let s = ApiServer::new();
        s.register("demo", controller_with_spans());
        // outcome= keeps only matching spans (seq 2 is the lone failure).
        let r = s.handle(&Request::get("/trace/spans?outcome=failed"));
        let (_, text) = r.raw.expect("raw payload");
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"seq\": 2") || text.contains("\"seq\":2"), "{text}");
        // tenant= filters on the issuing tenant (seqs 0 and 2 are tenant 0).
        let r = s.handle(&Request::get("/trace/spans?tenant=0"));
        let (_, text) = r.raw.expect("raw payload");
        assert_eq!(text.lines().count(), 2, "{text}");
        // min_us= is an end-to-end latency floor; every helper span takes
        // 250µs total, so 251 excludes all and 250 keeps all.
        let r = s.handle(&Request::get("/trace/spans?min_us=251"));
        assert_eq!(r.raw.as_ref().unwrap().1.lines().count(), 0);
        let r = s.handle(&Request::get("/trace/spans?min_us=250"));
        assert_eq!(r.raw.as_ref().unwrap().1.lines().count(), 3);
        // Filters compose.
        let r = s.handle(&Request::get("/trace/spans?outcome=committed&tenant=0"));
        assert_eq!(r.raw.as_ref().unwrap().1.lines().count(), 1);
    }

    #[test]
    fn trace_detail_resolves_and_404s() {
        let s = ApiServer::new();
        s.register("demo", controller_with_spans());
        let hex = bp_obs::format_trace_id(bp_obs::trace_id(42, 1));
        let r = s.handle(&Request::get(&format!("/trace/{hex}")));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("trace_id").unwrap().as_str(), Some(hex.as_str()));
        assert_eq!(r.body.get("workload").unwrap().as_str(), Some("demo"));
        assert_eq!(r.body.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(r.body.get("total_us").unwrap().as_u64(), Some(250));
        let stages = r.body.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 4);
        let sum: u64 = stages.iter().map(|st| st.get("us").unwrap().as_u64().unwrap()).sum();
        // queue 50 + lock 20 + exec 150 + commit 30 = end-to-end 250.
        assert_eq!(sum, 250);
        // exec = 200 − 20 − 30 = 150 dominates.
        assert_eq!(r.body.get("dominant_stage").unwrap().as_str(), Some("exec"));
        // Unknown-but-valid id is a 404; garbage is a 400.
        let r = s.handle(&Request::get("/trace/deadbeef"));
        assert_eq!(r.status, 404, "{r:?}");
        let r = s.handle(&Request::get("/trace/nothex!"));
        assert_eq!(r.status, 400, "{r:?}");
        assert!(r.body.get("error").unwrap().as_str().unwrap().contains("invalid"));
    }

    #[test]
    fn chaos_arm_status_disarm_roundtrip() {
        let s = server();
        // Status while disarmed.
        let r = s.handle(&Request::get("/chaos/status"));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("armed").unwrap().as_bool(), Some(false));
        // Arm a named scenario with an explicit seed.
        let r = s.handle(&Request::post(
            "/chaos",
            Json::obj().set("scenario", "error-burst").set("seed", 7u64),
        ));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("armed").unwrap().as_bool(), Some(true));
        assert_eq!(r.body.get("plan").unwrap().as_str(), Some("error-burst"));
        assert_eq!(r.body.get("seed").unwrap().as_u64(), Some(7));
        // Unknown scenario is a 400 listing the known names.
        let r = s.handle(&Request::post("/chaos", Json::obj().set("scenario", "nope")));
        assert_eq!(r.status, 400);
        assert!(r.body.get("error").unwrap().as_str().unwrap().contains("error-burst"));
        // Empty body is a 400.
        let r = s.handle(&Request::post("/chaos", Json::obj()));
        assert_eq!(r.status, 400);
        // Disarm via DELETE.
        let r = s.handle(&Request {
            method: Method::Delete,
            path: "/chaos".into(),
            body: None,
        });
        assert!(r.is_ok());
        assert_eq!(r.body.get("armed").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn chaos_inline_plan_and_disarm_body() {
        let s = server();
        let plan = Json::obj().set("name", "custom").set("seed", 3u64).set(
            "windows",
            Json::Arr(vec![Json::obj()
                .set("kind", "injected_error")
                .set("intensity", 1.0)]),
        );
        let r = s.handle(&Request::post("/chaos", Json::obj().set("plan", plan)));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("plan").unwrap().as_str(), Some("custom"));
        let r = s.handle(&Request::post("/chaos", Json::obj().set("disarm", true)));
        assert!(r.is_ok());
        assert_eq!(r.body.get("armed").unwrap().as_bool(), Some(false));
        // Malformed inline plan.
        let r = s.handle(&Request::post(
            "/chaos",
            Json::obj().set("plan", Json::obj().set("seed", 1u64)),
        ));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn status_reports_shed_and_breaker() {
        let s = server();
        let r = s.handle(&Request::get("/workloads/demo"));
        assert!(r.is_ok());
        // No breaker configured on this controller.
        assert_eq!(r.body.get("breaker"), Some(&Json::Null));
        assert_eq!(r.body.get("status").unwrap().get("shed").unwrap().as_u64(), Some(0));
    }

    use bp_core::PhaseScript;
    use bp_replay::{ReplayProgress, ARTIFACT_VERSION};

    fn script_only_artifact() -> Artifact {
        Artifact {
            version: ARTIFACT_VERSION,
            workload: "demo".into(),
            personality: "test".into(),
            seed: 42,
            terminals: 2,
            tenant: 0,
            unlimited_rate: 50_000.0,
            types: vec!["Read".into(), "Write".into()],
            script: PhaseScript::new(vec![bp_core::Phase::new(Rate::Limited(100.0), 1.0)]),
            schedule: Vec::new(),
            trace: Vec::new(),
        }
    }

    struct FakeReplayLauncher;
    impl ReplayLauncher for FakeReplayLauncher {
        fn launch(
            &self,
            artifact: &Artifact,
            timing: ReplayTiming,
        ) -> Result<ReplaySession, String> {
            Ok(ReplaySession {
                controller: controller(),
                progress: ReplayProgress::new(artifact.schedule.len() as u64),
                recorded: Arc::new(artifact.recorded_trace()),
                replayed: None,
                workload: artifact.workload.clone(),
                num_types: artifact.types.len(),
                timing,
            })
        }
    }

    #[test]
    fn replay_endpoints_unconfigured() {
        let s = server();
        assert_eq!(s.handle(&Request::post("/replay", Json::obj())).status, 501);
        assert_eq!(s.handle(&Request::get("/replay/status")).status, 404);
        assert_eq!(s.handle(&Request::get("/record")).status, 404);
    }

    #[test]
    fn record_provider_serves_artifact_text() {
        let s = server();
        let text = script_only_artifact().to_text();
        s.set_record_provider(Arc::new(move || Some(text.clone())));
        let r = s.handle(&Request::get("/record"));
        let (ctype, body) = r.raw.expect("raw payload");
        assert!(ctype.starts_with("text/plain"));
        assert!(body.starts_with("#bp-replay v1"), "{body}");
        assert!(Artifact::from_text(&body).is_ok());
    }

    #[test]
    fn replay_start_validates_and_reports_status() {
        let s = ApiServer::new().with_replay_launcher(Arc::new(FakeReplayLauncher));
        // Missing / malformed artifact.
        assert_eq!(s.handle(&Request::post("/replay", Json::obj())).status, 400);
        let r = s.handle(&Request::post("/replay", Json::obj().set("artifact", "not a capture")));
        assert_eq!(r.status, 400);
        // Bad timing combination.
        let text = script_only_artifact().to_text();
        let r = s.handle(&Request::post(
            "/replay",
            Json::obj().set("artifact", text.as_str()).set("warp", -3.0),
        ));
        assert_eq!(r.status, 400);
        // Valid launch.
        let r = s.handle(&Request::post(
            "/replay",
            Json::obj().set("artifact", text.as_str()).set("warp", 4.0),
        ));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("mode").unwrap().as_str(), Some("warp"));
        assert_eq!(r.body.get("warp").unwrap().as_f64(), Some(4.0));
        // Status route mirrors the session; launcher session never
        // completes (controller still running), so a second POST is a 409.
        let r = s.handle(&Request::get("/replay/status"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("complete").unwrap().as_bool(), Some(false));
        let r = s.handle(&Request::post("/replay", Json::obj().set("artifact", text.as_str())));
        assert_eq!(r.status, 409);
    }

    #[test]
    fn trace_endpoints_without_recorder_are_empty() {
        let s = ApiServer::new();
        s.register("demo", controller()); // no span recorder attached
        let r = s.handle(&Request::get("/trace/spans?last=5"));
        assert_eq!(r.raw.unwrap().1, "");
        let r = s.handle(&Request::get("/trace/summary"));
        assert!(r.body.get("workloads").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn events_endpoint_merges_journal() {
        let s = server(); // register() journals a run_start
        let r = s.handle(&Request::get("/events"));
        assert!(r.is_ok(), "{r:?}");
        let events = r.body.get("events").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        assert!(
            events.iter().any(|e| e.get("kind").unwrap().as_str() == Some("run_start")),
            "{events:?}"
        );
        // Severity filter: nothing at error level yet.
        let r = s.handle(&Request::get("/events?severity=error"));
        assert_eq!(r.body.get("count").unwrap().as_u64(), Some(0));
        // Stop journals a run_stop; last=1 keeps only the newest.
        s.handle(&Request::post("/workloads/demo/stop", Json::obj()));
        let r = s.handle(&Request::get("/events?last=1"));
        let events = r.body.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("run_stop"));
    }

    #[test]
    fn malformed_query_params_are_400_not_silent_defaults() {
        let s = server();
        for q in [
            "/events?last=abc",
            "/events?last=-1",
            "/events?last=1e3",
            "/events?last=99999999999999999999999999",
            "/events?severity=loud",
            "/trace/spans?last=half",
            "/trace/spans?outcome=exploded",
            "/trace/spans?tenant=-3",
            "/trace/spans?tenant=70000",
            "/trace/spans?min_us=soon",
        ] {
            let r = s.handle(&Request::get(q));
            assert_eq!(r.status, 400, "{q} -> {r:?}");
            assert!(
                r.body.get("error").unwrap().as_str().unwrap().contains("invalid"),
                "{q} -> {r:?}"
            );
        }
    }

    #[test]
    fn report_and_doctor_endpoints() {
        let s = ApiServer::new();
        let rec = Arc::new(bp_obs::TelemetryRecorder::new(1_000_000));
        for i in 0..5u64 {
            rec.record(bp_obs::TelemetrySample {
                t_us: i * 1_000_000,
                rate: f64::INFINITY,
                throughput: 100.0,
                p50_us: 1_000,
                p99_us: 2_000,
                commits: 100,
                ..Default::default()
            });
        }
        s.register("demo", controller().with_recorder(rec));
        let r = s.handle(&Request::get("/report"));
        let (ctype, text) = r.raw.expect("raw payload");
        assert!(ctype.starts_with("text/plain"));
        assert!(text.starts_with("#bp-report v1"), "{text}");
        let parsed = bp_obs::Report::from_text(&text).expect("report round-trips");
        assert_eq!(parsed.samples.len(), 5);
        assert!(!parsed.events.is_empty(), "run_start is in the report");
        let r = s.handle(&Request::get("/doctor"));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("samples").unwrap().as_u64(), Some(5));
        assert!(r.body.get("findings").unwrap().as_arr().is_some());
        // Controllers without a recorder (and unknown workloads) are 404s.
        let bare = server();
        assert_eq!(bare.handle(&Request::get("/report")).status, 404);
        assert_eq!(bare.handle(&Request::get("/doctor")).status, 404);
        assert_eq!(s.handle(&Request::get("/report?workload=ghost")).status, 404);
    }

    #[test]
    fn slo_arm_status_disarm_roundtrip() {
        let s = server();
        // Status before arming: inactive, no target.
        let r = s.handle(&Request::get("/slo/status"));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("active").unwrap().as_bool(), Some(false));
        assert_eq!(r.body.get("target").unwrap().as_str(), Some("none"));
        // Arm a p99 target.
        let r = s.handle(&Request::post(
            "/slo",
            Json::obj()
                .set("target", "p99")
                .set("limit_ms", 20.0)
                .set("initial_rate", 500.0)
                .set("min_rate", 50.0)
                .set("law", "aimd"),
        ));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body.get("workload").unwrap().as_str(), Some("demo"));
        assert_eq!(r.body.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(r.body.get("target").unwrap().as_str(), Some("p99"));
        assert_eq!(r.body.get("limit_us").unwrap().as_u64(), Some(20_000));
        assert_eq!(r.body.get("law").unwrap().as_str(), Some("aimd"));
        assert_eq!(r.body.get("rate").unwrap().as_f64(), Some(500.0));
        // Status mirrors the armed config; with no traffic the loop holds.
        let r = s.handle(&Request::get("/slo/status?workload=demo"));
        assert!(r.is_ok());
        assert_eq!(r.body.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(r.body.get("rate").unwrap().as_f64(), Some(500.0));
        assert!(r.body.get("adjustments").unwrap().get("increase").is_some());
        // Disarm.
        let r = s.handle(&Request {
            method: Method::Delete,
            path: "/slo".into(),
            body: None,
        });
        assert!(r.is_ok());
        assert_eq!(r.body.get("active").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn slo_validation_and_unknown_workload() {
        let s = server();
        let r = s.handle(&Request::post("/slo", Json::obj().set("target", "p42")));
        assert_eq!(r.status, 400);
        assert!(r.body.get("error").unwrap().as_str().unwrap().contains("p99"));
        let r = s.handle(&Request::post("/slo", Json::obj().set("law", "bang-bang")));
        assert_eq!(r.status, 400);
        let r = s.handle(&Request::post("/slo", Json::obj().set("backoff", 1.5)));
        assert_eq!(r.status, 400);
        let r = s.handle(&Request::post("/slo", Json::obj().set("limit_ms", -3.0)));
        assert_eq!(r.status, 400);
        let r = s.handle(&Request::post(
            "/slo",
            Json::obj().set("min_rate", 100.0).set("max_rate", 10.0),
        ));
        assert_eq!(r.status, 400);
        let r = s.handle(&Request::post("/slo", Json::obj().set("workload", "ghost")));
        assert_eq!(r.status, 404);
        // No workloads registered at all.
        let empty = ApiServer::new();
        assert_eq!(empty.handle(&Request::get("/slo/status")).status, 404);
        assert_eq!(empty.handle(&Request::post("/slo", Json::obj())).status, 404);
    }

    #[test]
    fn slo_arm_registers_metrics_source() {
        let reg = Arc::new(MetricsRegistry::new());
        let s = ApiServer::new().with_registry(reg.clone());
        s.register("demo", controller());
        let base = reg.source_count();
        let r = s.handle(&Request::post("/slo", Json::obj().set("target", "max-throughput")));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(reg.source_count(), base + 1);
        assert!(reg.source_names().iter().any(|n| n == "slo:demo"), "{:?}", reg.source_names());
        // Re-arming reuses the same handle: no duplicate source.
        let r = s.handle(&Request::post("/slo", Json::obj().set("target", "p50")));
        assert!(r.is_ok());
        assert_eq!(reg.source_count(), base + 1);
        let text = reg.render_prometheus();
        assert!(text.contains("bp_slo_active"), "{text}");
        assert!(text.contains("bp_slo_current_rate"), "{text}");
        let r = s.handle(&Request {
            method: Method::Delete,
            path: "/slo".into(),
            body: None,
        });
        assert!(r.is_ok());
    }
}
