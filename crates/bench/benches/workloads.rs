//! Bench E1 (Table 1): per-benchmark transaction cost on the embedded
//! engine — one sampled default-mixture transaction per iteration — plus
//! loader throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bp_core::Mixture;
use bp_sql::Connection;
use bp_storage::{Database, Personality};
use bp_util::rng::Rng;
use bp_workloads::{all_workloads, by_name};

fn bench_default_mixture_txn(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_txn");
    group.sample_size(30);
    for w in all_workloads() {
        let db = Database::new(Personality::test());
        let mut conn = Connection::open(&db);
        let mut rng = Rng::new(1);
        w.setup(&mut conn, 0.2, &mut rng).unwrap();
        let types = w.transaction_types();
        let mixture = Mixture::default_of(&types);
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, w| {
            b.iter(|| {
                let idx = mixture.sample(&mut rng);
                // Retry wait-die aborts like a worker would.
                loop {
                    match w.execute(idx, &mut conn, &mut rng) {
                        Ok(o) => break black_box(o),
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("{}: {e}", w.name()),
                    }
                }
            });
        });
    }
    group.finish();
}

fn bench_loaders(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_load");
    group.sample_size(10);
    for name in ["voter", "ycsb", "tpcc"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, name| {
            b.iter(|| {
                let db = Database::new(Personality::test());
                let w = by_name(name).unwrap();
                let mut conn = Connection::open(&db);
                let summary = w.setup(&mut conn, 0.2, &mut Rng::new(2)).unwrap();
                black_box(summary.rows)
            });
        });
    }
    group.finish();
}

fn bench_mixture_sampling(c: &mut Criterion) {
    let w = by_name("tpcc").unwrap();
    let types = w.transaction_types();
    let mixture = Mixture::default_of(&types);
    let mut rng = Rng::new(3);
    c.bench_function("mixture_sample", |b| {
        b.iter(|| black_box(mixture.sample(&mut rng)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_default_mixture_txn, bench_loaders, bench_mixture_sampling
}
criterion_main!(benches);
