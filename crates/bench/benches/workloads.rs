//! Bench E1 (Table 1): per-benchmark transaction cost on the embedded
//! engine — one sampled default-mixture transaction per iteration — plus
//! loader throughput. Plain `fn main()` harness (hermetic build — no
//! criterion).

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_core::Mixture;
use bp_sql::Connection;
use bp_storage::{Database, Personality};
use bp_util::rng::Rng;
use bp_workloads::{all_workloads, by_name};

fn bench_default_mixture_txn(b: &mut Bencher) {
    group("workload_txn");
    for w in all_workloads() {
        let db = Database::new(Personality::test());
        let mut conn = Connection::open(&db);
        let mut rng = Rng::new(1);
        w.setup(&mut conn, 0.2, &mut rng).unwrap();
        let types = w.transaction_types();
        let mixture = Mixture::default_of(&types);
        b.bench(w.name(), move || {
            let idx = mixture.sample(&mut rng);
            // Retry wait-die aborts like a worker would.
            loop {
                match w.execute(idx, &mut conn, &mut rng) {
                    Ok(o) => break black_box(o),
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => panic!("{}: {e}", w.name()),
                }
            }
        });
    }
}

fn bench_loaders(b: &mut Bencher) {
    group("workload_load");
    for name in ["voter", "ycsb", "tpcc"] {
        b.bench(name, || {
            let db = Database::new(Personality::test());
            let w = by_name(name).unwrap();
            let mut conn = Connection::open(&db);
            let summary = w.setup(&mut conn, 0.2, &mut Rng::new(2)).unwrap();
            black_box(summary.rows)
        });
    }
}

fn bench_mixture_sampling(b: &mut Bencher) {
    group("mixture");
    let w = by_name("tpcc").unwrap();
    let types = w.transaction_types();
    let mixture = Mixture::default_of(&types);
    let mut rng = Rng::new(3);
    b.bench("mixture_sample", || black_box(mixture.sample(&mut rng)));
}

fn main() {
    let mut b = Bencher::new();
    bench_default_mixture_txn(&mut b);
    bench_loaders(&mut b);
    bench_mixture_sampling(&mut b);
}
