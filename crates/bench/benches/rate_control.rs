//! Bench E3 (§2.2.1): rate-control machinery — arrival generation, the
//! centralized queue's gated dispatch, DES shape tracking, and the
//! completion-path statistics hot path. Plain `fn main()` harness
//! (hermetic build — no criterion).

use std::hint::black_box;
use std::sync::Arc;

use bp_bench::simulate_shape;
use bp_bench::timing::{group, Bencher};
use bp_core::{ArrivalDist, RequestOutcome, RequestQueue, Sample, StatsCollector};
use bp_util::clock::sim_clock;
use bp_util::rng::Rng;

fn bench_arrival_offsets(b: &mut Bencher) {
    group("arrival_offsets");
    for n in [100usize, 1_000, 10_000] {
        let mut rng = Rng::new(1);
        b.bench(&format!("uniform/{n}"), move || {
            black_box(ArrivalDist::Uniform.offsets(n, &mut rng))
        });
        let mut rng = Rng::new(1);
        b.bench(&format!("exponential/{n}"), move || {
            black_box(ArrivalDist::Exponential.offsets(n, &mut rng))
        });
    }
}

fn bench_queue_dispatch(b: &mut Bencher) {
    group("queue_dispatch");
    b.bench("queue_push_pull_1k", || {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.push_arrivals(0..1_000u64);
        sim.advance_to(2_000);
        let mut n = 0;
        while q.try_pull().is_some() {
            n += 1;
        }
        black_box(n)
    });
    b.bench("queue_gated_drain_1k", || {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        q.set_rate(1_000_000.0); // 1µs spacing
        q.push_arrivals(0..1_000u64);
        let mut n = 0;
        while n < 1_000 {
            sim.advance(1);
            while q.try_pull().is_some() {
                n += 1;
            }
        }
        black_box(n)
    });
}

/// The completion path: one `StatsCollector::record` per finished
/// transaction. Reported single-threaded (pure per-record cost) and from
/// multiple recording threads (contention behavior of the sharded layout).
fn bench_stats_completion_path(b: &mut Bencher) {
    group("stats_completion_path");
    let (_, clock) = sim_clock();
    let stats = StatsCollector::new(clock, &["read", "write"]);
    let mut i = 0u64;
    b.bench("stats_record_single_thread", || {
        i += 1;
        stats.record(Sample {
            txn_type: (i % 2) as usize,
            arrival: i * 10,
            start: i * 10 + 5,
            end: i * 10 + 500,
            outcome: RequestOutcome::Committed,
            retries: 0,
        });
    });

    // Multi-threaded: fixed work divided among recording threads; one
    // iteration spawns the threads and records `threads × per_thread`
    // samples into one shared collector. The `1shard` variants reproduce
    // the pre-sharding layout (one global mutex) for direct comparison.
    for threads in [2usize, 4, 8] {
        let per_thread = 100_000u64;
        for (label, shards) in [("sharded", 0usize), ("1shard", 1)] {
            b.bench(&format!("stats_record_{threads}threads_{label}"), move || {
                let (_, clock) = sim_clock();
                let stats = Arc::new(if shards == 0 {
                    StatsCollector::new(clock, &["read", "write"])
                } else {
                    StatsCollector::with_shards(clock, &["read", "write"], shards)
                });
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let stats = stats.clone();
                        std::thread::spawn(move || {
                            for i in 0..per_thread {
                                stats.record(Sample {
                                    txn_type: t % 2,
                                    arrival: i * 10,
                                    start: i * 10 + 5,
                                    end: i * 10 + 500,
                                    outcome: RequestOutcome::Committed,
                                    retries: 0,
                                });
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                black_box(stats.total_completed())
            });
        }
    }
}

/// Figure-style series: simulate each challenge shape on the model DBMS
/// (this is what regenerates the §4.1.2 target-vs-delivered curves).
fn bench_shape_tracking(b: &mut Bencher) {
    group("shape_tracking_des");
    for shape in ["steps", "sin", "peak", "tunnel"] {
        b.bench(&format!("mysql/{shape}"), || {
            black_box(simulate_shape("mysql", shape, 60.0))
        });
    }
}

fn main() {
    let mut b = Bencher::new();
    bench_arrival_offsets(&mut b);
    bench_queue_dispatch(&mut b);
    bench_stats_completion_path(&mut b);
    bench_shape_tracking(&mut b);
}
