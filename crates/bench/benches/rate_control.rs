//! Bench E3 (§2.2.1): rate-control machinery — arrival generation, the
//! centralized queue's gated dispatch, and DES shape tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bp_bench::simulate_shape;
use bp_core::{ArrivalDist, RequestQueue};
use bp_util::clock::sim_clock;
use bp_util::rng::Rng;

fn bench_arrival_offsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_offsets");
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, &n| {
            let mut rng = Rng::new(1);
            b.iter(|| black_box(ArrivalDist::Uniform.offsets(n, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("exponential", n), &n, |b, &n| {
            let mut rng = Rng::new(1);
            b.iter(|| black_box(ArrivalDist::Exponential.offsets(n, &mut rng)));
        });
    }
    group.finish();
}

fn bench_queue_dispatch(c: &mut Criterion) {
    c.bench_function("queue_push_pull_1k", |b| {
        b.iter(|| {
            let (sim, clock) = sim_clock();
            let q = RequestQueue::new(clock);
            q.push_arrivals(0..1_000u64);
            sim.advance_to(2_000);
            let mut n = 0;
            while q.try_pull().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    c.bench_function("queue_gated_drain_1k", |b| {
        b.iter(|| {
            let (sim, clock) = sim_clock();
            let q = RequestQueue::new(clock);
            q.set_rate(1_000_000.0); // 1µs spacing
            q.push_arrivals(0..1_000u64);
            let mut n = 0;
            while n < 1_000 {
                sim.advance(1);
                while q.try_pull().is_some() {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
}

/// Figure-style series: simulate each challenge shape on the model DBMS
/// (this is what regenerates the §4.1.2 target-vs-delivered curves).
fn bench_shape_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape_tracking_des");
    group.sample_size(20);
    for shape in ["steps", "sin", "peak", "tunnel"] {
        group.bench_with_input(BenchmarkId::new("mysql", shape), &shape, |b, shape| {
            b.iter(|| black_box(simulate_shape("mysql", shape, 60.0)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_arrival_offsets, bench_queue_dispatch, bench_shape_tracking
}
criterion_main!(benches);
