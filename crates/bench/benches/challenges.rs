//! Bench E6/E7/E8: the game experiments on deterministic simulation —
//! full autopilot courses per DBMS model, two-player interference, and the
//! physics hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bp_core::{CapacityModel, TransactionType};
use bp_game::{
    chase_center_policy, Course, Game, GameSession, Input, PhysicsConfig, SimBackend,
    TwoPlayerSession,
};

fn types() -> Vec<TransactionType> {
    vec![
        TransactionType::new("r", 50.0, true),
        TransactionType::new("w", 50.0, false),
    ]
}

fn physics() -> PhysicsConfig {
    PhysicsConfig { jump_tps: 60.0, gravity_tps_per_s: 40.0, max_tps: 1_500.0 }
}

fn bench_autopilot_courses(c: &mut Criterion) {
    let mut group = c.benchmark_group("autopilot_course");
    group.sample_size(20);
    for model in [CapacityModel::mysql_like(), CapacityModel::derby_like()] {
        for course in Course::demo_set(1_000.0) {
            let id = format!("{}/{}", model.name, course.name);
            group.bench_with_input(BenchmarkId::from_parameter(id), &course, |b, course| {
                b.iter(|| {
                    let game = Game::new("ycsb", model.name, course.clone(), physics());
                    let backend = SimBackend::new(model.clone(), types(), 42);
                    let mut s = GameSession::new(game, backend);
                    s.run_policy(100_000, 700, chase_center_policy);
                    black_box(s.game.score())
                });
            });
        }
    }
    group.finish();
}

fn bench_two_player(c: &mut Criterion) {
    c.bench_function("two_player_60s_sim", |b| {
        let course = Course { name: "open".into(), obstacles: vec![], duration_us: 60_000_000 };
        b.iter(|| {
            let mut two = TwoPlayerSession::new(
                CapacityModel::mysql_like(),
                types(),
                [course.clone(), course.clone()],
                physics(),
                7,
            );
            two.games[0].character.set_requested(800.0);
            two.games[1].character.set_requested(800.0);
            for _ in 0..600 {
                two.tick(100_000, [Input::None, Input::None]);
            }
            black_box(two.games[0].character.measured_tps)
        });
    });
}

fn bench_game_tick(c: &mut Criterion) {
    let course = Course::demo_set(1_000.0).remove(0);
    c.bench_function("game_tick", |b| {
        let mut game = Game::new("ycsb", "mysql", course.clone(), physics());
        b.iter(|| black_box(game.tick(1, 300.0, Input::None)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_autopilot_courses, bench_two_player, bench_game_tick
}
criterion_main!(benches);
