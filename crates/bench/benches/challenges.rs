//! Bench E6/E7/E8: the game experiments on deterministic simulation —
//! full autopilot courses per DBMS model, two-player interference, and the
//! physics hot loop. Plain `fn main()` harness (hermetic build — no
//! criterion).

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_core::{CapacityModel, TransactionType};
use bp_game::{
    chase_center_policy, Course, Game, GameSession, Input, PhysicsConfig, SimBackend,
    TwoPlayerSession,
};

fn types() -> Vec<TransactionType> {
    vec![
        TransactionType::new("r", 50.0, true),
        TransactionType::new("w", 50.0, false),
    ]
}

fn physics() -> PhysicsConfig {
    PhysicsConfig { jump_tps: 60.0, gravity_tps_per_s: 40.0, max_tps: 1_500.0 }
}

fn bench_autopilot_courses(b: &mut Bencher) {
    group("autopilot_course");
    for model in [CapacityModel::mysql_like(), CapacityModel::derby_like()] {
        for course in Course::demo_set(1_000.0) {
            let id = format!("{}/{}", model.name, course.name);
            let model = model.clone();
            b.bench(&id, move || {
                let game = Game::new("ycsb", model.name, course.clone(), physics());
                let backend = SimBackend::new(model.clone(), types(), 42);
                let mut s = GameSession::new(game, backend);
                s.run_policy(100_000, 700, chase_center_policy);
                black_box(s.game.score())
            });
        }
    }
}

fn bench_two_player(b: &mut Bencher) {
    group("two_player");
    let course = Course { name: "open".into(), obstacles: vec![], duration_us: 60_000_000 };
    b.bench("two_player_60s_sim", || {
        let mut two = TwoPlayerSession::new(
            CapacityModel::mysql_like(),
            types(),
            [course.clone(), course.clone()],
            physics(),
            7,
        );
        two.games[0].character.set_requested(800.0);
        two.games[1].character.set_requested(800.0);
        for _ in 0..600 {
            two.tick(100_000, [Input::None, Input::None]);
        }
        black_box(two.games[0].character.measured_tps)
    });
}

fn bench_game_tick(b: &mut Bencher) {
    group("game_tick");
    let course = Course::demo_set(1_000.0).remove(0);
    let mut game = Game::new("ycsb", "mysql", course, physics());
    b.bench("game_tick", || black_box(game.tick(1, 300.0, Input::None)));
}

fn main() {
    let mut b = Bencher::new();
    bench_autopilot_courses(&mut b);
    bench_two_player(&mut b);
    bench_game_tick(&mut b);
}
