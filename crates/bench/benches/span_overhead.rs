//! Span flight-recorder overhead (ISSUE 2 acceptance): recording one span
//! in full mode must cost < 100ns single-threaded, and the `should_record`
//! gate in off mode must be near-free — span recording is compiled in but
//! paid for per-run only when enabled. Plain `fn main()` harness (hermetic
//! build — no criterion).
//!
//! `BENCH_SMOKE=1` shrinks the measurement budget for CI smoke runs; the
//! bounds are asserted in both modes.

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_obs::{ObsConfig, Span, SpanMode, SpanOutcome, SpanRecorder};

fn span(seq: u64) -> Span {
    Span {
        trace_id: bp_obs::trace_id(42, seq),
        seq,
        submitted_us: seq * 10,
        dequeued_us: seq * 10 + 3,
        end_us: seq * 10 + 250,
        lock_wait_us: 20,
        commit_us: 30,
        tenant: 0,
        phase: (seq / 1_000) as u16,
        txn_type: (seq % 4) as u16,
        retries: 0,
        outcome: SpanOutcome::Committed,
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let mut b = Bencher::new();
    if smoke {
        b.budget = std::time::Duration::from_millis(60);
        b.warmup = std::time::Duration::from_millis(15);
    }

    group("span_overhead");

    // Full mode: the complete hot path — gate check, 4 histogram records,
    // ring write. This is what every request pays when spans = full.
    let rec = SpanRecorder::new(ObsConfig { mode: SpanMode::Full, ..ObsConfig::default() });
    let mut seq = 0u64;
    let full_ns = {
        let r = b.bench("record_full", || {
            seq += 1;
            if rec.should_record(seq) {
                rec.record(black_box(span(seq)));
            }
        });
        r.best_ns
    };

    // Off mode: the per-request residue when spans are disabled — one
    // relaxed atomic load in `should_record`.
    let rec_off = SpanRecorder::new(ObsConfig { mode: SpanMode::Off, ..ObsConfig::default() });
    let mut seq_off = 0u64;
    let off_ns = {
        let r = b.bench("should_record_off", || {
            seq_off += 1;
            black_box(rec_off.should_record(seq_off))
        });
        r.best_ns
    };

    // Sampled mode at 10%: the gate hashes the sequence number; ~10% of
    // iterations also pay the record.
    let rec_s = SpanRecorder::new(ObsConfig {
        mode: SpanMode::Sampled,
        sample_ratio: 0.1,
        ..ObsConfig::default()
    });
    let mut seq_s = 0u64;
    b.bench("record_sampled_10pct", || {
        seq_s += 1;
        if rec_s.should_record(seq_s) {
            rec_s.record(black_box(span(seq_s)));
        }
    });

    assert!(
        full_ns < 100.0,
        "full-mode span recording too slow: {full_ns:.1} ns/span (budget 100 ns)"
    );
    assert!(
        off_ns < 10.0,
        "off-mode gate should be a relaxed load: {off_ns:.1} ns (budget 10 ns)"
    );
    println!(
        "OK: full {full_ns:.1} ns/span (< 100 ns), off-mode gate {off_ns:.1} ns (< 10 ns)"
    );
}
