//! Storage-substrate microbenchmarks: the primitive operations whose costs
//! determine every workload's throughput envelope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bp_sql::Connection;
use bp_storage::{Column, DataType, Database, Personality, TableSchema, Value};

fn test_db(rows: i64) -> std::sync::Arc<Database> {
    let db = Database::new(Personality::test());
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("data", DataType::Str),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_index("t", "t_grp", &["grp"], false).unwrap();
    let t = db.table("t").unwrap();
    let mut s = db.session();
    s.begin().unwrap();
    for i in 0..rows {
        s.insert(&t, vec![Value::Int(i), Value::Int(i % 100), Value::Str("x".repeat(64))])
            .unwrap();
    }
    s.commit().unwrap();
    db
}

fn bench_point_ops(c: &mut Criterion) {
    let db = test_db(10_000);
    let t = db.table("t").unwrap();

    c.bench_function("storage_point_read", |b| {
        let mut s = db.session();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            s.begin().unwrap();
            let r = s.read_pk(&t, &[Value::Int(i)], false).unwrap();
            s.commit().unwrap();
            black_box(r)
        });
    });

    c.bench_function("storage_update_txn", |b| {
        let mut s = db.session();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 13) % 10_000;
            s.begin().unwrap();
            let (rid, mut row) = s.read_pk(&t, &[Value::Int(i)], true).unwrap().unwrap();
            row[1] = Value::Int(i % 50);
            s.update(&t, rid, row).unwrap();
            s.commit().unwrap();
        });
    });

    c.bench_function("storage_insert_delete_txn", |b| {
        let mut s = db.session();
        let mut i = 1_000_000i64;
        b.iter(|| {
            i += 1;
            s.begin().unwrap();
            let rid = s
                .insert(&t, vec![Value::Int(i), Value::Int(0), Value::Str("y".into())])
                .unwrap();
            s.delete(&t, rid).unwrap();
            s.commit().unwrap();
        });
    });
}

fn bench_index_scans(c: &mut Criterion) {
    let db = test_db(10_000);
    let t = db.table("t").unwrap();
    let mut group = c.benchmark_group("storage_index_lookup");
    group.bench_function("secondary_eq_100rows", |b| {
        let mut s = db.session();
        b.iter(|| {
            s.begin().unwrap();
            let rows = s.read_index(&t, "t_grp", &[Value::Int(42)]).unwrap();
            s.commit().unwrap();
            black_box(rows.len())
        });
    });
    group.finish();
}

fn bench_sql_layer(c: &mut Criterion) {
    let db = test_db(10_000);
    let mut group = c.benchmark_group("sql");
    group.bench_function("parse_select", |b| {
        b.iter(|| {
            black_box(
                bp_sql::parse(
                    "SELECT id, data FROM t WHERE grp = ? AND id > 100 ORDER BY id DESC LIMIT 10",
                )
                .unwrap(),
            )
        });
    });
    group.bench_function("prepared_point_select", |b| {
        let mut conn = Connection::open(&db);
        let stmt = conn.prepare("SELECT data FROM t WHERE id = ?").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 3) % 10_000;
            black_box(conn.query_prepared(&stmt, &[Value::Int(i)]).unwrap())
        });
    });
    group.bench_function("aggregate_group_by", |b| {
        let mut conn = Connection::open(&db);
        let stmt = conn
            .prepare("SELECT grp, COUNT(*) AS n, AVG(id) AS a FROM t GROUP BY grp")
            .unwrap();
        b.iter(|| black_box(conn.query_prepared(&stmt, &[]).unwrap()));
    });
    group.finish();
}

fn bench_dialect_rendering(c: &mut Criterion) {
    let stmt = bp_sql::parse(
        "SELECT a, b AS x FROM t WHERE a = ? AND b > 3 ORDER BY x DESC LIMIT 5",
    )
    .unwrap();
    let mut group = c.benchmark_group("dialect_render");
    for d in bp_sql::Dialect::all() {
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &d, |b, d| {
            b.iter(|| black_box(d.render(&stmt)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    targets = bench_point_ops, bench_index_scans, bench_sql_layer, bench_dialect_rendering
}
criterion_main!(benches);
