//! Storage-substrate microbenchmarks: the primitive operations whose costs
//! determine every workload's throughput envelope. Plain `fn main()`
//! harness (hermetic build — no criterion).

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_sql::Connection;
use bp_storage::{Column, DataType, Database, Personality, TableSchema, Value};

fn test_db(rows: i64) -> std::sync::Arc<Database> {
    let db = Database::new(Personality::test());
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("data", DataType::Str),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_index("t", "t_grp", &["grp"], false).unwrap();
    let t = db.table("t").unwrap();
    let mut s = db.session();
    s.begin().unwrap();
    for i in 0..rows {
        s.insert(&t, vec![Value::Int(i), Value::Int(i % 100), Value::Str("x".repeat(64))])
            .unwrap();
    }
    s.commit().unwrap();
    db
}

fn bench_point_ops(b: &mut Bencher) {
    group("storage_point_ops");
    let db = test_db(10_000);
    let t = db.table("t").unwrap();

    let mut s = db.session();
    let mut i = 0i64;
    b.bench("storage_point_read", || {
        i = (i + 7) % 10_000;
        s.begin().unwrap();
        let r = s.read_pk(&t, &[Value::Int(i)], false).unwrap();
        s.commit().unwrap();
        black_box(r)
    });

    let mut s = db.session();
    let mut i = 0i64;
    b.bench("storage_update_txn", || {
        i = (i + 13) % 10_000;
        s.begin().unwrap();
        let (rid, mut row) = s.read_pk(&t, &[Value::Int(i)], true).unwrap().unwrap();
        row[1] = Value::Int(i % 50);
        s.update(&t, rid, row).unwrap();
        s.commit().unwrap();
    });

    let mut s = db.session();
    let mut i = 1_000_000i64;
    b.bench("storage_insert_delete_txn", || {
        i += 1;
        s.begin().unwrap();
        let rid = s
            .insert(&t, vec![Value::Int(i), Value::Int(0), Value::Str("y".into())])
            .unwrap();
        s.delete(&t, rid).unwrap();
        s.commit().unwrap();
    });
}

fn bench_index_scans(b: &mut Bencher) {
    group("storage_index_lookup");
    let db = test_db(10_000);
    let t = db.table("t").unwrap();
    let mut s = db.session();
    b.bench("secondary_eq_100rows", || {
        s.begin().unwrap();
        let rows = s.read_index(&t, "t_grp", &[Value::Int(42)]).unwrap();
        s.commit().unwrap();
        black_box(rows.len())
    });
}

fn bench_sql_layer(b: &mut Bencher) {
    group("sql");
    let db = test_db(10_000);
    b.bench("parse_select", || {
        black_box(
            bp_sql::parse(
                "SELECT id, data FROM t WHERE grp = ? AND id > 100 ORDER BY id DESC LIMIT 10",
            )
            .unwrap(),
        )
    });

    let mut conn = Connection::open(&db);
    let stmt = conn.prepare("SELECT data FROM t WHERE id = ?").unwrap();
    let mut i = 0i64;
    b.bench("prepared_point_select", || {
        i = (i + 3) % 10_000;
        black_box(conn.query_prepared(&stmt, &[Value::Int(i)]).unwrap())
    });

    let mut conn = Connection::open(&db);
    let stmt = conn
        .prepare("SELECT grp, COUNT(*) AS n, AVG(id) AS a FROM t GROUP BY grp")
        .unwrap();
    b.bench("aggregate_group_by", || {
        black_box(conn.query_prepared(&stmt, &[]).unwrap())
    });
}

fn bench_dialect_rendering(b: &mut Bencher) {
    group("dialect_render");
    let stmt = bp_sql::parse(
        "SELECT a, b AS x FROM t WHERE a = ? AND b > 3 ORDER BY x DESC LIMIT 5",
    )
    .unwrap();
    for d in bp_sql::Dialect::all() {
        b.bench(d.name(), || black_box(d.render(&stmt)));
    }
}

fn main() {
    let mut b = Bencher::new();
    bench_point_ops(&mut b);
    bench_index_scans(&mut b);
    bench_sql_layer(&mut b);
    bench_dialect_rendering(&mut b);
}
