//! Chaos gate overhead (ISSUE 3 acceptance): with no fault plan armed, the
//! injection probe on the commit/charge path must be a single relaxed
//! atomic load — under 5 ns — so that a chaos-capable build costs nothing
//! when chaos is off. Plain `fn main()` harness (hermetic build — no
//! criterion).
//!
//! `BENCH_SMOKE=1` shrinks the measurement budget for CI smoke runs; the
//! disarmed-gate bound is asserted either way.

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_chaos::{ChaosController, FaultKind, FaultPlan, FaultWindow};
use bp_storage::{Column, DataType, Database, Personality, TableSchema, Value};

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let mut b = Bencher::new();
    if smoke {
        b.budget = std::time::Duration::from_millis(60);
        b.warmup = std::time::Duration::from_millis(15);
    }

    group("chaos_gate");

    // Disarmed: the per-probe residue every commit/charge/lock pays when
    // chaos is off — one relaxed load and a branch. The result is reduced
    // to a bool so the measurement doesn't include spilling an Option<u64>
    // through black_box.
    let chaos = ChaosController::new();
    let disarmed_ns = {
        let r = b.bench("roll_disarmed", || chaos.roll(FaultKind::FsyncStall).is_some());
        r.best_ns
    };
    let blackout_ns = {
        let r = b.bench("blackout_disarmed", || chaos.blackout(0));
        r.best_ns
    };

    // Armed with an inactive window: the slow path without an injection —
    // what a run pays per probe while a scenario is loaded.
    let armed = ChaosController::new();
    armed.arm(
        FaultPlan::new("bench", 42)
            .with_window(FaultWindow::always(FaultKind::LatencySpike, 0.0, 100)),
    );
    b.bench("roll_armed_no_hit", || {
        black_box(armed.roll(black_box(FaultKind::FsyncStall)))
    });

    // End-to-end: a full single-row insert+commit on the embedded engine,
    // chaos disarmed — the gate must vanish inside the engine's own costs.
    let db = Database::new(Personality::test());
    db.create_table(
        TableSchema::new("t", vec![Column::new("id", DataType::Int)], &["id"]).unwrap(),
    )
    .unwrap();
    let table = db.table("t").unwrap();
    let mut id = 0i64;
    let commit = b.bench("insert_commit_disarmed", || {
        id += 1;
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&table, vec![Value::Int(id)]).unwrap();
        s.commit().unwrap();
    });

    assert!(
        disarmed_ns < 5.0,
        "disarmed chaos gate too slow: {disarmed_ns:.2} ns (budget 5 ns)"
    );
    assert!(
        blackout_ns < 5.0,
        "disarmed blackout gate too slow: {blackout_ns:.2} ns (budget 5 ns)"
    );
    println!(
        "OK: disarmed roll {disarmed_ns:.2} ns, blackout {blackout_ns:.2} ns (< 5 ns); \
         insert+commit {:.0} ns/txn",
        commit.best_ns
    );
}
