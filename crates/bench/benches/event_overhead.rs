//! Event journal gate overhead (ISSUE 7 acceptance): with the journal
//! disabled, an `emit_with` on a hot path must be a single relaxed atomic
//! load — under 5 ns — so every layer can carry journal emission sites
//! without taxing runs that turn the flight recorder off. The message/field
//! closure must not run at all on the disabled path. Plain `fn main()`
//! harness (hermetic build — no criterion).
//!
//! `BENCH_SMOKE=1` shrinks the measurement budget for CI smoke runs; the
//! disabled-gate bound is asserted either way.

use std::hint::black_box;

use bp_bench::timing::{group, Bencher};
use bp_obs::{EventJournal, Severity};

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let mut b = Bencher::new();
    if smoke {
        b.budget = std::time::Duration::from_millis(60);
        b.warmup = std::time::Duration::from_millis(15);
    }

    group("event_overhead");

    // Disabled: the per-site residue when the flight recorder is off — one
    // relaxed load and a branch; the closure is never called.
    let off = EventJournal::disabled();
    let disabled_ns = {
        let r = b.bench("emit_disabled", || {
            off.emit_with(Severity::Info, "core", "rate_change", || {
                (format!("rate {} -> {}", black_box(100), black_box(200)), vec![
                    ("before", "100".to_string()),
                    ("after", "200".to_string()),
                ])
            });
        });
        r.best_ns
    };

    // Enabled: the full cost of formatting the message, allocating the
    // fields, and taking one uncontended shard lock.
    let on = EventJournal::new();
    let mut n = 0u64;
    let enabled_ns = b
        .bench("emit_enabled", || {
            n += 1;
            on.emit_with(Severity::Info, "core", "rate_change", || {
                (format!("rate {} -> {}", n, n + 1), vec![
                    ("before", n.to_string()),
                    ("after", (n + 1).to_string()),
                ])
            });
        })
        .best_ns;

    // Read path: draining the most recent events, as GET /events does.
    let drain_ns =
        b.bench("recent_100", || black_box(on.recent(100, Severity::Debug).len())).best_ns;

    assert!(
        disabled_ns < 5.0,
        "disabled event gate too slow: {disabled_ns:.2} ns (budget 5 ns)"
    );
    println!(
        "OK: disabled emit {disabled_ns:.2} ns (< 5 ns); enabled emit {enabled_ns:.0} ns; \
         recent(100) {drain_ns:.0} ns"
    );
}
