//! Experiment runners, one per paper artifact.

use std::sync::Arc;

use bp_core::{
    simulate_script, ArrivalDist, CapacityModel, MixturePreset, Phase, PhaseScript, Rate,
    RunConfig, SimDbms, Testbed, TraceAnalyzer,
};
use bp_game::{chase_center_policy, Course, Game, GameSession, Input, PhysicsConfig, SimBackend};
use bp_sql::Connection;
use bp_storage::{Database, Personality};
use bp_util::clock::wall_clock;
use bp_util::rng::Rng;
use bp_util::timeseries::Summary;
use bp_workloads::{all_workloads, by_name, catalog_of, table1};

/// E1 — regenerate **Table 1**: every bundled benchmark, loaded and probed.
pub struct Table1Report {
    pub rows: Vec<Table1VerifiedRow>,
}

pub struct Table1VerifiedRow {
    pub class: String,
    pub benchmark: String,
    pub domain: String,
    pub txn_types: usize,
    pub loaded_rows: u64,
    pub tables: usize,
    pub sampled_txns_ok: bool,
}

pub fn run_table1(scale: f64) -> Table1Report {
    let mut rows = Vec::new();
    for (meta, w) in table1().into_iter().zip(all_workloads()) {
        let db = Database::new(Personality::test());
        let mut conn = Connection::open(&db);
        let mut rng = Rng::new(1);
        let summary = w.setup(&mut conn, scale, &mut rng).expect("setup");
        let mut ok = true;
        for idx in 0..w.transaction_types().len() {
            for _ in 0..3 {
                if w.execute(idx, &mut conn, &mut rng).is_err() {
                    ok = false;
                }
            }
        }
        rows.push(Table1VerifiedRow {
            class: meta.class.label().to_string(),
            benchmark: meta.benchmark,
            domain: meta.domain,
            txn_types: meta.transaction_types,
            loaded_rows: summary.rows,
            tables: summary.tables,
            sampled_txns_ok: ok,
        });
    }
    Table1Report { rows }
}

impl Table1Report {
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 1: The set of benchmarks supported in OLTP-Bench\n");
        out.push_str(&format!(
            "{:<16}{:<18}{:<30}{:>6}{:>10}{:>8}{:>6}\n",
            "Class", "Benchmark", "Application Domain", "Txns", "Rows", "Tables", "OK"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16}{:<18}{:<30}{:>6}{:>10}{:>8}{:>6}\n",
                r.class,
                r.benchmark,
                r.domain,
                r.txn_types,
                r.loaded_rows,
                r.tables,
                if r.sampled_txns_ok { "yes" } else { "NO" }
            ));
        }
        out
    }
}

/// E3 — §2.2.1 rate control: target vs delivered under both arrival
/// distributions, on the live threaded testbed with the embedded engine.
pub struct RateControlReport {
    pub arrival: &'static str,
    pub target_tps: f64,
    pub delivered_mean: f64,
    pub mean_abs_error: f64,
    pub overshoot_seconds: usize,
}

pub fn run_rate_control(target_tps: f64, seconds: f64) -> Vec<RateControlReport> {
    let mut out = Vec::new();
    for (arrival, name) in [
        (ArrivalDist::Uniform, "uniform"),
        (ArrivalDist::Exponential, "exponential"),
    ] {
        let db = Database::new(Personality::test());
        let w = by_name("voter").unwrap();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.5, &mut Rng::new(7)).unwrap();
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(target_tps), seconds).with_arrival(arrival),
        ]);
        let cfg = RunConfig { terminals: 4, script: script.clone(), ..Default::default() };
        let handle = bp_core::start(db, w, wall_clock(), cfg);
        let trace = handle.trace.clone().unwrap();
        handle.join();
        let report = TraceAnalyzer::tracking(&trace, &script, 50_000.0, 0.05);
        let delivered = Summary::of(&report.delivered);
        out.push(RateControlReport {
            arrival: name,
            target_tps,
            delivered_mean: delivered.mean,
            mean_abs_error: report.mean_abs_error,
            overshoot_seconds: report.overshoot_seconds,
        });
    }
    out
}

/// E4 — §2.2.2 mixture control: read-heavy vs write-heavy throughput under
/// open-loop load (real lock contention on the embedded engine).
pub struct MixtureReport {
    pub preset: &'static str,
    pub throughput: f64,
    pub lock_waits: u64,
    pub deadlocks: u64,
}

pub fn run_mixture(seconds: f64) -> Vec<MixtureReport> {
    let mut out = Vec::new();
    for (preset, name) in [
        (MixturePreset::SuperWrites, "super-writes"),
        (MixturePreset::Default, "default"),
        (MixturePreset::ReadOnly, "read-only"),
    ] {
        let db = Database::new(Personality::mysql_like());
        let w = by_name("smallbank").unwrap();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.3, &mut Rng::new(3)).unwrap();
        let types = w.transaction_types();
        let weights = preset.build(&types).weights().to_vec();
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Unlimited, seconds).with_weights(weights),
        ]);
        let before = db.metrics().snapshot();
        let cfg = RunConfig { terminals: 8, script, collect_trace: false, ..Default::default() };
        let handle = bp_core::start(db.clone(), w, wall_clock(), cfg);
        let controller = handle.join();
        let m = db.metrics().snapshot().delta(&before);
        out.push(MixtureReport {
            preset: name,
            throughput: controller.stats().total_completed() as f64 / seconds,
            lock_waits: m.lock_waits,
            deadlocks: m.deadlocks,
        });
    }
    out
}

/// E5 — §2.2.3 multi-tenancy: a tenant's throughput alone vs alongside a
/// second tenant on the same instance.
pub struct TenancyReport {
    pub solo_tps: f64,
    pub contended_tps: f64,
    pub neighbor_tps: f64,
}

pub fn run_tenancy(seconds: f64) -> TenancyReport {
    let run = |with_neighbor: bool| -> (f64, f64) {
        let db = Database::new(Personality::mysql_like());
        let clock = wall_clock();
        let mut bed = Testbed::new(db, clock);
        let w1 = by_name("ycsb").unwrap();
        bed.setup_workload(w1.as_ref(), 0.3, 1).unwrap();
        let cfg = RunConfig {
            terminals: 4,
            script: PhaseScript::new(vec![Phase::new(Rate::Unlimited, seconds)]),
            collect_trace: false,
            ..Default::default()
        };
        bed.start_tenant("primary", w1, cfg.clone());
        if with_neighbor {
            let w2 = by_name("smallbank").unwrap();
            bed.setup_workload(w2.as_ref(), 0.3, 2).unwrap();
            bed.start_tenant("neighbor", w2, cfg);
        }
        let results = bed.join_all();
        let tps = |name: &str| {
            results
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.stats().total_completed() as f64 / seconds)
                .unwrap_or(0.0)
        };
        (tps("primary"), tps("neighbor"))
    };
    let (solo, _) = run(false);
    let (contended, neighbor) = run(true);
    TenancyReport { solo_tps: solo, contended_tps: contended, neighbor_tps: neighbor }
}

/// E6/E8 — §4.1.2 challenge shapes across DBMS personalities: the autopilot
/// plays each course against each capacity model; pass/fail plus tracking
/// error, on deterministic simulation.
pub struct ChallengeReport {
    pub dbms: &'static str,
    pub course: String,
    pub outcome: &'static str,
    pub survived_s: f64,
    pub score: u64,
}

pub fn run_challenges(scale_tps: f64) -> Vec<ChallengeReport> {
    let mut out = Vec::new();
    for model in CapacityModel::all() {
        for course in Course::demo_set(scale_tps) {
            let course_name = course.name.clone();
            let game = Game::new(
                "ycsb",
                model.name,
                course,
                PhysicsConfig { jump_tps: scale_tps * 0.06, gravity_tps_per_s: scale_tps * 0.04, max_tps: scale_tps * 1.5 },
            );
            let types = by_name("ycsb").unwrap().transaction_types();
            let backend = SimBackend::new(model.clone(), types, 42);
            let mut session = GameSession::new(game, backend);
            session.run_policy(100_000, 1_000, chase_center_policy);
            let g = &session.game;
            out.push(ChallengeReport {
                dbms: model.name,
                course: course_name,
                outcome: match g.screen() {
                    bp_game::Screen::Won => "pass",
                    bp_game::Screen::Crashed { .. } => "crash",
                    _ => "timeout",
                },
                survived_s: g.elapsed_us() as f64 / 1e6,
                score: g.score(),
            });
        }
    }
    out
}

/// E7 — game physics determinism: the same seed must reproduce the same
/// trajectory, and gravity/jump laws must hold.
pub struct PhysicsReport {
    pub deterministic: bool,
    pub gravity_linear: bool,
    pub crash_resets_db: bool,
}

pub fn run_physics() -> PhysicsReport {
    // Determinism.
    let run_once = || {
        let model = CapacityModel::mysql_like();
        let types = by_name("voter").unwrap().transaction_types();
        let course = Course::demo_set(1_000.0).remove(0);
        let game = Game::new("voter", "mysql", course, PhysicsConfig::default());
        let mut s = GameSession::new(game, SimBackend::new(model, types, 9));
        s.run_policy(100_000, 500, chase_center_policy);
        (s.game.score(), s.game.elapsed_us(), format!("{:?}", s.game.screen()))
    };
    let deterministic = run_once() == run_once();

    // Gravity linearity.
    let mut c = bp_game::Character::new(PhysicsConfig {
        jump_tps: 100.0,
        gravity_tps_per_s: 50.0,
        max_tps: 1_000.0,
    });
    c.set_requested(500.0);
    c.apply_gravity(2_000_000);
    let gravity_linear = (c.requested_tps - 400.0).abs() < 1e-9;

    // Crash semantics.
    let model = CapacityModel::mysql_like();
    let types = by_name("voter").unwrap().transaction_types();
    let course = Course::demo_set(1_000.0).remove(0);
    let game = Game::new("voter", "mysql", course, PhysicsConfig::default());
    let mut s = GameSession::new(game, SimBackend::new(model, types, 10));
    s.run_policy(100_000, 1_000, |_| Input::None); // crash by inaction
    let crash_resets_db = s.backend.resets == 1;

    PhysicsReport { deterministic, gravity_linear, crash_resets_db }
}

/// E8 — Fig. 2b: the same saturating workload against every personality on
/// the *embedded engine* (not the model): peak throughput and abort rates.
pub struct PersonalityReport {
    pub personality: &'static str,
    pub throughput: f64,
    pub p95_latency_us: u64,
    pub failed: u64,
    pub jitter_cv: f64,
}

pub fn run_personalities(seconds: f64) -> Vec<PersonalityReport> {
    let mut out = Vec::new();
    for p in Personality::all() {
        let name = p.name;
        let db = Database::new(p);
        let w = by_name("voter").unwrap();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.3, &mut Rng::new(5)).unwrap();
        let script = PhaseScript::new(vec![Phase::new(Rate::Unlimited, seconds)]);
        let cfg = RunConfig { terminals: 6, script, ..Default::default() };
        let handle = bp_core::start(db, w, wall_clock(), cfg);
        let controller = handle.join();
        let st = controller.stats().status(seconds as usize);
        let series = controller.stats().throughput_series();
        let steady = if series.len() > 2 { &series[1..series.len() - 1] } else { &series[..] };
        out.push(PersonalityReport {
            personality: name,
            throughput: controller.stats().total_completed() as f64 / seconds,
            p95_latency_us: st.p95_latency_us,
            failed: st.failed,
            jitter_cv: Summary::of(steady).cv(),
        });
    }
    out
}

/// E9 — §2.2.4 control API: command-to-effect latency for a rate change on
/// a live run (seconds until the delivered rate reaches the new target band).
pub struct ApiReport {
    pub old_rate: f64,
    pub new_rate: f64,
    pub effect_latency_s: f64,
    pub feedback_ok: bool,
}

pub fn run_api(old_rate: f64, new_rate: f64) -> ApiReport {
    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.3, &mut Rng::new(11)).unwrap();
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(old_rate), 30.0)]);
    let cfg = RunConfig { terminals: 4, script, collect_trace: false, ..Default::default() };
    let handle = bp_core::start(db, w, wall_clock(), cfg);
    let api = Arc::new(bp_api::ApiServer::new());
    api.register("voter", handle.controller.clone());

    std::thread::sleep(std::time::Duration::from_millis(1500));
    let resp = api.handle(&bp_api::Request::get("/workloads/voter"));
    let feedback_ok = resp.is_ok()
        && resp
            .body
            .get("status")
            .and_then(|s| s.get("throughput"))
            .and_then(bp_util::json::Json::as_f64)
            .is_some();

    // Issue the rate change and time until the 1s-window rate is in band.
    let t0 = std::time::Instant::now();
    let resp = api.handle(&bp_api::Request::post(
        "/workloads/voter/rate",
        bp_util::json::Json::obj().set("tps", new_rate),
    ));
    assert!(resp.is_ok(), "{resp:?}");
    let mut effect_latency_s = f64::NAN;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(100));
        let tput = handle.controller.stats().status(1).throughput;
        if (tput - new_rate).abs() <= new_rate * 0.15 {
            effect_latency_s = t0.elapsed().as_secs_f64();
            break;
        }
    }
    handle.controller.stop();
    handle.join();
    ApiReport { old_rate, new_rate, effect_latency_s, feedback_ok }
}

/// E10 — §2.1 dialect management: every benchmark statement rendered in all
/// four dialects and re-parsed.
pub struct DialectReport {
    pub benchmark: String,
    pub statements: usize,
    pub dialects_ok: usize,
    pub total_renderings: usize,
}

pub fn run_dialects() -> Vec<DialectReport> {
    let mut out = Vec::new();
    for w in all_workloads() {
        let cat = catalog_of(w.name()).expect("catalog");
        let mut ok = 0;
        let mut total = 0;
        for name in cat.names() {
            for d in bp_sql::Dialect::all() {
                total += 1;
                if let Some(sql) = cat.resolve(name, d) {
                    if bp_sql::parse(&sql).is_ok() {
                        ok += 1;
                    }
                }
            }
        }
        out.push(DialectReport {
            benchmark: w.name().to_string(),
            statements: cat.len(),
            dialects_ok: ok,
            total_renderings: total,
        });
    }
    out
}

/// Shape-tracking on the DES path (fast version of E6 used by the benches):
/// returns (target series, delivered series) for a named shape and model.
pub fn simulate_shape(model_name: &str, shape: &str, seconds: f64) -> (Vec<f64>, Vec<f64>) {
    let model = CapacityModel::by_name(model_name).expect("model");
    let cap = model.capacity(0.3, 1.0);
    let phases = match shape {
        "steps" => (0..5)
            .map(|i| {
                Phase::new(Rate::Limited(cap * 0.25 * (i + 1) as f64), seconds / 5.0)
            })
            .collect::<Vec<_>>(),
        "sin" => (0..20)
            .map(|i| {
                let level = cap * (0.5 + 0.35 * (i as f64 / 20.0 * std::f64::consts::TAU * 2.0).sin());
                Phase::new(Rate::Limited(level), seconds / 20.0)
            })
            .collect(),
        "peak" => vec![
            Phase::new(Rate::Limited(cap * 0.3), seconds * 0.4),
            Phase::new(Rate::Limited(cap * 0.95), seconds * 0.2),
            Phase::new(Rate::Limited(cap * 0.3), seconds * 0.4),
        ],
        "tunnel" => vec![Phase::new(Rate::Limited(cap * 0.6), seconds)],
        other => panic!("unknown shape {other}"),
    };
    let script = PhaseScript::new(phases);
    let w = by_name("ycsb").unwrap();
    let types = w.transaction_types();
    let mut dbms = SimDbms::new(model, 42);
    let run = simulate_script(&mut dbms, &script, &types, 1e5, 0.1);
    (run.requested(), run.delivered())
}

/// Ablation: centralized-queue gating on/off — how much the delivered rate
/// overshoots the target while draining a backlog (why the central queue
/// gates dispatches, §2.2.1).
/// E11 — observability (flight recorder + unified registry): run a
/// two-phase workload with span recording in full mode and report the
/// per-phase stage-latency lines plus the Prometheus exposition the
/// `/metrics` endpoint would serve.
pub struct ObservabilityReport {
    pub completed: u64,
    pub spans_recorded: u64,
    /// `(phase index, one-line p50/p95/p99 per stage)` per script phase.
    pub phase_lines: Vec<(u16, String)>,
    /// Distinct metric families in the exposition.
    pub metric_families: usize,
    pub exposition_bytes: usize,
}

pub fn run_observability(seconds: f64) -> ObservabilityReport {
    use bp_obs::{format_stage_line, MetricsRegistry};

    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.5, &mut Rng::new(7)).unwrap();
    let script = PhaseScript::new(vec![
        Phase::new(Rate::Limited(400.0), seconds / 2.0),
        Phase::new(Rate::Limited(800.0), seconds / 2.0),
    ]);
    let cfg = RunConfig { terminals: 4, script, ..Default::default() };
    let handle = bp_core::start(db, w, wall_clock(), cfg);

    let registry = MetricsRegistry::new();
    handle.controller.register_metrics(&registry);
    let spans = handle.spans.clone();
    let controller = handle.join();

    let text = registry.render_prometheus();
    let metric_families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    let phase_lines = spans
        .phase_summaries()
        .into_iter()
        .map(|(phase, stages)| (phase, format_stage_line(stages[0].count, &stages)))
        .collect();
    let st = controller.status();
    ObservabilityReport {
        completed: st.committed + st.user_aborted + st.failed,
        spans_recorded: spans.recorded(),
        phase_lines,
        metric_families,
        exposition_bytes: text.len(),
    }
}

/// E12 — chaos & resilience: throughput dip-and-recovery under a fault
/// scenario armed over the live HTTP control API mid-run, with the circuit
/// breaker shedding load while the engine is sick and re-closing after the
/// faults are disarmed.
pub struct ResilienceReport {
    /// Committed tx/s before, during, and after the fault window.
    pub baseline_tps: f64,
    pub faulted_tps: f64,
    pub recovered_tps: f64,
    /// Faults injected by the chaos layer (`bp_chaos_injected_total`).
    pub injected: u64,
    /// Requests fast-failed by the breaker (`bp_resilience_shed_total`).
    pub shed: u64,
    pub breaker_opened: bool,
    pub breaker_reclosed: bool,
    /// `/metrics` exposes nonzero chaos + resilience series.
    pub metrics_ok: bool,
}

pub fn run_resilience(seconds: f64) -> ResilienceReport {
    use bp_chaos::{BreakerConfig, FaultKind};
    use bp_core::ResilienceConfig;

    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.3, &mut Rng::new(13)).unwrap();
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(400.0), seconds)]);
    let cfg = RunConfig {
        terminals: 4,
        script,
        collect_trace: false,
        max_retries: 2,
        resilience: ResilienceConfig {
            breaker: Some(BreakerConfig {
                min_samples: 16,
                window: 32,
                cooldown_us: 300_000,
                ..BreakerConfig::default()
            }),
            ..ResilienceConfig::default()
        },
        ..Default::default()
    };
    let handle = bp_core::start(db, w, wall_clock(), cfg);

    // The control surface: /chaos armed over a live socket, /metrics from
    // the unified registry.
    let registry = Arc::new(bp_obs::MetricsRegistry::new());
    let api = Arc::new(bp_api::ApiServer::new().with_registry(registry.clone()));
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");

    let third = std::time::Duration::from_secs_f64(seconds / 3.0);
    let committed = |c: &bp_core::Controller| c.stats().status(1).committed;

    // Phase 1: healthy baseline.
    std::thread::sleep(third);
    let c1 = committed(&handle.controller);

    // Phase 2: arm the error burst mid-run over HTTP.
    let (status, _) = bp_api::http_request(
        guard.addr(),
        "POST",
        "/chaos",
        Some(&bp_util::json::Json::obj().set("scenario", "error-burst").set("seed", 7u64)),
    )
    .expect("arm chaos");
    assert_eq!(status, 200, "POST /chaos failed");
    std::thread::sleep(third);
    let c2 = committed(&handle.controller);
    let opened = handle
        .controller
        .breaker()
        .map(|b| b.transitions_to(bp_core::BreakerState::Open) > 0)
        .unwrap_or(false);

    // Phase 3: disarm and let the breaker probe its way back to Closed.
    let (status, _) = bp_api::http_request(guard.addr(), "DELETE", "/chaos", None).expect("disarm");
    assert_eq!(status, 200, "DELETE /chaos failed");
    std::thread::sleep(third);
    let c3 = committed(&handle.controller);

    let controller = handle.stop_and_join();
    let breaker = controller.breaker().cloned();
    let reclosed = breaker
        .as_ref()
        .map(|b| {
            b.state() == bp_core::BreakerState::Closed
                && b.transitions_to(bp_core::BreakerState::Closed) > 0
        })
        .unwrap_or(false);
    let injected = controller.chaos().injected_total(FaultKind::InjectedError);
    let shed = breaker.as_ref().map(|b| b.shed_total()).unwrap_or(0);

    let (_, metrics_text) =
        bp_api::http_request_text(guard.addr(), "GET", "/metrics", None).expect("metrics");
    let nonzero = |name: &str| {
        metrics_text.lines().any(|l| {
            l.starts_with(name)
                && l.split_whitespace()
                    .last()
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(|v| v > 0.0)
                    .unwrap_or(false)
        })
    };
    let metrics_ok = nonzero("bp_chaos_injected_total")
        && nonzero("bp_resilience_shed_total")
        && metrics_text.contains("bp_resilience_breaker_state");

    let per_third = seconds / 3.0;
    ResilienceReport {
        baseline_tps: c1 as f64 / per_third,
        faulted_tps: (c2 - c1) as f64 / per_third,
        recovered_tps: (c3 - c2) as f64 / per_third,
        injected,
        shed,
        breaker_opened: opened,
        breaker_reclosed: reclosed,
        metrics_ok,
    }
}

/// E14 — closed-loop SLO admission control, driven end-to-end over the
/// live HTTP control surface. Part (a): hand-find the max-throughput-
/// under-p99 operating point with a fixed-rate scan, then let the AIMD
/// loop find it on its own. Part (b): arm a chaos latency-spike +
/// error-burst plan mid-run; the breaker opens, the loop backs the
/// offered rate off hard, and both recover after disarm.
pub struct SloReport {
    /// Delivered throughput at unlimited offered rate (tx/s).
    pub capacity_tps: f64,
    /// The p99 limit handed to the controller (ms).
    pub limit_ms: f64,
    /// Hand-found max rate whose windowed p99 stays under the limit.
    pub reference_rate: f64,
    /// Mean commanded rate once the SLO loop settled.
    pub converged_rate: f64,
    /// `converged_rate / reference_rate`.
    pub converged_ratio: f64,
    /// Delivered throughput at the converged operating point.
    pub converged_tps: f64,
    /// Commanded rate before / during / after the chaos window.
    pub healthy_rate: f64,
    pub spike_rate: f64,
    pub recovered_rate: f64,
    pub breaker_opened: bool,
    pub breaker_reclosed: bool,
    /// `bp_slo_breaker_backoffs_total` at the end of the run.
    pub breaker_backoffs: u64,
    /// `/metrics` exposes live nonzero `bp_slo_*` series.
    pub metrics_ok: bool,
}

pub fn run_slo(seconds: f64) -> SloReport {
    use bp_util::json::Json;
    use std::time::Duration;

    let setup = |personality: Personality| {
        let db = Database::new(personality);
        let w = by_name("voter").unwrap();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.3, &mut Rng::new(17)).unwrap();
        (db, w)
    };
    let sleep_s = |s: f64| std::thread::sleep(Duration::from_secs_f64(s));

    // ---- part (a): convergence to the hand-found operating point ----
    // The mysql-like personality pays lock waits and IO in the cost model,
    // so with 8 terminals the p99-vs-rate curve climbs steadily and then
    // cliffs at saturation — a real knee for the loop to find, in debug
    // and release builds alike. (The zero-cost test personality's curve is
    // flat to within scheduler noise in release.)
    let (db, w) = setup(Personality::mysql_like());
    let scan_rates = [0.3, 0.45, 0.6, 0.75, 0.9, 1.05];
    let part_a_s = 9.0 + scan_rates.len() as f64 * 2.6 + seconds + 6.0;
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(500.0), part_a_s)]);
    let cfg = RunConfig { terminals: 8, script, collect_trace: false, ..Default::default() };
    let handle = bp_core::start(db, w, wall_clock(), cfg);
    let api = Arc::new(bp_api::ApiServer::new());
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");
    let post = |path: &str, body: &Json| {
        let (status, resp) =
            bp_api::http_request(guard.addr(), "POST", path, Some(body)).expect("POST");
        assert_eq!(status, 200, "POST {path} failed: {resp:?}");
        resp
    };
    let stats = handle.controller.stats().clone();

    // The run manager applies phase 0 when its thread spins up, and a new
    // phase clears API overrides — a rate change racing it gets undone.
    // Let the phase land before steering.
    sleep_s(0.3);

    // Saturate to measure capacity and the saturated p99 tail. The
    // completion-rate window lags by up to a second (it counts complete
    // seconds), so the probe must outlast the 500-tps startup second.
    post("/workloads/voter/rate", &Json::obj().set("rate", "unlimited"));
    sleep_s(3.0);
    let sat = stats.window_snapshot(2);
    let capacity = sat.throughput.max(1.0);
    // ...then idle along at a trickle for the healthy p99 baseline. Long
    // dwell: the lagging window must shed the saturated-tail samples.
    post("/workloads/voter/rate", &Json::obj().set("tps", (capacity * 0.1).max(100.0)));
    sleep_s(3.1);
    let low = stats.window_snapshot(2);
    // The SLO limit sits geometrically between the relaxed and the
    // saturated tail, so the operating point is in the scan's interior.
    let limit_us = ((low.p99_us.max(50) as f64) * (sat.p99_us.max(100) as f64)).sqrt();
    let limit_ms = limit_us / 1_000.0;

    // Fixed-rate scan: measure the p99-vs-rate curve, then hand-find the
    // operating point by interpolating the limit crossing in log-latency
    // space (the tail grows multiplicatively near the knee, and a coarse
    // grid read from below can miss the crossing by a whole step).
    let mut curve: Vec<(f64, f64)> = Vec::new();
    for frac in scan_rates {
        let rate = capacity * frac;
        post("/workloads/voter/rate", &Json::obj().set("tps", rate));
        // Long enough that the 2s window the controller will also use is
        // entirely from this rate at measurement time; tail noise is
        // one-sided (contention bursts), so take the min of two reads.
        sleep_s(2.1);
        let a = stats.window_snapshot(2).p99_us.max(1) as f64;
        sleep_s(0.5);
        let b = stats.window_snapshot(2).p99_us.max(1) as f64;
        curve.push((rate, a.min(b)));
    }
    // The operating point: the largest scanned rate still under the limit,
    // refined by interpolating toward the next point in log-latency space
    // (the tail grows multiplicatively near the knee).
    let reference_rate = match curve.iter().rposition(|&(_, p)| p <= limit_us) {
        None => curve[0].0,
        Some(i) if i + 1 == curve.len() => curve[i].0,
        Some(i) => {
            let (r0, p0) = curve[i];
            let (r1, p1) = curve[i + 1];
            let t = (limit_us.ln() - p0.ln()) / (p1.ln() - p0.ln());
            r0 + (r1 - r0) * t.clamp(0.0, 1.0)
        }
    };

    // Hand the wheel to the controller, starting well below the point.
    post(
        "/slo",
        &Json::obj()
            .set("target", "p99")
            .set("limit_ms", limit_ms)
            .set("law", "aimd")
            .set("window_s", 2u64)
            .set("tick_ms", 100u64)
            .set("initial_rate", capacity * 0.3)
            .set("step", (capacity / 50.0).max(10.0))
            .set("min_rate", 50.0)
            .set("max_rate", capacity * 2.0)
            .set("min_samples", 40u64),
    );
    sleep_s(seconds);
    // The AIMD sawtooth never sits still: average status reads across a
    // full probe-and-back-off cycle.
    let mut rate_sum = 0.0;
    const RATE_SAMPLES: usize = 8;
    for _ in 0..RATE_SAMPLES {
        let (status, body) =
            bp_api::http_request(guard.addr(), "GET", "/slo/status", None).expect("status");
        assert_eq!(status, 200);
        rate_sum += body.get("rate").and_then(Json::as_f64).unwrap_or(0.0);
        sleep_s(0.3);
    }
    let converged_rate = rate_sum / RATE_SAMPLES as f64;
    let converged_tps = stats.window_snapshot(1).throughput;
    let (status, _) = bp_api::http_request(guard.addr(), "DELETE", "/slo", None).expect("disarm");
    assert_eq!(status, 200);
    drop(guard);
    handle.stop_and_join();

    // ---- part (b): chaos latency spike -> breaker backoff -> recovery ----
    let (db, w) = setup(Personality::test());
    let chaos_s = seconds.max(4.5);
    let third = chaos_s / 3.0;
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), chaos_s + 3.0)]);
    let cfg = RunConfig {
        terminals: 4,
        script,
        collect_trace: false,
        max_retries: 2,
        resilience: bp_core::ResilienceConfig {
            breaker: Some(bp_chaos::BreakerConfig {
                min_samples: 16,
                window: 32,
                cooldown_us: 300_000,
                ..bp_chaos::BreakerConfig::default()
            }),
            ..bp_core::ResilienceConfig::default()
        },
        ..Default::default()
    };
    let handle = bp_core::start(db, w, wall_clock(), cfg);
    let registry = Arc::new(bp_obs::MetricsRegistry::new());
    let api = Arc::new(bp_api::ApiServer::new().with_registry(registry.clone()));
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");
    let req = |method: &str, path: &str, body: Option<&Json>| {
        let (status, resp) = bp_api::http_request(guard.addr(), method, path, body).expect("http");
        assert_eq!(status, 200, "{method} {path} failed: {resp:?}");
        resp
    };
    let slo_rate = || {
        req("GET", "/slo/status", None).get("rate").and_then(Json::as_f64).unwrap_or(0.0)
    };

    req(
        "POST",
        "/slo",
        Some(
            &Json::obj()
                .set("target", "p99")
                .set("limit_ms", 20.0)
                .set("initial_rate", 400.0)
                .set("step", 25.0)
                .set("tick_ms", 100u64)
                .set("window_s", 1u64)
                .set("min_rate", 20.0)
                .set("min_samples", 10u64),
        ),
    );

    // Phase 1: healthy — the loop probes upward from its initial rate.
    sleep_s(third);
    let healthy_rate = slo_rate();

    // Phase 2: latency spike plus an error burst; the errors trip the
    // breaker and the open breaker forces the hard multiplicative backoff.
    let plan = Json::obj().set("name", "slo-spike").set("seed", 7u64).set(
        "windows",
        Json::Arr(vec![
            Json::obj().set("kind", "latency_spike").set("intensity", 1.0).set("magnitude", 20_000u64),
            Json::obj().set("kind", "injected_error").set("intensity", 0.6),
        ]),
    );
    req("POST", "/chaos", Some(&Json::obj().set("plan", plan)));
    sleep_s(third);
    let spike_rate = slo_rate();
    let breaker_opened = handle
        .controller
        .breaker()
        .map(|b| b.transitions_to(bp_core::BreakerState::Open) > 0)
        .unwrap_or(false);

    // Phase 3: disarm; the breaker re-closes and the loop re-probes.
    req("DELETE", "/chaos", None);
    sleep_s(third);
    let recovered_rate = slo_rate();
    let slo_status = req("GET", "/slo/status", None);
    let breaker_backoffs = slo_status
        .get("adjustments")
        .and_then(|a| a.get("breaker_backoff"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    let (_, metrics_text) =
        bp_api::http_request_text(guard.addr(), "GET", "/metrics", None).expect("metrics");
    let nonzero = |name: &str| {
        metrics_text.lines().any(|l| {
            l.starts_with(name)
                && l.split_whitespace()
                    .last()
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(|v| v > 0.0)
                    .unwrap_or(false)
        })
    };
    let metrics_ok = metrics_text.contains("bp_slo_current_rate")
        && nonzero("bp_slo_ticks_total")
        && nonzero("bp_slo_breaker_backoffs_total");

    req("DELETE", "/slo", None);
    let controller = handle.stop_and_join();
    let breaker_reclosed = controller
        .breaker()
        .map(|b| {
            b.state() == bp_core::BreakerState::Closed
                && b.transitions_to(bp_core::BreakerState::Closed) > 0
        })
        .unwrap_or(false);

    SloReport {
        capacity_tps: capacity,
        limit_ms,
        reference_rate,
        converged_rate,
        converged_ratio: converged_rate / reference_rate.max(1.0),
        converged_tps,
        healthy_rate,
        spike_rate,
        recovered_rate,
        breaker_opened,
        breaker_reclosed,
        breaker_backoffs,
        metrics_ok,
    }
}

impl SloReport {
    pub fn render(&self) -> String {
        format!(
            "capacity ~{:.0} tx/s, p99 limit {:.2} ms, hand-found operating point {:.0} tx/s\n\
             SLO loop converged to {:.0} tx/s (x{:.2} of reference), delivering {:.0} tx/s\n\
             chaos spike: rate {:.0} -> {:.0} -> {:.0} tx/s (healthy/spike/recovered)\n\
             breaker opened: {}, re-closed: {}, SLO breaker backoffs: {}\n\
             /metrics exposes live bp_slo_* series: {}\n",
            self.capacity_tps,
            self.limit_ms,
            self.reference_rate,
            self.converged_rate,
            self.converged_ratio,
            self.converged_tps,
            self.healthy_rate,
            self.spike_rate,
            self.recovered_rate,
            self.breaker_opened,
            self.breaker_reclosed,
            self.breaker_backoffs,
            self.metrics_ok,
        )
    }
}

pub struct QueueAblationReport {
    pub gated_overshoot_seconds: usize,
    pub ungated_burst_tps: f64,
    pub target_tps: f64,
}

pub fn run_queue_ablation() -> QueueAblationReport {
    use bp_core::RequestQueue;
    use bp_util::clock::sim_clock;

    let target = 1_000.0f64;
    // Build a 2-second backlog, then measure the dispatch rate over the
    // next simulated second with and without the rate gate.
    let drain = |gated: bool| -> f64 {
        let (sim, clock) = sim_clock();
        let q = RequestQueue::new(clock);
        if gated {
            q.set_rate(target);
        }
        q.push_arrivals(0..2 * target as u64); // all overdue
        sim.advance_to(1_000_000);
        let mut dispatched = 0u64;
        // Walk simulated time in 1ms steps for one second.
        for _ in 0..1_000 {
            while q.try_pull().is_some() {
                dispatched += 1;
            }
            sim.advance(1_000);
        }
        dispatched as f64
    };
    let gated = drain(true);
    let ungated = drain(false);
    QueueAblationReport {
        gated_overshoot_seconds: if gated > target * 1.05 { 1 } else { 0 },
        ungated_burst_tps: ungated,
        target_tps: target,
    }
}

/// E13 — record → replay → divergence, over the live HTTP control surface.
pub struct ReplayReport {
    pub recorded_requests: usize,
    /// Same seed twice ⇒ byte-identical schedule sections.
    pub deterministic: bool,
    /// Composite divergence of the as-recorded replay (from /replay/status).
    pub replay_divergence: f64,
    pub divergence_ok: bool,
    /// Wall time of the original recording and of the ×4 warp replay.
    pub recorded_wall_s: f64,
    pub warp_wall_s: f64,
    pub warp_ok: bool,
    pub synth_phases: usize,
    /// Max per-type share error between the fitted mixtures and the
    /// scripted weights.
    pub synth_mixture_err: f64,
    pub metrics_ok: bool,
}

pub fn run_replay() -> ReplayReport {
    use bp_core::Workload;
    use bp_replay::{capture_artifact, fit, start_recorded, start_replay, synthesize, Artifact, ReplaySession, ReplayTiming};
    use bp_util::json::Json;
    use std::time::{Duration, Instant};

    let setup = || -> (Arc<Database>, Arc<dyn Workload>) {
        let db = Database::new(Personality::test());
        let w = by_name("smallbank").unwrap();
        let mut conn = Connection::open(&db);
        w.setup(&mut conn, 0.2, &mut Rng::new(13)).unwrap();
        (db, w)
    };

    let weights0 = vec![40.0, 12.0, 12.0, 12.0, 12.0, 12.0];
    let weights1 = vec![10.0, 18.0, 18.0, 18.0, 18.0, 18.0];
    let script = PhaseScript::new(vec![
        Phase::new(Rate::Limited(500.0), 2.0).with_weights(weights0.clone()),
        Phase::new(Rate::Limited(800.0), 2.0)
            .with_weights(weights1.clone())
            .with_arrival(ArrivalDist::Exponential),
    ]);
    let cfg = RunConfig { terminals: 4, script, seed: 42, collect_trace: true, ..Default::default() };

    // Record the run twice with the same seed: the schedule sections must
    // be byte-identical regardless of wall-clock slippage.
    let t0 = Instant::now();
    let (db, w) = setup();
    let (handle, recorder) = start_recorded(db, w.clone(), wall_clock(), cfg.clone());
    let trace = handle.trace.clone();
    let _ = handle.join();
    let recorded_wall_s = t0.elapsed().as_secs_f64();
    let artifact = capture_artifact(&cfg, w.as_ref(), "test", &recorder, trace.as_deref());

    let (db2, w2) = setup();
    let (handle2, recorder2) = start_recorded(db2, w2.clone(), wall_clock(), cfg.clone());
    let _ = handle2.join();
    let artifact2 = capture_artifact(&cfg, w2.as_ref(), "test", &recorder2, None);
    let deterministic =
        !artifact.schedule.is_empty() && artifact.schedule_text() == artifact2.schedule_text();

    // The client flow over a live socket: download the capture from
    // GET /record, POST it to /replay, poll /replay/status to completion.
    struct BenchReplayLauncher {
        db: Arc<Database>,
        w: Arc<dyn Workload>,
    }
    impl bp_api::ReplayLauncher for BenchReplayLauncher {
        fn launch(&self, a: &Artifact, t: ReplayTiming) -> Result<ReplaySession, String> {
            Ok(start_replay(self.db.clone(), self.w.clone(), wall_clock(), a, t)?.session)
        }
    }
    let (rdb, rw) = setup();
    let registry = Arc::new(bp_obs::MetricsRegistry::new());
    registry.register("recorder", recorder.clone());
    let api = Arc::new(
        bp_api::ApiServer::new()
            .with_registry(registry.clone())
            .with_replay_launcher(Arc::new(BenchReplayLauncher { db: rdb, w: rw })),
    );
    let text = artifact.to_text();
    api.set_record_provider(Arc::new(move || Some(text.clone())));
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");

    let (status, downloaded) =
        bp_api::http_request_text(guard.addr(), "GET", "/record", None).expect("GET /record");
    assert_eq!(status, 200, "GET /record failed");
    let (status, _) = bp_api::http_request(
        guard.addr(),
        "POST",
        "/replay",
        Some(&Json::obj().set("artifact", downloaded.as_str())),
    )
    .expect("POST /replay");
    assert_eq!(status, 200, "POST /replay failed");

    let mut replay_divergence = f64::NAN;
    for _ in 0..600 {
        std::thread::sleep(Duration::from_millis(50));
        let (st, body) = bp_api::http_request(guard.addr(), "GET", "/replay/status", None)
            .expect("GET /replay/status");
        assert_eq!(st, 200, "GET /replay/status failed");
        if body.get("complete").and_then(Json::as_bool) == Some(true) {
            replay_divergence = body
                .get("divergence")
                .and_then(|d| d.get("score"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            break;
        }
    }
    let divergence_ok = replay_divergence.is_finite() && replay_divergence <= 0.15;
    let (_, metrics_text) =
        bp_api::http_request_text(guard.addr(), "GET", "/metrics", None).expect("GET /metrics");
    let metrics_ok = metrics_text.contains("bp_replay_captured_total")
        && metrics_text.contains("bp_replay_fed_total")
        && metrics_text.contains("bp_replay_done")
        && metrics_text.contains("bp_replay_divergence_score");

    // ×4 time warp: the same schedule in about a quarter of the wall time.
    let (wdb, ww) = setup();
    let t1 = Instant::now();
    let run = start_replay(wdb, ww, wall_clock(), &artifact, ReplayTiming::Warp(4.0))
        .expect("warp replay");
    let _ = run.handle.join();
    let warp_wall_s = t1.elapsed().as_secs_f64();
    let warp_ok = warp_wall_s < recorded_wall_s * 0.6;

    // Statistics-driven synthesis: the fitted mixtures must match the
    // scripted weights within 2% per type.
    let stats = fit(&artifact);
    let synth = synthesize(&stats, 0.25);
    let share = |ws: &[f64]| -> Vec<f64> {
        let sum: f64 = ws.iter().sum();
        ws.iter().map(|x| x / sum).collect()
    };
    let expected = [share(&weights0), share(&weights1)];
    let synth_mixture_err = stats
        .phases
        .iter()
        .zip(expected.iter())
        .flat_map(|(p, e)| p.mixture.iter().zip(e.iter()).map(|(m, e)| (m - e).abs()))
        .fold(0.0, f64::max);

    ReplayReport {
        recorded_requests: artifact.schedule.len(),
        deterministic,
        replay_divergence,
        divergence_ok,
        recorded_wall_s,
        warp_wall_s,
        warp_ok,
        synth_phases: synth.phases.len(),
        synth_mixture_err,
        metrics_ok,
    }
}

/// E15 — the flight recorder end-to-end: a live HTTP run is pushed through
/// two chaos-induced bottlenecks (a lock storm, then an fsync stall) and
/// bp-doctor must name each one correctly, citing the journal event that
/// caused it. Also checks the `#bp-report v1` artifact round-trips.
pub struct DoctorReport {
    /// Telemetry samples and journal events in the downloaded report.
    pub samples: usize,
    pub events: usize,
    /// `GET /report` text parses and re-renders byte-identically.
    pub report_round_trip: bool,
    /// Both chaos arms show up in `GET /events`.
    pub chaos_events_journaled: bool,
    /// All findings, ranked: `(bottleneck, score, causal_kind)`.
    pub findings: Vec<(String, f64, String)>,
    /// The lock-storm window was classified as lock contention, with the
    /// doctor's evidence line; empty causal kind means no event was cited.
    pub lock_evidence: Option<String>,
    pub lock_causal_kind: String,
    /// Same for the fsync-stall window / IO saturation.
    pub io_evidence: Option<String>,
    pub io_causal_kind: String,
}

pub fn run_doctor(phase_s: f64) -> DoctorReport {
    use bp_util::json::Json;
    use std::time::Duration;

    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.3, &mut Rng::new(29)).unwrap();
    // Fine-grained telemetry so each chaos window spans several samples.
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), phase_s * 3.0 + 5.0)]);
    let cfg = RunConfig {
        terminals: 4,
        script,
        collect_trace: false,
        telemetry_interval_us: 250_000,
        ..Default::default()
    };
    let handle = bp_core::start(db, w, wall_clock(), cfg);
    let api = Arc::new(bp_api::ApiServer::new());
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");
    let sleep_s = |s: f64| std::thread::sleep(Duration::from_secs_f64(s));
    let post = |path: &str, body: &Json| {
        let (status, resp) =
            bp_api::http_request(guard.addr(), "POST", path, Some(body)).expect("POST");
        assert_eq!(status, 200, "POST {path} failed: {resp:?}");
        resp
    };
    let window = |kind: &str, intensity: f64, magnitude: u64| {
        Json::obj().set("kind", kind).set("intensity", intensity).set("magnitude", magnitude)
    };

    // Phase 1: healthy baseline — the doctor's 25th-percentile reference.
    sleep_s(phase_s);

    // Phase 2: lock storm — forced wait-die victims push deadlocks/txn far
    // past the 0.1/txn contention threshold.
    let lock_plan = Json::obj().set("name", "lock-storm").set("seed", 21u64).set(
        "windows",
        Json::Arr(vec![window("deadlock_storm", 0.5, 0)]),
    );
    post("/chaos", &Json::obj().set("plan", lock_plan));
    sleep_s(phase_s);
    let (status, _) = bp_api::http_request(guard.addr(), "DELETE", "/chaos", None).expect("disarm");
    assert_eq!(status, 200);
    sleep_s(0.5);

    // Phase 3: fsync stall — every commit pays a 20ms fsync, so fsync_us/txn
    // dwarfs the healthy baseline.
    let io_plan = Json::obj().set("name", "fsync-wall").set("seed", 22u64).set(
        "windows",
        Json::Arr(vec![window("fsync_stall", 1.0, 20_000)]),
    );
    post("/chaos", &Json::obj().set("plan", io_plan));
    sleep_s(phase_s);
    let (status, _) = bp_api::http_request(guard.addr(), "DELETE", "/chaos", None).expect("disarm");
    assert_eq!(status, 200);
    sleep_s(0.5);

    // Pull the whole flight recorder over the live socket. The lock storm
    // journals thousands of deadlock-victim events, so the window must be
    // wide enough to reach back past them to the chaos arms.
    let (status, events_body) =
        bp_api::http_request(guard.addr(), "GET", "/events?last=5000", None).expect("GET /events");
    assert_eq!(status, 200, "GET /events failed");
    let (status, report_text) =
        bp_api::http_request_text(guard.addr(), "GET", "/report", None).expect("GET /report");
    assert_eq!(status, 200, "GET /report failed");
    let (status, doctor_body) =
        bp_api::http_request(guard.addr(), "GET", "/doctor", None).expect("GET /doctor");
    assert_eq!(status, 200, "GET /doctor failed");

    drop(guard);
    handle.stop_and_join();

    let parsed = bp_obs::Report::from_text(&report_text);
    let report_round_trip =
        parsed.as_ref().map(|r| r.to_text() == report_text).unwrap_or(false);
    let (samples, events) =
        parsed.map(|r| (r.samples.len(), r.events.len())).unwrap_or((0, 0));

    let chaos_arms = events_body
        .get("events")
        .and_then(Json::as_arr)
        .map(|evs| {
            evs.iter()
                .filter(|e| e.get("kind").and_then(Json::as_str) == Some("chaos_armed"))
                .count()
        })
        .unwrap_or(0);

    let findings: Vec<(String, f64, String)> = doctor_body
        .get("findings")
        .and_then(Json::as_arr)
        .map(|fs| {
            fs.iter()
                .filter_map(|f| {
                    Some((
                        f.get("bottleneck")?.as_str()?.to_string(),
                        f.get("score").and_then(Json::as_f64).unwrap_or(0.0),
                        f.get("causal_kind")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let evidence_of = |name: &str| -> (Option<String>, String) {
        doctor_body
            .get("findings")
            .and_then(Json::as_arr)
            .and_then(|fs| {
                fs.iter().find(|f| f.get("bottleneck").and_then(Json::as_str) == Some(name))
            })
            .map(|f| {
                (
                    f.get("evidence").and_then(Json::as_str).map(str::to_string),
                    f.get("causal_kind").and_then(Json::as_str).unwrap_or("").to_string(),
                )
            })
            .unwrap_or((None, String::new()))
    };
    let (lock_evidence, lock_causal_kind) = evidence_of("lock_contention");
    let (io_evidence, io_causal_kind) = evidence_of("io_saturation");

    DoctorReport {
        samples,
        events,
        report_round_trip,
        chaos_events_journaled: chaos_arms >= 2,
        findings,
        lock_evidence,
        lock_causal_kind,
        io_evidence,
        io_causal_kind,
    }
}

/// E16 (`recovery`): crash the engine under live load, let the supervisor
/// bring it back, and verify the workload resumes at its pre-crash rate —
/// all observed through the HTTP control surface (`/recovery`, `/readyz`,
/// `/doctor`, `/metrics`, `/events`).
pub struct RecoveryExperimentReport {
    /// Committed tx/s in the healthy window before the crash.
    pub pre_tps: f64,
    /// Committed tx/s after the supervisor recovered the engine.
    pub post_tps: f64,
    /// `post_tps / pre_tps`.
    pub ratio: f64,
    /// Engine-side crash / recovery counters at the end of the run.
    pub crashes: u64,
    pub recoveries: u64,
    /// Recoveries executed by the armed supervisor (vs manual).
    pub supervisor_recoveries: u64,
    /// `GET /readyz` answered 503 while the engine was down.
    pub not_ready_during_outage: bool,
    /// `GET /readyz` answered 200 once recovered.
    pub ready_after_recovery: bool,
    /// The doctor's `crash_recovery` evidence line, if classified.
    pub doctor_evidence: Option<String>,
    /// Nonzero `bp_recovery_*` series live on `/metrics`.
    pub metrics_ok: bool,
    /// `server_crash` + `recovery_complete` both journaled.
    pub journal_ok: bool,
}

pub fn run_recovery(phase_s: f64) -> RecoveryExperimentReport {
    use bp_util::json::Json;
    use std::time::{Duration, Instant};

    let db = Database::new(Personality::test());
    let w = by_name("voter").unwrap();
    let mut conn = Connection::open(&db);
    w.setup(&mut conn, 0.3, &mut Rng::new(31)).unwrap();
    let script = PhaseScript::new(vec![Phase::new(Rate::Limited(300.0), phase_s * 3.0 + 10.0)]);
    let cfg = RunConfig {
        terminals: 4,
        script,
        collect_trace: false,
        telemetry_interval_us: 250_000,
        ..Default::default()
    };
    let handle = bp_core::start(db.clone(), w, wall_clock(), cfg);
    let reg = Arc::new(bp_obs::MetricsRegistry::new());
    let api = Arc::new(bp_api::ApiServer::new().with_registry(reg));
    api.register("voter", handle.controller.clone());
    let guard = api.serve_http("127.0.0.1:0").expect("bind http");

    let sleep_s = |s: f64| std::thread::sleep(Duration::from_secs_f64(s));
    let get = |path: &str| bp_api::http_request(guard.addr(), "GET", path, None).expect("GET");
    let post = |path: &str, body: &Json| {
        let (status, resp) =
            bp_api::http_request(guard.addr(), "POST", path, Some(body)).expect("POST");
        assert_eq!(status, 200, "POST {path} failed: {resp:?}");
        resp
    };
    let committed = || handle.controller.stats().status(1).committed;

    // Healthy window: measure the pre-crash rate.
    sleep_s(0.5);
    let c0 = committed();
    sleep_s(phase_s);
    let pre_tps = (committed() - c0) as f64 / phase_s;

    // Kill the engine mid-commit (crashpoint 1: after-append-before-fsync,
    // the torn-record case). No supervisor armed yet, so it stays down.
    let window = Json::obj().set("kind", "server_crash").set("intensity", 1.0).set("magnitude", 1u64);
    let plan = Json::obj()
        .set("name", "kill")
        .set("seed", 33u64)
        .set("windows", Json::Arr(vec![window]));
    post("/chaos", &Json::obj().set("plan", plan));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, s) = get("/recovery/status");
        if s.get("crashed").and_then(Json::as_bool) == Some(true) {
            break;
        }
        assert!(Instant::now() < deadline, "ServerCrash fault never fired: {s}");
        sleep_s(0.02);
    }
    let (status, _) = get("/readyz");
    let not_ready_during_outage = status == 503;
    let (status, _) =
        bp_api::http_request(guard.addr(), "DELETE", "/chaos", None).expect("disarm");
    assert_eq!(status, 200);

    // Arm the supervisor; it notices the dead engine within a few polls.
    post("/recovery", &Json::obj().set("poll_ms", 2u64).set("checkpoint_ms", 500u64));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, s) = get("/recovery/status");
        if s.get("crashed").and_then(Json::as_bool) == Some(false) {
            break;
        }
        assert!(Instant::now() < deadline, "supervisor never recovered the engine: {s}");
        sleep_s(0.02);
    }
    let (status, _) = get("/readyz");
    let ready_after_recovery = status == 200;

    // Post-recovery window: the workload must resume at its old rate.
    sleep_s(0.5);
    let c1 = committed();
    sleep_s(phase_s);
    let post_tps = (committed() - c1) as f64 / phase_s;

    let (_, rec_status) = get("/recovery/status");
    let (status, metrics_text) =
        bp_api::http_request_text(guard.addr(), "GET", "/metrics", None).expect("GET /metrics");
    assert_eq!(status, 200);
    let (_, doctor_body) = get("/doctor");
    let (_, events_body) = get("/events?last=5000");

    drop(guard);
    handle.stop_and_join();

    let counter = |name: &str| rec_status.get(name).and_then(Json::as_u64).unwrap_or(0);
    let doctor_evidence = doctor_body
        .get("findings")
        .and_then(Json::as_arr)
        .and_then(|fs| {
            fs.iter()
                .find(|f| f.get("bottleneck").and_then(Json::as_str) == Some("crash_recovery"))
        })
        .and_then(|f| f.get("evidence").and_then(Json::as_str))
        .map(str::to_string);
    let journaled = |kind: &str| {
        events_body
            .get("events")
            .and_then(Json::as_arr)
            .map(|evs| {
                evs.iter().any(|e| e.get("kind").and_then(Json::as_str) == Some(kind))
            })
            .unwrap_or(false)
    };

    RecoveryExperimentReport {
        pre_tps,
        post_tps,
        ratio: if pre_tps > 0.0 { post_tps / pre_tps } else { 0.0 },
        crashes: counter("crashes"),
        recoveries: counter("recoveries"),
        supervisor_recoveries: rec_status
            .get("supervisor")
            .and_then(|s| s.get("recoveries_run"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        not_ready_during_outage,
        ready_after_recovery,
        doctor_evidence,
        metrics_ok: metrics_text.contains("bp_recovery_crashes_total")
            && metrics_text.contains("bp_recovery_recoveries_total")
            && metrics_text.contains("bp_recovery_replayed_records_total"),
        journal_ok: journaled("server_crash") && journaled("recovery_complete"),
    }
}

/// E17: bp-cluster — a 3-agent fleet over real localhost sockets. The
/// coordinator splits a fleet-wide rate by capacity, one agent is killed
/// via a chaos `ServerCrash`, the missed-heartbeat detector declares it
/// dead, traffic re-splits to the survivors, and aggregate throughput
/// recovers.
pub struct ClusterReport {
    pub nodes_joined: u64,
    pub global_rate: f64,
    /// (node, assigned rate) at the initial split.
    pub split: Vec<(String, f64)>,
    /// Aggregate committed tx/s across the fleet before the kill.
    pub pre_kill_tps: f64,
    /// Kill → dead-in-membership latency, in heartbeat intervals.
    pub dead_after_intervals: f64,
    /// Sum of survivor rate shares after the death re-split.
    pub survivor_rate_sum: f64,
    /// Aggregate committed tx/s across the survivors after re-split.
    pub post_kill_tps: f64,
    /// post / pre.
    pub recovery_ratio: f64,
    /// Merged `/cluster/metrics`: dead-node gauge up, families deduped.
    pub merged_metrics_ok: bool,
    /// node_join / node_dead / rate_resplit all journaled.
    pub journal_ok: bool,
}

pub fn run_cluster() -> ClusterReport {
    use bp_cluster::{start_agent, AgentConfig, ClusterCoordinator, CoordinatorConfig};
    use bp_obs::MetricsRegistry;
    use std::time::{Duration, Instant};

    const HEARTBEAT_MS: u64 = 100;
    const GLOBAL_RATE: f64 = 3_000.0;
    let hb = Duration::from_millis(HEARTBEAT_MS);

    // Coordinator: /cluster/* over a real socket, detector running.
    let coordinator = ClusterCoordinator::new(CoordinatorConfig { heartbeat: hb });
    let coord_reg = Arc::new(MetricsRegistry::new());
    coord_reg.register("cluster", coordinator.clone());
    coordinator.set_registry(coord_reg.clone());
    let coord_api = Arc::new(bp_api::ApiServer::new().with_registry(coord_reg));
    coord_api.set_extension(coordinator.clone());
    let coord_http = coord_api.serve_http("127.0.0.1:0").expect("bind coordinator");
    let _detector = coordinator.start_detector();

    // Three agent nodes: voter on the test engine, each behind its own API
    // server, joined to the coordinator.
    struct Node {
        handle: bp_core::RunHandle,
        _http: bp_api::http::HttpServerGuard,
        _agent: bp_cluster::AgentGuard,
    }
    let nodes: Vec<(String, Node)> = ["n1", "n2", "n3"]
        .iter()
        .map(|name| {
            let db = Database::new(Personality::test());
            let w = by_name("voter").unwrap();
            let mut conn = Connection::open(&db);
            w.setup(&mut conn, 0.3, &mut Rng::new(11)).unwrap();
            let cfg = RunConfig {
                terminals: 8,
                script: PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 120.0)]),
                collect_trace: false,
                node: name.to_string(),
                ..Default::default()
            };
            let handle = bp_core::start(db, w, wall_clock(), cfg);
            let registry = Arc::new(bp_obs::MetricsRegistry::new());
            let api = Arc::new(bp_api::ApiServer::new().with_registry(registry.clone()));
            api.register(name, handle.controller.clone());
            let http = api.serve_http("127.0.0.1:0").expect("bind agent");
            let agent = start_agent(
                AgentConfig::new(name, coord_http.addr(), http.addr()).with_heartbeat(hb),
                handle.controller.clone(),
                &api,
                registry,
            );
            (name.to_string(), Node { handle, _http: http, _agent: agent })
        })
        .collect();

    let status = || {
        bp_api::http_request(coord_http.addr(), "GET", "/cluster/status", None)
            .expect("cluster status")
            .1
    };
    let wait_until = |deadline: Duration, pred: &mut dyn FnMut() -> bool| {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        pred()
    };

    // Fleet forms.
    let joined = wait_until(Duration::from_secs(10), &mut || {
        status().get("joined").and_then(bp_util::json::Json::as_u64) == Some(3)
    });
    assert!(joined, "fleet never fully joined");

    // Split the fleet-wide rate.
    let (st, body) = bp_api::http_request(
        coord_http.addr(),
        "POST",
        "/cluster/rate",
        Some(&bp_util::json::Json::obj().set("tps", GLOBAL_RATE)),
    )
    .expect("set cluster rate");
    assert_eq!(st, 200, "POST /cluster/rate failed: {body}");
    let split: Vec<(String, f64)> = body
        .get("split")
        .and_then(bp_util::json::Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|s| {
                    Some((
                        s.get("node")?.as_str()?.to_string(),
                        s.get("rate")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();

    // Pre-kill window: warm up, then measure aggregate committed tx/s.
    let committed_sum = || -> u64 {
        nodes.iter().map(|(_, n)| n.handle.controller.stats().status(1).committed).sum()
    };
    std::thread::sleep(Duration::from_millis(2_000));
    let window = Duration::from_millis(1_500);
    let c0 = committed_sum();
    std::thread::sleep(window);
    let pre_kill_tps = (committed_sum() - c0) as f64 / window.as_secs_f64();

    // Kill n2: a ServerCrash plan fanned out to just that node. The engine
    // dies on its next commit, the agent goes silent, and the detector does
    // the rest.
    let plan = bp_util::json::Json::obj().set(
        "plan",
        bp_util::json::Json::obj().set("name", "kill-n2").set("seed", 1u64).set(
            "windows",
            bp_util::json::Json::Arr(vec![bp_util::json::Json::obj()
                .set("kind", "server_crash")
                .set("intensity", 1.0)]),
        ),
    );
    let kill_at = Instant::now();
    let (st, body) =
        bp_api::http_request(coord_http.addr(), "POST", "/cluster/chaos?node=n2", Some(&plan))
            .expect("fan out chaos");
    assert_eq!(st, 200, "POST /cluster/chaos failed: {body}");

    // The membership table must declare n2 dead within ~2 heartbeat
    // intervals of its last heartbeat.
    let n2_state = |s: &bp_util::json::Json| -> String {
        s.get("nodes")
            .and_then(bp_util::json::Json::as_arr)
            .and_then(|arr| {
                arr.iter()
                    .find(|n| n.get("node").and_then(bp_util::json::Json::as_str) == Some("n2"))
            })
            .and_then(|n| n.get("state").and_then(bp_util::json::Json::as_str))
            .unwrap_or("?")
            .to_string()
    };
    let died = wait_until(Duration::from_secs(5), &mut || n2_state(&status()) == "dead");
    assert!(died, "n2 never declared dead");
    let dead_after_intervals =
        kill_at.elapsed().as_secs_f64() / Duration::from_millis(HEARTBEAT_MS).as_secs_f64();

    // Survivors absorb the dead node's share.
    let survivor_sum = |s: &bp_util::json::Json| -> f64 {
        s.get("nodes")
            .and_then(bp_util::json::Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter(|n| {
                        n.get("state").and_then(bp_util::json::Json::as_str) == Some("joined")
                    })
                    .filter_map(|n| n.get("assigned_rate").and_then(bp_util::json::Json::as_f64))
                    .sum()
            })
            .unwrap_or(0.0)
    };
    let resplit = wait_until(Duration::from_secs(5), &mut || {
        (survivor_sum(&status()) - GLOBAL_RATE).abs() < 1.0
    });
    assert!(resplit, "rate never re-split to survivors");
    let survivor_rate_sum = survivor_sum(&status());

    // Post-kill window: survivors at their larger shares. (The dead node's
    // counter is frozen, so the fleet-wide delta is survivor throughput.)
    std::thread::sleep(Duration::from_millis(2_000));
    let c2 = committed_sum();
    std::thread::sleep(window);
    let post_kill_tps = (committed_sum() - c2) as f64 / window.as_secs_f64();

    // Merged telemetry over the coordinator: dead gauge, deduped families.
    // A survivor can flicker through `suspect` when its heartbeat thread
    // loses a scheduling race on a loaded box, so re-scrape for up to two
    // heartbeat intervals rather than judging one snapshot.
    let merge_deadline = Instant::now() + Duration::from_millis(2 * HEARTBEAT_MS);
    let merged_metrics_ok = loop {
        let (_, merged) =
            bp_api::http_request_text(coord_http.addr(), "GET", "/cluster/metrics", None)
                .expect("merged metrics");
        let dead_gauge_ok = merged.contains("bp_cluster_nodes{state=\"dead\"} 1");
        let joined_gauge_ok = merged.contains("bp_cluster_nodes{state=\"joined\"} 2");
        let deduped_ok = merged
            .lines()
            .filter(|l| l.starts_with("# TYPE bp_client_committed_total"))
            .count()
            == 1;
        let ok = dead_gauge_ok && joined_gauge_ok && deduped_ok;
        if ok || Instant::now() >= merge_deadline {
            if !ok {
                let gauges: Vec<&str> =
                    merged.lines().filter(|l| l.starts_with("bp_cluster_nodes")).collect();
                eprintln!(
                    "cluster metrics merge failed: dead_gauge={dead_gauge_ok} \
                     joined_gauge={joined_gauge_ok} dedup={deduped_ok}; gauges: {gauges:?}"
                );
            }
            break ok;
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    let events = coordinator.journal().recent(usize::MAX, bp_obs::Severity::Debug);
    let has = |kind: &str| events.iter().any(|e| e.kind == kind);
    let journal_ok = has("node_join") && has("node_suspect") && has("node_dead") && has("rate_resplit");

    for (_, n) in nodes {
        n.handle.controller.stop();
        n.handle.stop_and_join();
    }

    ClusterReport {
        nodes_joined: 3,
        global_rate: GLOBAL_RATE,
        split,
        pre_kill_tps,
        dead_after_intervals,
        survivor_rate_sum,
        post_kill_tps,
        recovery_ratio: post_kill_tps / pre_kill_tps.max(1.0),
        merged_metrics_ok,
        journal_ok,
    }
}

/// E18: end-to-end distributed tracing — under a chaos latency spike on
/// one node of a two-node fleet, the tail-based sampler retains every
/// slow request while ratio-sampling the bulk under its span budget, and
/// an exemplar trace id scraped from the node's `/metrics` resolves
/// through the coordinator's `GET /cluster/trace/{id}` to a merged stage
/// breakdown naming the dominant stage. All measurements over live HTTP.
pub struct TraceReport {
    /// Ground truth: requests slower than the floor on the spiked node,
    /// from its own latency histogram (`/metrics` bucket counts).
    pub slow_requests: u64,
    /// Of those, how many the tail sampler retained
    /// (`/trace/spans?min_us=`).
    pub retained_slow: u64,
    /// retained_slow / slow_requests (capped at 1.0).
    pub retention: f64,
    /// Every retained span on the spiked node, vs the configured budget.
    pub retained_total: u64,
    pub span_budget: u64,
    /// Exemplar trace id scraped from a `/metrics` histogram bucket.
    pub exemplar: String,
    /// `GET /cluster/trace/{exemplar}` returned a merged breakdown.
    pub cluster_trace_ok: bool,
    /// The merged breakdown's dominant stage.
    pub dominant_stage: String,
    /// Every retained span's id re-derives from (run seed, seq).
    pub ids_deterministic: bool,
}

/// Requests slower than `floor_us` in a rendered `/metrics` histogram:
/// cumulative count at `+Inf` minus cumulative count at `le="floor_us"`,
/// summed across label sets. Bucket lines may carry ` # {...}` exemplar
/// suffixes; only the first value token after the labels is the count.
fn histogram_above(text: &str, metric: &str, floor_us: u64) -> u64 {
    let prefix = format!("{metric}{{");
    let floor = format!("le=\"{floor_us}\"");
    let mut inf = 0.0f64;
    let mut at_floor = 0.0f64;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else { continue };
        let Some(close) = rest.find('}') else { continue };
        let labels = &rest[..close];
        let count: f64 = rest[close + 1..]
            .split_whitespace()
            .next()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.0);
        if labels.contains("le=\"+Inf\"") {
            inf += count;
        } else if labels.contains(&floor) {
            at_floor += count;
        }
    }
    (inf - at_floor).max(0.0).round() as u64
}

/// First `# {trace_id="..."}` exemplar in a rendered `/metrics` page.
fn first_exemplar(text: &str) -> Option<String> {
    const NEEDLE: &str = "# {trace_id=\"";
    for line in text.lines() {
        if let Some(i) = line.find(NEEDLE) {
            let rest = &line[i + NEEDLE.len()..];
            if let Some(j) = rest.find('"') {
                return Some(rest[..j].to_string());
            }
        }
    }
    None
}

pub fn run_trace() -> TraceReport {
    use bp_cluster::{start_agent, AgentConfig, ClusterCoordinator, CoordinatorConfig};
    use bp_obs::{MetricsRegistry, ObsConfig, SpanMode};
    use bp_util::json::Json;
    use std::time::{Duration, Instant};

    const HEARTBEAT_MS: u64 = 100;
    /// A request slower than this is "slow" ground truth; a histogram
    /// bucket bound so the cumulative counts give an exact count. Baseline
    /// voter latencies sit orders of magnitude below it.
    const SLOW_FLOOR_US: u64 = 100_000;
    /// Each injected spike adds this much — far above both the floor and
    /// any learned p99 threshold.
    const SPIKE_MAGNITUDE_US: u64 = 500_000;
    /// Per-op injection probability: keeps spiked requests well under 1%
    /// of traffic so the live p99 (the tail sampler's slow cutoff) stays
    /// at baseline while the spikes land.
    const SPIKE_INTENSITY: f64 = 0.001;
    const SPAN_BUDGET: usize = 512;
    const SEED: u64 = 42;
    let hb = Duration::from_millis(HEARTBEAT_MS);

    let coordinator = ClusterCoordinator::new(CoordinatorConfig { heartbeat: hb });
    let coord_reg = Arc::new(MetricsRegistry::new());
    coord_reg.register("cluster", coordinator.clone());
    coordinator.set_registry(coord_reg.clone());
    let coord_api = Arc::new(bp_api::ApiServer::new().with_registry(coord_reg));
    coord_api.set_extension(coordinator.clone());
    let coord_http = coord_api.serve_http("127.0.0.1:0").expect("bind coordinator");
    let _detector = coordinator.start_detector();

    struct Node {
        handle: bp_core::RunHandle,
        http: bp_api::http::HttpServerGuard,
        _agent: bp_cluster::AgentGuard,
    }
    let nodes: Vec<(String, Node)> = ["n1", "n2"]
        .iter()
        .map(|name| {
            // A personality with real (busy-wait) delays: latency spikes
            // must turn into wall-clock latency for the tail sampler and
            // the client histogram to see them.
            let db = Database::new(Personality::mysql_like());
            let w = by_name("voter").unwrap();
            let mut conn = Connection::open(&db);
            w.setup(&mut conn, 0.3, &mut Rng::new(11)).unwrap();
            let cfg = RunConfig {
                terminals: 8,
                script: PhaseScript::new(vec![Phase::new(Rate::Limited(400.0), 120.0)]),
                collect_trace: false,
                node: name.to_string(),
                seed: SEED,
                obs: ObsConfig {
                    mode: SpanMode::Sampled,
                    sample_ratio: 0.05,
                    span_budget: SPAN_BUDGET,
                    ..ObsConfig::default()
                },
                // Tick the sensor fast so the slow threshold locks onto
                // the live p99 within the warm-up window.
                telemetry_interval_us: 250_000,
                ..Default::default()
            };
            let handle = bp_core::start(db, w, wall_clock(), cfg);
            let registry = Arc::new(bp_obs::MetricsRegistry::new());
            let api = Arc::new(bp_api::ApiServer::new().with_registry(registry.clone()));
            api.register(name, handle.controller.clone());
            let http = api.serve_http("127.0.0.1:0").expect("bind agent");
            let agent = start_agent(
                AgentConfig::new(name, coord_http.addr(), http.addr()).with_heartbeat(hb),
                handle.controller.clone(),
                &api,
                registry,
            );
            (name.to_string(), Node { handle, http, _agent: agent })
        })
        .collect();

    let wait_until = |deadline: Duration, pred: &mut dyn FnMut() -> bool| {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        pred()
    };
    let joined = wait_until(Duration::from_secs(10), &mut || {
        bp_api::http_request(coord_http.addr(), "GET", "/cluster/status", None)
            .ok()
            .and_then(|(_, s)| s.get("joined").and_then(Json::as_u64))
            == Some(2)
    });
    assert!(joined, "fleet never fully joined");

    // Warm up: traffic flows and the tail sampler learns its slow
    // threshold from the live window p99.
    std::thread::sleep(Duration::from_millis(2_500));

    // Latency spike on n1 only, armed through the coordinator.
    let plan = Json::obj().set(
        "plan",
        Json::obj().set("name", "spike-n1").set("seed", 1u64).set(
            "windows",
            Json::Arr(vec![Json::obj()
                .set("kind", "latency_spike")
                .set("intensity", SPIKE_INTENSITY)
                .set("magnitude", SPIKE_MAGNITUDE_US)]),
        ),
    );
    let (st, body) =
        bp_api::http_request(coord_http.addr(), "POST", "/cluster/chaos?node=n1", Some(&plan))
            .expect("fan out chaos");
    assert_eq!(st, 200, "POST /cluster/chaos failed: {body}");
    std::thread::sleep(Duration::from_millis(5_000));

    // Freeze the fleet, let in-flight requests drain, then measure
    // everything over the live HTTP surfaces.
    for (_, n) in &nodes {
        n.handle.controller.pause();
    }
    std::thread::sleep(Duration::from_millis(400));

    let n1 = &nodes[0].1;
    if std::env::var("BP_TRACE_DEBUG").is_ok() {
        let rec = n1.handle.controller.spans().unwrap();
        eprintln!(
            "dbg: threshold={:?}us retained slow={} err={} shed={} crash={} ratio={} evicted={}",
            rec.slow_threshold_us(),
            rec.tail_retained(bp_obs::RetainReason::Slow),
            rec.tail_retained(bp_obs::RetainReason::Error),
            rec.tail_retained(bp_obs::RetainReason::Shed),
            rec.tail_retained(bp_obs::RetainReason::Crash),
            rec.tail_retained(bp_obs::RetainReason::Ratio),
            rec.tail_evicted(),
        );
    }
    let (_, metrics_text) =
        bp_api::http_request_text(n1.http.addr(), "GET", "/metrics", None).expect("n1 metrics");
    let slow_requests =
        histogram_above(&metrics_text, "bp_client_latency_us_bucket", SLOW_FLOOR_US);
    let spans_text = |path: &str| -> String {
        bp_api::http_request_text(n1.http.addr(), "GET", path, None).expect("n1 spans").1
    };
    let retained_slow = spans_text(&format!("/trace/spans?last=1000000&min_us={SLOW_FLOOR_US}"))
        .lines()
        .count() as u64;
    let all_spans = spans_text("/trace/spans?last=1000000");
    let retained_total = all_spans.lines().count() as u64;
    let ids_deterministic = all_spans.lines().all(|line| {
        let Ok(j) = Json::parse(line) else { return false };
        match (j.get("trace_id").and_then(Json::as_str), j.get("seq").and_then(Json::as_u64)) {
            (Some(hex), Some(seq)) => {
                bp_obs::parse_trace_id(hex) == Some(bp_obs::trace_id(SEED, seq))
            }
            _ => false,
        }
    });

    // The observability loop closes: an exemplar scraped off a histogram
    // bucket resolves through the coordinator to a merged breakdown.
    let exemplar = first_exemplar(&metrics_text).unwrap_or_default();
    let (st, body) = bp_api::http_request(
        coord_http.addr(),
        "GET",
        &format!("/cluster/trace/{exemplar}"),
        None,
    )
    .expect("cluster trace");
    let dominant_stage = body
        .get("merged")
        .and_then(|m| m.get("dominant_stage"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let cluster_trace_ok = st == 200 && !dominant_stage.is_empty();

    for (_, n) in nodes {
        n.handle.controller.stop();
        n.handle.stop_and_join();
    }

    TraceReport {
        slow_requests,
        retained_slow,
        retention: if slow_requests == 0 {
            1.0
        } else {
            (retained_slow as f64 / slow_requests as f64).min(1.0)
        },
        retained_total,
        span_budget: SPAN_BUDGET as u64,
        exemplar,
        cluster_trace_ok,
        dominant_stage,
        ids_deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Experiments that drive a live (wall-clock) load generator measure
    /// latency curves that a concurrently running neighbor distorts: run
    /// them one at a time. Simulated-clock experiments stay parallel.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn table1_runs_all_benchmarks() {
        let _serial = serial();
        let report = run_table1(0.05);
        assert_eq!(report.rows.len(), 15);
        assert!(report.rows.iter().all(|r| r.sampled_txns_ok), "some benchmark failed");
        assert!(report.rows.iter().all(|r| r.loaded_rows > 0));
        let text = report.render();
        assert!(text.contains("tpcc"));
        assert!(text.contains("Feature Testing"));
    }

    #[test]
    fn observability_report_covers_phases() {
        let _serial = serial();
        let r = run_observability(1.0);
        assert!(r.completed > 0);
        assert_eq!(r.spans_recorded, r.completed, "full mode records every request");
        assert!(!r.phase_lines.is_empty());
        for (_, line) in &r.phase_lines {
            assert!(line.contains("queue p50/p95/p99="), "{line}");
            assert!(line.contains("commit p50/p95/p99="), "{line}");
        }
        assert!(r.metric_families >= 10, "only {} families", r.metric_families);
        assert!(r.exposition_bytes > 0);
    }

    #[test]
    fn dialect_report_full_coverage() {
        for r in run_dialects() {
            assert_eq!(r.dialects_ok, r.total_renderings, "{} has failing dialects", r.benchmark);
            assert!(r.statements > 0);
        }
    }

    #[test]
    fn shape_simulation_tracks_under_capacity() {
        let (target, delivered) = simulate_shape("oracle", "steps", 50.0);
        assert_eq!(target.len(), delivered.len());
        // The first (lowest) step should be tracked closely at steady state.
        let fifth = target.len() / 5;
        let tail = &delivered[fifth - 10..fifth];
        let want = target[fifth - 5];
        let got = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!((got - want).abs() < want * 0.1, "want {want} got {got}");
    }

    #[test]
    fn physics_report_all_green() {
        let r = run_physics();
        assert!(r.deterministic);
        assert!(r.gravity_linear);
        assert!(r.crash_resets_db);
    }

    #[test]
    fn challenges_distinguish_personalities() {
        let rows = run_challenges(1_000.0);
        assert_eq!(rows.len(), 16); // 4 models × 4 shapes
        let passes = |dbms: &str| rows.iter().filter(|r| r.dbms == dbms && r.outcome == "pass").count();
        // The stable models must pass at least as many courses as derby.
        assert!(passes("oracle") >= passes("derby"));
        let derby_tunnel = rows
            .iter()
            .find(|r| r.dbms == "derby" && r.course == "tunnel")
            .unwrap();
        assert_eq!(derby_tunnel.outcome, "crash", "derby must fail the tunnel");
    }

    #[test]
    fn resilience_dips_and_recovers() {
        let _serial = serial();
        let r = run_resilience(4.5);
        assert!(r.injected > 0, "chaos must inject faults");
        assert!(r.breaker_opened, "breaker must open under the error burst");
        assert!(r.shed > 0, "an open breaker must shed load");
        assert!(r.breaker_reclosed, "breaker must re-close after disarm");
        assert!(r.metrics_ok, "chaos + resilience series must be exposed");
        assert!(
            r.faulted_tps < r.baseline_tps * 0.8,
            "no dip: baseline {:.0} faulted {:.0}",
            r.baseline_tps,
            r.faulted_tps
        );
        assert!(
            r.recovered_tps > r.faulted_tps * 1.5,
            "no recovery: faulted {:.0} recovered {:.0}",
            r.faulted_tps,
            r.recovered_tps
        );
    }

    #[test]
    fn slo_converges_and_recovers() {
        let _serial = serial();
        let r = run_slo(3.0);
        assert!(r.capacity_tps > 100.0, "capacity probe failed: {:.0}", r.capacity_tps);
        assert!(r.reference_rate > 0.0);
        assert!(
            (0.6..=1.45).contains(&r.converged_ratio),
            "did not converge near the operating point: reference {:.0} converged {:.0}",
            r.reference_rate,
            r.converged_rate
        );
        assert!(r.breaker_opened, "breaker must open under the spike");
        assert!(r.breaker_backoffs > 0, "open breaker must force backoff ticks");
        assert!(
            r.spike_rate < r.healthy_rate * 0.6,
            "no backoff: healthy {:.0} spike {:.0}",
            r.healthy_rate,
            r.spike_rate
        );
        assert!(
            r.recovered_rate > r.spike_rate * 1.4,
            "no recovery: spike {:.0} recovered {:.0}",
            r.spike_rate,
            r.recovered_rate
        );
        assert!(r.breaker_reclosed, "breaker must re-close after disarm");
        assert!(r.metrics_ok, "bp_slo_* series must be live on /metrics");
    }

    #[test]
    fn doctor_names_both_bottlenecks() {
        let _serial = serial();
        let r = run_doctor(2.0);
        assert!(r.samples > 10, "telemetry must cover the run: {} samples", r.samples);
        assert!(r.report_round_trip, "#bp-report v1 must round-trip byte-identically");
        assert!(r.chaos_events_journaled, "both chaos arms must be journaled");
        assert!(
            r.lock_evidence.is_some(),
            "lock storm must be classified as lock_contention: {:?}",
            r.findings
        );
        assert!(
            r.io_evidence.is_some(),
            "fsync stall must be classified as io_saturation: {:?}",
            r.findings
        );
        // Each finding must cite the chaos plan that induced it (the io
        // peak can land just after disarm, so either edge of the window
        // counts as the cause).
        assert!(r.lock_causal_kind.starts_with("chaos_"), "{:?}", r.findings);
        assert!(r.io_causal_kind.starts_with("chaos_"), "{:?}", r.findings);
    }

    #[test]
    fn recovery_restores_throughput() {
        let _serial = serial();
        let r = run_recovery(1.5);
        assert!(r.pre_tps > 0.0, "healthy window must commit work");
        assert!(r.crashes >= 1, "ServerCrash fault must fire");
        assert!(r.recoveries >= 1 && r.supervisor_recoveries >= 1, "supervisor must recover");
        assert!(r.not_ready_during_outage, "/readyz must 503 while down");
        assert!(r.ready_after_recovery, "/readyz must 200 after recovery");
        assert!(
            r.ratio >= 0.9,
            "post-crash throughput within 10% of pre-crash: {:.0} vs {:.0} tx/s",
            r.post_tps,
            r.pre_tps
        );
        assert!(r.doctor_evidence.is_some(), "doctor must report crash_recovery");
        assert!(r.metrics_ok, "bp_recovery_* series must be live on /metrics");
        assert!(r.journal_ok, "crash + recovery must be journaled");
    }

    #[test]
    fn cluster_fleet_survives_node_kill() {
        let _serial = serial();
        let r = run_cluster();
        assert_eq!(r.nodes_joined, 3);
        let split_sum: f64 = r.split.iter().map(|(_, x)| x).sum();
        assert!((split_sum - r.global_rate).abs() < 1e-6, "split sums to {split_sum}");
        assert!(r.pre_kill_tps > 0.0, "fleet must commit work before the kill");
        assert!(
            r.dead_after_intervals <= 2.6,
            "death detection took {:.2} heartbeat intervals",
            r.dead_after_intervals
        );
        assert!(
            (r.survivor_rate_sum - r.global_rate).abs() < 1.0,
            "survivors must carry the full global rate, got {:.1}",
            r.survivor_rate_sum
        );
        assert!(
            r.recovery_ratio >= 0.9,
            "post-kill throughput within 10% of pre-kill: {:.0} vs {:.0} tx/s",
            r.post_kill_tps,
            r.pre_kill_tps
        );
        assert!(r.merged_metrics_ok, "merged /cluster/metrics must reflect the fleet");
        assert!(r.journal_ok, "membership transitions must be journaled");
    }

    #[test]
    fn trace_tail_sampling_and_cluster_resolution() {
        let _serial = serial();
        let r = run_trace();
        assert!(r.slow_requests > 0, "the latency spike must actually slow some requests");
        assert!(
            r.retention >= 0.99,
            "tail sampler must retain >=99% of slow requests: kept {} of {}",
            r.retained_slow,
            r.slow_requests
        );
        assert!(
            r.retained_total <= 2 * r.span_budget,
            "retained spans ({}) must stay within 2x the {} budget",
            r.retained_total,
            r.span_budget
        );
        assert!(!r.exemplar.is_empty(), "/metrics must carry a trace_id exemplar");
        assert!(
            r.cluster_trace_ok,
            "exemplar {} must resolve via /cluster/trace to a merged breakdown",
            r.exemplar
        );
        assert!(r.ids_deterministic, "trace ids must re-derive from (seed, seq)");
    }

    #[test]
    fn queue_ablation_shows_gate_effect() {
        let _serial = serial();
        let r = run_queue_ablation();
        assert_eq!(r.gated_overshoot_seconds, 0, "gated queue must never exceed target");
        assert!(
            r.ungated_burst_tps > r.target_tps * 1.5,
            "ungated drain should burst: {} vs {}",
            r.ungated_burst_tps,
            r.target_tps
        );
    }
}
