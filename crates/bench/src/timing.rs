//! Minimal timing harness for the `benches/*.rs` targets.
//!
//! The workspace builds hermetically (no registry), so the benches are
//! plain `fn main()` binaries (`harness = false`) built on this module
//! instead of criterion. Each benchmark is warmed up, then run in batches
//! until a wall-clock budget is spent; we report iterations/second and
//! ns/iteration from the fastest batch (least scheduler noise), plus the
//! mean across batches.

use std::time::{Duration, Instant};

/// One benchmark's result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u64,
    /// Nanoseconds per iteration, fastest batch.
    pub best_ns: f64,
    /// Nanoseconds per iteration, mean over batches.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Iterations per second implied by the fastest batch.
    pub fn per_sec(&self) -> f64 {
        if self.best_ns <= 0.0 {
            0.0
        } else {
            1e9 / self.best_ns
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects and prints benchmark results.
pub struct Bencher {
    /// Wall-clock measurement budget per benchmark.
    pub budget: Duration,
    /// Warm-up budget per benchmark.
    pub warmup: Duration,
    results: Vec<BenchResult>,
}

impl Bencher {
    pub fn new() -> Bencher {
        Bencher {
            budget: Duration::from_millis(800),
            warmup: Duration::from_millis(150),
            results: Vec::new(),
        }
    }

    /// Time `f`, which performs ONE iteration of the workload per call.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        // Warm-up: also sizes the batch so each batch is ~10ms of work.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10e6 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut total_iters = 0u64;
        let mut best_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        let run_start = Instant::now();
        while run_start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            let ns = elapsed / batch as f64;
            best_ns = best_ns.min(ns);
            total_ns += elapsed;
            total_iters += batch;
        }
        let result = BenchResult {
            name: name.to_string(),
            iters: total_iters,
            best_ns,
            mean_ns: total_ns / total_iters.max(1) as f64,
        };
        println!(
            "{:<44} {:>12}/iter (best) {:>12}/iter (mean) {:>14.0} iters/s",
            result.name,
            fmt_ns(result.best_ns),
            fmt_ns(result.mean_ns),
            result.per_sec(),
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Default for Bencher {
    fn default() -> Bencher {
        Bencher::new()
    }
}

/// Print the standard group header the bench binaries use.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut b = Bencher::new();
        b.budget = Duration::from_millis(20);
        b.warmup = Duration::from_millis(5);
        let r = b.bench("noop_add", || std::hint::black_box(1u64) + 1);
        assert!(r.iters > 0);
        assert!(r.best_ns >= 0.0 && r.best_ns <= r.mean_ns * 1.0001);
        assert_eq!(b.results().len(), 1);
    }
}
