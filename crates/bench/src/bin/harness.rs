//! The experiment harness CLI: regenerates every table/figure artifact.
//!
//! Usage: `harness [table1|rate|mixture|tenancy|challenges|physics|dbms|api|dialects|obs|resilience|replay|slo|doctor|recovery|cluster|trace|queue|all]`

use bp_bench::*;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";
    let mut ran = false;

    if run_all || arg == "table1" {
        ran = true;
        println!("=== E1: Table 1 — bundled benchmarks ===");
        println!("{}", run_table1(0.2).render());
    }
    if run_all || arg == "rate" {
        ran = true;
        println!("=== E3: rate control (§2.2.1) — target 300 tps, 4s per arrival dist ===");
        println!(
            "{:<14}{:>10}{:>14}{:>10}{:>12}",
            "arrival", "target", "delivered", "MAE", "overshoot-s"
        );
        for r in run_rate_control(300.0, 4.0) {
            println!(
                "{:<14}{:>10.0}{:>14.1}{:>10.2}{:>12}",
                r.arrival, r.target_tps, r.delivered_mean, r.mean_abs_error, r.overshoot_seconds
            );
        }
        println!();
    }
    if run_all || arg == "mixture" {
        ran = true;
        println!("=== E4: mixture control (§2.2.2) — smallbank, open loop, 3s each ===");
        println!("{:<14}{:>14}{:>12}{:>11}", "mixture", "tput (tx/s)", "lock waits", "deadlocks");
        for r in run_mixture(3.0) {
            println!(
                "{:<14}{:>14.0}{:>12}{:>11}",
                r.preset, r.throughput, r.lock_waits, r.deadlocks
            );
        }
        println!();
    }
    if run_all || arg == "tenancy" {
        ran = true;
        println!("=== E5: multi-tenancy (§2.2.3) — ycsb alone vs with smallbank neighbor ===");
        let r = run_tenancy(3.0);
        println!("solo:      {:>10.0} tx/s", r.solo_tps);
        println!("contended: {:>10.0} tx/s (neighbor {:.0} tx/s)", r.contended_tps, r.neighbor_tps);
        println!(
            "interference: {:.0}% slowdown\n",
            (1.0 - r.contended_tps / r.solo_tps.max(1.0)) * 100.0
        );
    }
    if run_all || arg == "challenges" {
        ran = true;
        println!("=== E6: challenge shapes (§4.1.2) × DBMS stages, autopilot on simulation ===");
        println!("{:<10}{:<12}{:<9}{:>11}{:>9}", "dbms", "course", "outcome", "survived-s", "score");
        for r in run_challenges(1_000.0) {
            println!(
                "{:<10}{:<12}{:<9}{:>11.1}{:>9}",
                r.dbms, r.course, r.outcome, r.survived_s, r.score
            );
        }
        println!();
    }
    if run_all || arg == "physics" {
        ran = true;
        println!("=== E7: game physics (§4.1) ===");
        let r = run_physics();
        println!("deterministic trajectories: {}", r.deterministic);
        println!("gravity linear to zero:     {}", r.gravity_linear);
        println!("crash halts + resets DB:    {}\n", r.crash_resets_db);
    }
    if run_all || arg == "dbms" {
        ran = true;
        println!("=== E8: DBMS personalities (Fig. 2b) — voter, open loop, 3s on embedded engine ===");
        println!(
            "{:<12}{:>14}{:>14}{:>9}{:>12}",
            "personality", "tput (tx/s)", "p95 (µs)", "failed", "jitter CV"
        );
        for r in run_personalities(3.0) {
            println!(
                "{:<12}{:>14.0}{:>14}{:>9}{:>12.3}",
                r.personality, r.throughput, r.p95_latency_us, r.failed, r.jitter_cv
            );
        }
        println!();
    }
    if run_all || arg == "api" {
        ran = true;
        println!("=== E9: control API (§2.2.4) — throttle 200 → 600 tps mid-run ===");
        let r = run_api(200.0, 600.0);
        println!("instantaneous feedback available: {}", r.feedback_ok);
        println!(
            "rate-change effect latency: {:.1}s ({} → {} tps)\n",
            r.effect_latency_s, r.old_rate, r.new_rate
        );
    }
    if run_all || arg == "dialects" {
        ran = true;
        println!("=== E10: SQL-dialect management (§2.1) ===");
        println!("{:<18}{:>12}{:>16}", "benchmark", "statements", "renderings OK");
        for r in run_dialects() {
            println!(
                "{:<18}{:>12}{:>13}/{}",
                r.benchmark, r.statements, r.dialects_ok, r.total_renderings
            );
        }
        println!();
    }
    if run_all || arg == "obs" {
        ran = true;
        println!("=== E11: observability — span flight recorder + unified metrics registry ===");
        let r = run_observability(2.0);
        println!("completed: {}  spans recorded: {}", r.completed, r.spans_recorded);
        for (phase, line) in &r.phase_lines {
            println!("phase {phase}: {line}");
        }
        println!(
            "/metrics exposition: {} families, {} bytes\n",
            r.metric_families, r.exposition_bytes
        );
    }
    if run_all || arg == "resilience" {
        ran = true;
        println!("=== E12: chaos & resilience — error burst armed over HTTP mid-run ===");
        let r = run_resilience(6.0);
        println!(
            "committed tx/s: baseline {:.0} → faulted {:.0} → recovered {:.0}",
            r.baseline_tps, r.faulted_tps, r.recovered_tps
        );
        println!("faults injected: {}   requests shed: {}", r.injected, r.shed);
        println!(
            "breaker opened: {}   re-closed after disarm: {}   /metrics ok: {}\n",
            r.breaker_opened, r.breaker_reclosed, r.metrics_ok
        );
    }
    if run_all || arg == "replay" {
        ran = true;
        println!("=== E13: record → replay → divergence (bp-replay over HTTP) ===");
        let r = run_replay();
        println!(
            "recorded {} requests in {:.1}s; same-seed schedule byte-identical: {}",
            r.recorded_requests, r.recorded_wall_s, r.deterministic
        );
        println!(
            "as-recorded replay divergence: {:.4} (within 0.15: {})",
            r.replay_divergence, r.divergence_ok
        );
        println!(
            "warp x4 wall time: {:.1}s vs {:.1}s recorded (ok: {})",
            r.warp_wall_s, r.recorded_wall_s, r.warp_ok
        );
        println!(
            "synthesized {} phases, max mixture error {:.4}   bp_replay_* metrics: {}\n",
            r.synth_phases, r.synth_mixture_err, r.metrics_ok
        );
        assert!(r.deterministic, "same-seed record must be byte-identical");
        assert!(r.divergence_ok, "replay divergence too high: {}", r.replay_divergence);
        assert!(r.warp_ok, "warp x4 must compress wall time");
        assert!(r.synth_mixture_err < 0.02, "synthesis mixture error >= 2%");
        assert!(r.metrics_ok, "bp_replay_* series must be exposed");
    }
    if run_all || arg == "slo" {
        ran = true;
        println!("=== E14: closed-loop SLO admission control — convergence + chaos backoff over HTTP ===");
        let r = run_slo(4.0);
        print!("{}", r.render());
        println!();
        assert!(
            (0.6..=1.45).contains(&r.converged_ratio),
            "SLO loop did not converge near the hand-found point (x{:.2})",
            r.converged_ratio
        );
        assert!(r.breaker_opened, "breaker must open under the chaos spike");
        assert!(r.breaker_backoffs > 0, "open breaker must force SLO backoff");
        assert!(r.spike_rate < r.healthy_rate * 0.6, "SLO loop must back off under chaos");
        assert!(r.recovered_rate > r.spike_rate * 1.4, "SLO loop must re-probe after recovery");
        assert!(r.breaker_reclosed, "breaker must re-close after disarm");
        assert!(r.metrics_ok, "bp_slo_* series must be live on /metrics");
    }
    if run_all || arg == "doctor" {
        ran = true;
        println!("=== E15: flight recorder — chaos-induced bottlenecks named by bp-doctor ===");
        let r = run_doctor(2.0);
        println!(
            "report: {} samples, {} events, round-trip ok: {}   chaos arms journaled: {}",
            r.samples, r.events, r.report_round_trip, r.chaos_events_journaled
        );
        for (bottleneck, score, causal) in &r.findings {
            println!("finding: {bottleneck:<18} score {score:>6.1}   caused by: {causal}");
        }
        println!(
            "lock storm  -> {}",
            r.lock_evidence.as_deref().unwrap_or("NOT CLASSIFIED")
        );
        println!(
            "fsync stall -> {}\n",
            r.io_evidence.as_deref().unwrap_or("NOT CLASSIFIED")
        );
        assert!(r.report_round_trip, "#bp-report v1 must round-trip");
        assert!(r.chaos_events_journaled, "chaos arms must be journaled");
        assert!(r.lock_evidence.is_some(), "lock storm not classified as lock_contention");
        assert!(r.io_evidence.is_some(), "fsync stall not classified as io_saturation");
        assert!(r.lock_causal_kind.starts_with("chaos_"), "lock finding must cite a chaos event");
        assert!(r.io_causal_kind.starts_with("chaos_"), "io finding must cite a chaos event");
    }
    if run_all || arg == "recovery" {
        ran = true;
        println!("=== E16: crash recovery — redo-log replay under live load, supervised restart ===");
        let r = run_recovery(1.5);
        println!(
            "throughput: {:.0} tx/s before crash, {:.0} tx/s after recovery (x{:.2})",
            r.pre_tps, r.post_tps, r.ratio
        );
        println!(
            "crashes: {}   recoveries: {} ({} by supervisor)   readyz 503 during outage: {}   200 after: {}",
            r.crashes, r.recoveries, r.supervisor_recoveries,
            r.not_ready_during_outage, r.ready_after_recovery
        );
        println!(
            "doctor: {}",
            r.doctor_evidence.as_deref().unwrap_or("NOT CLASSIFIED")
        );
        println!("bp_recovery_* on /metrics: {}   crash+recovery journaled: {}\n", r.metrics_ok, r.journal_ok);
        assert!(r.crashes >= 1, "ServerCrash fault must fire");
        assert!(r.supervisor_recoveries >= 1, "supervisor must run the recovery");
        assert!(r.not_ready_during_outage && r.ready_after_recovery, "/readyz must track the outage");
        assert!(r.ratio >= 0.9, "post-crash throughput must be within 10% of pre-crash");
        assert!(r.doctor_evidence.is_some(), "doctor must name crash_recovery");
        assert!(r.metrics_ok, "bp_recovery_* series must be exposed");
        assert!(r.journal_ok, "crash + recovery events must be journaled");
    }
    if run_all || arg == "cluster" {
        ran = true;
        println!("=== E17: bp-cluster — 3-agent fleet, node kill, re-split, merged telemetry ===");
        let r = run_cluster();
        let split = r
            .split
            .iter()
            .map(|(n, x)| format!("{n}={x:.0}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("joined: {} nodes   global rate {:.0} tx/s split {split}", r.nodes_joined, r.global_rate);
        println!(
            "kill n2 -> dead in {:.2} heartbeat intervals; survivors re-split to {:.0} tx/s",
            r.dead_after_intervals, r.survivor_rate_sum
        );
        println!(
            "aggregate throughput: {:.0} tx/s pre-kill -> {:.0} tx/s post-kill (x{:.2})",
            r.pre_kill_tps, r.post_kill_tps, r.recovery_ratio
        );
        println!(
            "merged /cluster/metrics ok: {}   membership journaled: {}\n",
            r.merged_metrics_ok, r.journal_ok
        );
        assert!(r.dead_after_intervals <= 2.6, "death detection too slow");
        assert!(
            (r.survivor_rate_sum - r.global_rate).abs() < 1.0,
            "survivors must carry the full global rate"
        );
        assert!(
            r.recovery_ratio >= 0.9,
            "post-kill throughput must recover within 10% of pre-kill"
        );
        assert!(r.merged_metrics_ok, "merged metrics must reflect the fleet");
        assert!(r.journal_ok, "membership transitions must be journaled");
    }
    if run_all || arg == "trace" {
        ran = true;
        println!("=== E18: distributed tracing — tail sampling under a latency spike, exemplar -> /cluster/trace ===");
        let r = run_trace();
        println!(
            "slow requests (>100ms) on spiked node: {}   retained by tail sampler: {} ({:.1}%)",
            r.slow_requests,
            r.retained_slow,
            r.retention * 100.0
        );
        println!(
            "retained spans total: {} (budget {}, cap 2x)   trace ids deterministic: {}",
            r.retained_total, r.span_budget, r.ids_deterministic
        );
        println!(
            "exemplar {} -> /cluster/trace: ok={} dominant stage {}\n",
            r.exemplar, r.cluster_trace_ok, r.dominant_stage
        );
        assert!(r.retention >= 0.99, "tail sampler must retain >=99% of slow requests");
        assert!(r.retained_total <= 2 * r.span_budget, "span budget overrun");
        assert!(r.cluster_trace_ok, "exemplar must resolve to a merged cluster trace");
        assert!(r.ids_deterministic, "trace ids must re-derive from (seed, seq)");
    }
    if run_all || arg == "queue" {
        ran = true;
        println!("=== Ablation: centralized queue dispatch gate (never-exceed, §2.2.1) ===");
        let r = run_queue_ablation();
        println!("target: {} tx/s with a 2s backlog", r.target_tps);
        println!("gated drain overshoot seconds:  {}", r.gated_overshoot_seconds);
        println!("ungated drain burst: {:.0} tx/s\n", r.ungated_burst_tps);
    }

    if !ran {
        eprintln!(
            "unknown experiment '{arg}'. one of: table1 rate mixture tenancy challenges physics dbms api dialects obs resilience replay slo doctor recovery cluster trace queue all"
        );
        std::process::exit(2);
    }
}
