//! `bp-bench`: the experiment harness.
//!
//! One runner per paper artifact (see DESIGN.md §4 and EXPERIMENTS.md):
//! Table 1, the §2.2 feature experiments (rate control, mixture control,
//! multi-tenancy, control API), the §4 game experiments (challenge shapes,
//! physics, per-DBMS comparison) and the dialect-management check. Each
//! runner returns a struct and can print the table the paper's artifact
//! corresponds to; the `harness` binary drives them from the command line.

pub mod experiments;
pub mod timing;

pub use experiments::*;
pub use timing::{group, BenchResult, Bencher};
