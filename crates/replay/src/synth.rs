//! Statistics-driven workload synthesis: fit a captured schedule, emit a
//! new `PhaseScript` that statistically matches it.
//!
//! The fit walks the recorded schedule phase by phase and extracts, per
//! phase: request rate, per-type mixture proportions, and the inter-arrival
//! process (classified Uniform vs Exponential from the coefficient of
//! variation of the arrival gaps — uniform generation spaces arrivals
//! evenly, so its gap CV is ~0, while a Poisson process has CV ~1). Tenant
//! shares are fitted across the whole schedule. `synthesize` then re-emits
//! the fitted phases with durations scaled by a compression factor, so a
//! 10-minute production-shaped recording becomes a 30-second script with
//! the same rates, mixtures and arrival processes.

use bp_core::{ArrivalDist, Phase, PhaseScript, Rate};
use bp_util::clock::MICROS_PER_SEC;

use crate::artifact::Artifact;
use crate::recorder::ScheduleRecord;

/// Gap-CV threshold separating evenly spaced from Poisson arrivals.
const CV_EXPONENTIAL_THRESHOLD: f64 = 0.4;

/// Fitted statistics for one recorded phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    pub phase: u16,
    pub requests: u64,
    /// Observed phase duration (whole seconds of schedule it spans).
    pub duration_s: f64,
    /// Observed request rate (requests / duration).
    pub rate_tps: f64,
    /// Per-type share of this phase's requests (sums to 1).
    pub mixture: Vec<f64>,
    /// Classified inter-arrival process.
    pub arrival: ArrivalDist,
    /// Coefficient of variation of the arrival gaps (diagnostic).
    pub interarrival_cv: f64,
}

/// Fitted statistics for a whole captured schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    pub phases: Vec<PhaseStats>,
    pub total_requests: u64,
    pub duration_s: f64,
    /// `(tenant, share)` across the schedule, descending share.
    pub tenant_shares: Vec<(u16, f64)>,
}

/// Fit summary statistics from a captured artifact's schedule.
pub fn fit(artifact: &Artifact) -> TraceStats {
    fit_schedule(&artifact.schedule, artifact.types.len())
}

/// Fit from raw schedule records (exposed for tests and tooling).
pub fn fit_schedule(schedule: &[ScheduleRecord], num_types: usize) -> TraceStats {
    let mut phases: Vec<PhaseStats> = Vec::new();
    let mut tenant_counts: Vec<(u16, u64)> = Vec::new();

    for rec in schedule {
        match tenant_counts.iter_mut().find(|(t, _)| *t == rec.tenant) {
            Some((_, c)) => *c += 1,
            None => tenant_counts.push((rec.tenant, 1)),
        }
    }

    // Phases are contiguous in a schedule; group on phase-id change so a
    // repeated phase id after an intervening phase fits as its own segment.
    let mut segments: Vec<(u16, Vec<&ScheduleRecord>)> = Vec::new();
    for rec in schedule {
        match segments.last_mut() {
            Some((p, seg)) if *p == rec.phase => seg.push(rec),
            _ => segments.push((rec.phase, vec![rec])),
        }
    }

    for (i, (phase, seg)) in segments.iter().enumerate() {
        let first = seg.first().expect("segment non-empty").offset_us;
        let last = seg.last().expect("segment non-empty").offset_us;
        // Phase boundary = next segment's start; the last phase runs to the
        // end of its final whole second.
        let end = match segments.get(i + 1) {
            Some((_, next)) => next.first().expect("segment non-empty").offset_us,
            None => (last + 1).div_ceil(MICROS_PER_SEC) * MICROS_PER_SEC,
        };
        // Snap to whole seconds: generation emits fixed one-second windows.
        let duration_s = (((end - first) as f64 / 1e6).round()).max(1.0);

        let mut type_counts = vec![0u64; num_types];
        for r in seg {
            if let Some(c) = type_counts.get_mut(r.txn_type as usize) {
                *c += 1;
            }
        }
        let n = seg.len() as u64;
        let mixture: Vec<f64> = type_counts.iter().map(|c| *c as f64 / n as f64).collect();

        let cv = gap_cv(seg);
        phases.push(PhaseStats {
            phase: *phase,
            requests: n,
            duration_s,
            rate_tps: n as f64 / duration_s,
            mixture,
            arrival: if cv > CV_EXPONENTIAL_THRESHOLD {
                ArrivalDist::Exponential
            } else {
                ArrivalDist::Uniform
            },
            interarrival_cv: cv,
        });
    }

    let total_requests = schedule.len() as u64;
    let mut tenant_shares: Vec<(u16, f64)> = tenant_counts
        .into_iter()
        .map(|(t, c)| (t, c as f64 / total_requests.max(1) as f64))
        .collect();
    tenant_shares.sort_by(|a, b| b.1.total_cmp(&a.1));

    TraceStats {
        duration_s: phases.iter().map(|p| p.duration_s).sum(),
        phases,
        total_requests,
        tenant_shares,
    }
}

/// Emit a `PhaseScript` matching the fitted statistics, with every phase
/// duration multiplied by `time_scale` (0.05 compresses 10 minutes into
/// 30 seconds). Rates, mixtures and arrival processes are preserved.
pub fn synthesize(stats: &TraceStats, time_scale: f64) -> PhaseScript {
    let scale = if time_scale.is_finite() && time_scale > 0.0 { time_scale } else { 1.0 };
    PhaseScript::new(
        stats
            .phases
            .iter()
            .map(|p| {
                let weights: Vec<f64> = p.mixture.iter().map(|m| m * 100.0).collect();
                let mut phase = Phase::new(Rate::Limited(p.rate_tps), p.duration_s * scale)
                    .with_arrival(p.arrival);
                if !weights.is_empty() {
                    phase = phase.with_weights(weights);
                }
                phase
            })
            .collect(),
    )
}

/// Coefficient of variation of consecutive arrival gaps.
fn gap_cv(seg: &[&ScheduleRecord]) -> f64 {
    if seg.len() < 3 {
        return 0.0;
    }
    let gaps: Vec<f64> = seg.windows(2).map(|w| (w[1].offset_us - w[0].offset_us) as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ControlState, Mixture, ScheduleSource, ScriptSchedule};
    use std::sync::Arc;

    use crate::recorder::{Recorder, RecordingSource};

    fn record_script(script: PhaseScript, seed: u64) -> Vec<ScheduleRecord> {
        let first = script.phases.first().expect("phases");
        let state = ControlState::new(
            first.rate,
            first
                .weights
                .clone()
                .and_then(|w| Mixture::new(w).ok())
                .unwrap_or_else(|| Mixture::new(vec![50.0, 50.0]).unwrap()),
            50_000.0,
        );
        let recorder = Arc::new(Recorder::new());
        let mut src =
            RecordingSource::new(ScriptSchedule::new(script, 50_000.0, seed), recorder.clone(), 0);
        for second in 0.. {
            if src.plan(second, 0, &state).done {
                break;
            }
        }
        recorder.snapshot()
    }

    #[test]
    fn fit_recovers_rates_mixture_and_arrivals() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(300.0), 3.0).with_weights(vec![70.0, 30.0]),
            Phase::new(Rate::Limited(500.0), 2.0)
                .with_weights(vec![10.0, 90.0])
                .with_arrival(ArrivalDist::Exponential),
        ]);
        let schedule = record_script(script, 42);
        let stats = fit_schedule(&schedule, 2);

        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.total_requests, 300 * 3 + 500 * 2);
        let p0 = &stats.phases[0];
        let p1 = &stats.phases[1];
        assert_eq!(p0.duration_s, 3.0);
        assert_eq!(p1.duration_s, 2.0);
        assert!((p0.rate_tps - 300.0).abs() < 1.0, "{}", p0.rate_tps);
        assert!((p1.rate_tps - 500.0).abs() < 1.0, "{}", p1.rate_tps);
        assert_eq!(p0.arrival, ArrivalDist::Uniform);
        assert_eq!(p1.arrival, ArrivalDist::Exponential);
        // Mixture proportions within 2% of the source weights per type.
        assert!((p0.mixture[0] - 0.70).abs() < 0.02, "{:?}", p0.mixture);
        assert!((p0.mixture[1] - 0.30).abs() < 0.02, "{:?}", p0.mixture);
        assert!((p1.mixture[0] - 0.10).abs() < 0.02, "{:?}", p1.mixture);
        assert!((p1.mixture[1] - 0.90).abs() < 0.02, "{:?}", p1.mixture);
        assert_eq!(stats.tenant_shares, vec![(0, 1.0)]);
    }

    #[test]
    fn synthesize_compresses_duration_preserving_shape() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(200.0), 4.0).with_weights(vec![60.0, 40.0]),
            Phase::new(Rate::Limited(100.0), 2.0)
                .with_weights(vec![50.0, 50.0])
                .with_arrival(ArrivalDist::Exponential),
        ]);
        let schedule = record_script(script, 7);
        let stats = fit_schedule(&schedule, 2);
        let synth = synthesize(&stats, 0.25);

        assert_eq!(synth.phases.len(), 2);
        assert_eq!(synth.phases[0].duration_s, 1.0, "4s compressed ×0.25");
        assert_eq!(synth.phases[1].duration_s, 0.5);
        assert_eq!(synth.phases[0].arrival, ArrivalDist::Uniform);
        assert_eq!(synth.phases[1].arrival, ArrivalDist::Exponential);
        let r0 = match synth.phases[0].rate {
            Rate::Limited(t) => t,
            _ => panic!("limited"),
        };
        assert!((r0 - 200.0).abs() < 1.0);
        // Fitted weights are the observed mixture ×100: re-fitting the
        // synthesized script's weights against the source observation is
        // exact by construction.
        let w = synth.phases[0].weights.as_ref().unwrap();
        assert!((w[0] / 100.0 - stats.phases[0].mixture[0]).abs() < 1e-12);
    }

    #[test]
    fn fit_tracks_tenant_shares() {
        let mut schedule = record_script(
            PhaseScript::new(vec![Phase::new(Rate::Limited(100.0), 2.0)]),
            1,
        );
        for (i, rec) in schedule.iter_mut().enumerate() {
            rec.tenant = (i % 4 == 0) as u16; // 25% tenant 1
        }
        let stats = fit_schedule(&schedule, 2);
        assert_eq!(stats.tenant_shares.len(), 2);
        assert_eq!(stats.tenant_shares[0].0, 0);
        assert!((stats.tenant_shares[0].1 - 0.75).abs() < 1e-9);
        assert!((stats.tenant_shares[1].1 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_fits_empty_stats() {
        let stats = fit_schedule(&[], 2);
        assert!(stats.phases.is_empty());
        assert_eq!(stats.total_requests, 0);
        assert!(synthesize(&stats, 0.5).phases.is_empty());
    }
}
