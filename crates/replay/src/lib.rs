//! `bp-replay`: workload trace capture, deterministic replay, and
//! statistics-driven synthesis.
//!
//! Three pillars on top of the testbed core:
//!
//! 1. **capture** ([`recorder`]) — a sharded, generation-time recorder that
//!    snapshots a run's full request schedule into a versioned,
//!    self-describing [`Artifact`];
//! 2. **deterministic replay** ([`source`]) — a `ScheduleSource` feeding
//!    the recorded schedule back through the unchanged executor, with
//!    as-recorded / time-warp / asap timing and a replayed-vs-recorded
//!    [`DivergenceReport`];
//! 3. **synthesis** ([`synth`]) — fit per-phase rates, mixtures, arrival
//!    processes and tenant shares from a capture and emit a compressed
//!    `PhaseScript` that statistically matches the original.
//!
//! [`start_recorded`] / [`start_replay`] are the orchestration entry
//! points used by the HTTP API, the harness and the game.

pub mod artifact;
pub mod divergence;
pub mod recorder;
pub mod source;
pub mod synth;

use std::sync::Arc;

use bp_core::{Controller, RunConfig, RunHandle, Trace, Workload};
use bp_obs::MetricsRegistry;
use bp_storage::Database;
use bp_util::clock::SharedClock;
use bp_util::json::Json;

pub use artifact::{Artifact, ARTIFACT_VERSION};
pub use divergence::DivergenceReport;
pub use recorder::{Recorder, RecordingSource, ScheduleRecord};
pub use source::{ReplayProgress, ReplaySource, ReplayTiming};
pub use synth::{fit, fit_schedule, synthesize, PhaseStats, TraceStats};

/// Start a run exactly like `bp_core::start`, with every generated request
/// captured into the returned [`Recorder`]. Snapshot it after the run joins
/// and pass it to [`capture_artifact`].
pub fn start_recorded(
    db: Arc<Database>,
    workload: Arc<dyn Workload>,
    clock: SharedClock,
    cfg: RunConfig,
) -> (RunHandle, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::new());
    let source = bp_core::ScriptSchedule::new(cfg.script.clone(), cfg.unlimited_rate, cfg.seed);
    let recording = RecordingSource::new(source, recorder.clone(), cfg.tenant);
    let handle = bp_core::start_with_source(db, workload, clock, cfg, Box::new(recording));
    (handle, recorder)
}

/// Assemble the self-describing artifact for a finished recorded run.
pub fn capture_artifact(
    cfg: &RunConfig,
    workload: &dyn Workload,
    personality: &str,
    recorder: &Recorder,
    trace: Option<&Trace>,
) -> Artifact {
    Artifact {
        version: ARTIFACT_VERSION,
        workload: workload.name().to_string(),
        personality: personality.to_string(),
        seed: cfg.seed,
        terminals: cfg.terminals,
        tenant: cfg.tenant,
        unlimited_rate: cfg.unlimited_rate,
        types: workload.transaction_types().iter().map(|t| t.name.to_string()).collect(),
        script: cfg.script.clone(),
        schedule: recorder.snapshot(),
        trace: trace.map(|t| t.records()).unwrap_or_default(),
    }
}

/// A live (or finished) replay: the run's controller plus everything needed
/// to report progress and judge divergence.
pub struct ReplaySession {
    pub controller: Controller,
    pub progress: Arc<ReplayProgress>,
    /// The recorded baseline trace from the artifact.
    pub recorded: Arc<Trace>,
    /// The replay's own outcome trace, filling while it runs.
    pub replayed: Option<Arc<Trace>>,
    pub workload: String,
    pub num_types: usize,
    pub timing: ReplayTiming,
}

impl ReplaySession {
    /// True once the schedule is fully fed and the run has stopped.
    pub fn is_complete(&self) -> bool {
        self.progress.is_done() && self.controller.is_stopped()
    }

    /// Replayed-vs-recorded comparison; available once the replay is
    /// complete (and the recording carried a baseline trace). Also deposits
    /// the composite score into the progress gauge for `/metrics`.
    pub fn divergence(&self) -> Option<DivergenceReport> {
        if !self.is_complete() || self.recorded.is_empty() {
            return None;
        }
        let replayed = self.replayed.as_ref()?;
        let report =
            DivergenceReport::compare(&self.recorded, replayed, self.num_types, self.timing.speed());
        self.progress.set_divergence_score(report.score);
        Some(report)
    }

    /// The `/replay/status` payload.
    pub fn status_json(&self) -> Json {
        let mut status = Json::obj()
            .set("workload", self.workload.as_str())
            .set("mode", self.timing.mode_name())
            .set("warp", if self.timing.speed().is_finite() { self.timing.speed() } else { 0.0 })
            .set("total", self.progress.total())
            .set("fed", self.progress.fed())
            .set("max_lag_us", self.progress.max_lag_us())
            .set("done", self.progress.is_done())
            .set("stopped", self.controller.is_stopped())
            .set("complete", self.is_complete());
        status = match self.divergence() {
            Some(d) => status.set("divergence", divergence_json(&d)),
            None => status.set("divergence", Json::Null),
        };
        status
    }

    /// Register the replay's `bp_replay_*` gauges plus the underlying run's
    /// own sources on a metrics registry.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register("replay", self.progress.clone());
        self.controller.register_metrics(registry);
    }
}

/// The `divergence` object inside `/replay/status`.
pub fn divergence_json(d: &DivergenceReport) -> Json {
    Json::obj()
        .set("score", d.score)
        .set("recorded_requests", d.recorded_requests)
        .set("replayed_requests", d.replayed_requests)
        .set(
            "throughput_mae",
            if d.throughput_mae.is_finite() { Json::Num(d.throughput_mae) } else { Json::Null },
        )
        .set("max_type_share_diff", d.max_type_share_diff)
        .set("recorded_p95_us", d.recorded_latency_us[1])
        .set("replayed_p95_us", d.replayed_latency_us[1])
}

/// A started replay: keep `handle` to join it (tests, harness) or drop it
/// to let it run detached behind the session (HTTP API).
pub struct ReplayRun {
    pub handle: RunHandle,
    pub session: ReplaySession,
}

/// Start replaying a captured artifact against an already-loaded database.
///
/// The workload must match the artifact's transaction-type list. Artifacts
/// with a recorded schedule replay it verbatim through a [`ReplaySource`];
/// script-only artifacts (e.g. saved game scenarios) regenerate the
/// schedule live from the recorded seed — deterministically the same
/// schedule the original run generated.
pub fn start_replay(
    db: Arc<Database>,
    workload: Arc<dyn Workload>,
    clock: SharedClock,
    artifact: &Artifact,
    timing: ReplayTiming,
) -> Result<ReplayRun, String> {
    let types = workload.transaction_types();
    if types.len() != artifact.types.len() {
        return Err(format!(
            "artifact declares {} transaction types but workload '{}' has {}",
            artifact.types.len(),
            workload.name(),
            types.len()
        ));
    }
    for (i, (have, want)) in types.iter().zip(&artifact.types).enumerate() {
        if have.name != want {
            return Err(format!(
                "transaction type {i} mismatch: artifact '{want}' vs workload '{}'",
                have.name
            ));
        }
    }

    let cfg = RunConfig {
        terminals: artifact.terminals.max(1),
        script: artifact.script.clone(),
        seed: artifact.seed,
        collect_trace: true,
        unlimited_rate: artifact.unlimited_rate,
        tenant: artifact.tenant,
        ..Default::default()
    };

    let (handle, progress) = if artifact.schedule.is_empty() {
        if timing == ReplayTiming::Asap {
            return Err("asap replay needs a recorded schedule".to_string());
        }
        // Script-only: regenerate from the recorded seed. Warp compresses
        // the script itself (durations ÷k, rates ×k).
        let speed = timing.speed();
        let mut cfg = cfg;
        if speed != 1.0 {
            for p in &mut cfg.script.phases {
                p.duration_s /= speed;
                if let bp_core::Rate::Limited(tps) = &mut p.rate {
                    *tps *= speed;
                }
            }
        }
        let handle = bp_core::start(db, workload, clock, cfg);
        // Nothing to feed: the schedule regenerates inside the executor, so
        // completion is just the run stopping.
        let progress = ReplayProgress::new(0);
        progress.mark_done();
        (handle, progress)
    } else {
        let source =
            ReplaySource::new(artifact.schedule.clone(), artifact.script.clone(), timing);
        let progress = source.progress();
        let handle = bp_core::start_with_source(db, workload, clock, cfg, Box::new(source));
        (handle, progress)
    };

    let session = ReplaySession {
        controller: handle.controller.clone(),
        progress,
        recorded: Arc::new(artifact.recorded_trace()),
        replayed: handle.trace.clone(),
        workload: artifact.workload.clone(),
        num_types: types.len(),
        timing,
    };
    Ok(ReplayRun { handle, session })
}
