//! Deterministic replay: feed a recorded schedule back into the executor.
//!
//! [`ReplaySource`] implements `ScheduleSource`, so the manager loop,
//! central queue, workers, stats, spans and trace collection all behave
//! exactly as in a live run — only the *origin* of arrivals changes. Three
//! timing modes:
//!
//! - **as-recorded** (open loop): every request arrives at its recorded
//!   offset; the run takes as long as the recording did.
//! - **time-warp ×k** (open loop): recorded offsets are divided by `k`, so
//!   ×4 replays a 4-minute recording in ~1 minute (or `k`<1 slows it down).
//! - **asap** (closed loop): recorded timing is discarded; the whole
//!   schedule is enqueued immediately and worker completion paces the run.
//!
//! The queue's dispatch gate is removed during replay — arrival timestamps
//! already encode the recorded pacing, and a gate computed from the script
//! would fight any runtime rate overrides that were captured in the
//! schedule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bp_core::{ControlState, PhaseScript, ScheduleSource, ScheduledRequest, Window};
use bp_obs::{MetricsBuf, MetricsSource};
use bp_util::clock::{Micros, MICROS_PER_SEC};

use crate::recorder::ScheduleRecord;

/// How replay maps recorded arrival times onto the re-run clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayTiming {
    /// Open loop at recorded speed.
    AsRecorded,
    /// Open loop with time compressed (>1) or stretched (<1) by this factor.
    Warp(f64),
    /// Closed loop: enqueue everything now, workers set the pace.
    Asap,
}

impl ReplayTiming {
    /// The time-compression factor (recorded µs per replay µs).
    pub fn speed(&self) -> f64 {
        match self {
            ReplayTiming::AsRecorded => 1.0,
            ReplayTiming::Warp(k) => {
                if k.is_finite() && *k > 0.0 {
                    *k
                } else {
                    1.0
                }
            }
            ReplayTiming::Asap => f64::INFINITY,
        }
    }

    pub fn mode_name(&self) -> &'static str {
        match self {
            ReplayTiming::AsRecorded => "as-recorded",
            ReplayTiming::Warp(_) => "warp",
            ReplayTiming::Asap => "asap",
        }
    }

    /// Parse an API request: `mode` is `as-recorded` | `warp` | `asap`;
    /// `warp` uses the factor (a bare factor ≠ 1 implies warp mode).
    pub fn parse(mode: Option<&str>, warp: Option<f64>) -> Result<ReplayTiming, String> {
        match (mode, warp) {
            (Some("asap"), _) => Ok(ReplayTiming::Asap),
            (Some("as-recorded") | None, None) => Ok(ReplayTiming::AsRecorded),
            (Some("warp") | Some("as-recorded") | None, Some(k)) => {
                if !k.is_finite() || k <= 0.0 {
                    Err(format!("bad warp factor {k}"))
                } else if k == 1.0 {
                    Ok(ReplayTiming::AsRecorded)
                } else {
                    Ok(ReplayTiming::Warp(k))
                }
            }
            (Some("warp"), None) => Err("warp mode needs a warp factor".to_string()),
            (Some(m), _) => Err(format!("unknown replay mode '{m}'")),
        }
    }
}

/// Live progress of a replay, shared with `/replay/status` and `/metrics`.
#[derive(Debug, Default)]
pub struct ReplayProgress {
    total: AtomicU64,
    fed: AtomicU64,
    /// Worst observed manager lag behind the replay schedule (µs).
    max_lag_us: AtomicU64,
    done: AtomicBool,
    /// Divergence score ×1e6 once computed (u64::MAX = not yet computed).
    divergence_micro: AtomicU64,
}

impl ReplayProgress {
    pub fn new(total: u64) -> Arc<ReplayProgress> {
        let p = ReplayProgress::default();
        p.total.store(total, Ordering::Relaxed);
        p.divergence_micro.store(u64::MAX, Ordering::Relaxed);
        Arc::new(p)
    }

    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn fed(&self) -> u64 {
        self.fed.load(Ordering::Relaxed)
    }

    pub fn max_lag_us(&self) -> u64 {
        self.max_lag_us.load(Ordering::Relaxed)
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Mark the schedule fully fed. Used by script-only replays, where the
    /// schedule regenerates inside the executor and there is nothing for a
    /// `ReplaySource` to feed.
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    pub fn set_divergence_score(&self, score: f64) {
        self.divergence_micro
            .store((score.max(0.0) * 1e6) as u64, Ordering::Relaxed);
    }

    pub fn divergence_score(&self) -> Option<f64> {
        match self.divergence_micro.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v as f64 / 1e6),
        }
    }
}

/// `bp_replay_*` for `/metrics`.
impl MetricsSource for ReplayProgress {
    fn collect(&self, buf: &mut MetricsBuf) {
        buf.counter(
            "bp_replay_fed_total",
            "Recorded requests fed back into the queue by the replayer",
            &[],
            self.fed() as f64,
        );
        buf.gauge(
            "bp_replay_schedule_total",
            "Total recorded requests in the replayed schedule",
            &[],
            self.total() as f64,
        );
        buf.gauge(
            "bp_replay_lag_us",
            "Worst manager lag behind the replay schedule (microseconds)",
            &[],
            self.max_lag_us() as f64,
        );
        buf.gauge(
            "bp_replay_done",
            "1 once the full schedule has been fed",
            &[],
            if self.is_done() { 1.0 } else { 0.0 },
        );
        if let Some(score) = self.divergence_score() {
            buf.gauge(
                "bp_replay_divergence_score",
                "Composite replayed-vs-recorded divergence (0 = identical)",
                &[],
                score,
            );
        }
    }
}

/// A `ScheduleSource` that replays a recorded schedule.
pub struct ReplaySource {
    /// Arrival-ordered records (as produced by `Recorder::snapshot`).
    records: Vec<ScheduleRecord>,
    /// The recorded script: drives phase bookkeeping so `/status` and spans
    /// show the right phase during replay. May be empty.
    script: PhaseScript,
    timing: ReplayTiming,
    pos: usize,
    gate_cleared: bool,
    last_phase: Option<usize>,
    progress: Arc<ReplayProgress>,
}

impl ReplaySource {
    pub fn new(
        records: Vec<ScheduleRecord>,
        script: PhaseScript,
        timing: ReplayTiming,
    ) -> ReplaySource {
        let progress = ReplayProgress::new(records.len() as u64);
        ReplaySource { records, script, timing, pos: 0, gate_cleared: false, last_phase: None, progress }
    }

    pub fn progress(&self) -> Arc<ReplayProgress> {
        self.progress.clone()
    }

    /// Recorded time → replay time.
    fn scale(&self, recorded_us: Micros) -> Micros {
        match self.timing {
            ReplayTiming::Asap => 0,
            t => (recorded_us as f64 / t.speed()) as Micros,
        }
    }

    fn apply_phase(&mut self, phase_idx: usize, state: &ControlState) {
        if self.last_phase == Some(phase_idx) {
            return;
        }
        if let Some(p) = self.script.phases.get(phase_idx) {
            // Rate/arrival are informational during replay (arrivals are
            // pre-stamped); think time would double-pace the recorded
            // schedule, so it is dropped.
            state.apply_phase(phase_idx, p.rate, p.arrival, p.weights.as_deref(), 0, true);
        }
        self.last_phase = Some(phase_idx);
    }
}

impl ScheduleSource for ReplaySource {
    fn plan(&mut self, second: u64, behind_us: Micros, state: &ControlState) -> Window {
        let mut w = Window::default();
        if !self.gate_cleared {
            // Remove the dispatch gate `start_with_source` set from the
            // script's first phase: recorded arrival times are the pacing.
            w.gate_tps = Some(0.0);
            self.gate_cleared = true;
        }
        // Pausing a replay defers it: nothing is fed and the cursor stays,
        // so resuming continues from the next unfed record (overdue
        // arrivals collapse to the window start).
        if state.is_paused() {
            return w;
        }
        self.progress.max_lag_us.fetch_max(behind_us, Ordering::Relaxed);

        let window_start = second * MICROS_PER_SEC;
        let window_end = window_start + MICROS_PER_SEC;
        while self.pos < self.records.len() {
            let rec = self.records[self.pos];
            let at = self.scale(rec.offset_us);
            if at >= window_end {
                break;
            }
            w.requests.push(ScheduledRequest {
                offset_us: at.saturating_sub(window_start),
                txn_type: rec.txn_type,
                phase: rec.phase,
            });
            self.pos += 1;
        }
        if let Some(first) = w.requests.first() {
            self.apply_phase(first.phase as usize, state);
        }
        self.progress.fed.fetch_add(w.requests.len() as u64, Ordering::Relaxed);

        if self.pos >= self.records.len() {
            w.done = true;
            self.progress.done.store(true, Ordering::Relaxed);
        }
        w
    }

    /// Wait for the enqueued tail to dispatch before closing — a recorded
    /// schedule must not lose its last second to the close.
    fn drain_on_done(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Mixture, Phase, Rate};

    fn records(n: u64, spacing_us: Micros) -> Vec<ScheduleRecord> {
        (0..n)
            .map(|i| ScheduleRecord {
                offset_us: i * spacing_us,
                tenant: 0,
                txn_type: (i % 2) as u16,
                phase: 0,
            })
            .collect()
    }

    fn state() -> Arc<ControlState> {
        ControlState::new(Rate::Limited(100.0), Mixture::new(vec![1.0, 1.0]).unwrap(), 50_000.0)
    }

    fn feed_all(mut src: ReplaySource) -> Vec<(u64, Vec<ScheduledRequest>)> {
        let st = state();
        let mut windows = Vec::new();
        for second in 0..1000 {
            let w = src.plan(second, 0, &st);
            windows.push((second, w.requests));
            if w.done {
                return windows;
            }
        }
        panic!("replay never finished");
    }

    #[test]
    fn as_recorded_preserves_offsets() {
        let recs = records(30, 100_000); // 10/s for 3s
        let src = ReplaySource::new(recs.clone(), PhaseScript::default(), ReplayTiming::AsRecorded);
        let progress = src.progress();
        let windows = feed_all(src);
        assert_eq!(windows.len(), 3);
        let mut replayed = Vec::new();
        for (second, reqs) in &windows {
            assert_eq!(reqs.len(), 10);
            replayed
                .extend(reqs.iter().map(|r| (second * MICROS_PER_SEC + r.offset_us, r.txn_type)));
        }
        let expected: Vec<_> = recs.iter().map(|r| (r.offset_us, r.txn_type)).collect();
        assert_eq!(replayed, expected);
        assert_eq!(progress.fed(), 30);
        assert!(progress.is_done());
    }

    #[test]
    fn warp_4x_compresses_windows() {
        let recs = records(40, 100_000); // 4 recorded seconds
        let src = ReplaySource::new(recs, PhaseScript::default(), ReplayTiming::Warp(4.0));
        let windows = feed_all(src);
        assert_eq!(windows.len(), 1, "4 recorded seconds fit one warp-4 window");
        assert_eq!(windows[0].1.len(), 40);
        // Offsets are recorded/4.
        assert_eq!(windows[0].1[4].offset_us, 100_000);
    }

    #[test]
    fn warp_slowdown_stretches() {
        let recs = records(10, 100_000); // 1 recorded second
        let src = ReplaySource::new(recs, PhaseScript::default(), ReplayTiming::Warp(0.5));
        let windows = feed_all(src);
        assert_eq!(windows.len(), 2, "half speed doubles the duration");
    }

    #[test]
    fn asap_feeds_everything_immediately() {
        let recs = records(500, 10_000);
        let src = ReplaySource::new(recs, PhaseScript::default(), ReplayTiming::Asap);
        let windows = feed_all(src);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].1.len(), 500);
        assert!(windows[0].1.iter().all(|r| r.offset_us == 0));
    }

    #[test]
    fn pause_defers_instead_of_dropping() {
        let recs = records(20, 100_000); // 2 recorded seconds
        let mut src = ReplaySource::new(recs, PhaseScript::default(), ReplayTiming::AsRecorded);
        let st = state();
        st.pause();
        assert!(src.plan(0, 0, &st).requests.is_empty());
        st.resume();
        // Second 1 feeds everything due by its end: the deferred second-0
        // records (collapsed to the window start) plus second 1's own.
        let w = src.plan(1, 0, &st);
        assert_eq!(w.requests.len(), 20);
        assert!(w.done);
        assert_eq!(w.requests[0].offset_us, 0, "overdue arrivals collapse to window start");
    }

    #[test]
    fn replay_applies_recorded_phases() {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(10.0), 1.0),
            Phase::new(Rate::Limited(20.0), 1.0),
        ]);
        let recs = vec![
            ScheduleRecord { offset_us: 0, tenant: 0, txn_type: 0, phase: 0 },
            ScheduleRecord { offset_us: 1_200_000, tenant: 0, txn_type: 1, phase: 1 },
        ];
        let mut src = ReplaySource::new(recs, script, ReplayTiming::AsRecorded);
        let st = state();
        src.plan(0, 0, &st);
        assert_eq!(st.phase_idx(), 0);
        assert_eq!(st.rate(), Rate::Limited(10.0));
        src.plan(1, 0, &st);
        assert_eq!(st.phase_idx(), 1);
        assert_eq!(st.rate(), Rate::Limited(20.0));
    }

    #[test]
    fn timing_parse() {
        assert_eq!(ReplayTiming::parse(None, None), Ok(ReplayTiming::AsRecorded));
        assert_eq!(ReplayTiming::parse(Some("asap"), None), Ok(ReplayTiming::Asap));
        assert_eq!(ReplayTiming::parse(None, Some(4.0)), Ok(ReplayTiming::Warp(4.0)));
        assert_eq!(ReplayTiming::parse(Some("warp"), Some(0.25)), Ok(ReplayTiming::Warp(0.25)));
        assert_eq!(ReplayTiming::parse(Some("as-recorded"), Some(1.0)), Ok(ReplayTiming::AsRecorded));
        assert!(ReplayTiming::parse(Some("warp"), None).is_err());
        assert!(ReplayTiming::parse(Some("warp"), Some(0.0)).is_err());
        assert!(ReplayTiming::parse(Some("nope"), None).is_err());
    }

    #[test]
    fn progress_metrics_exposed() {
        let p = ReplayProgress::new(10);
        p.fed.store(4, Ordering::Relaxed);
        assert_eq!(p.divergence_score(), None);
        p.set_divergence_score(0.125);
        assert_eq!(p.divergence_score(), Some(0.125));
        let mut buf = MetricsBuf::new();
        p.collect(&mut buf);
        let samples = buf.into_samples();
        assert!(samples.len() >= 5);
    }
}
