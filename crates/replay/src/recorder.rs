//! The capture side: a sharded, low-overhead schedule recorder.
//!
//! [`RecordingSource`] decorates any `ScheduleSource` and deposits every
//! planned request into a [`Recorder`] as it flows to the queue — capture
//! happens at generation time on the manager thread, so the record order is
//! deterministic and nothing touches the worker hot path. The buffer is
//! sharded per thread (same scheme as `StatsCollector`) so additional
//! depositors — e.g. a second tenant's manager recording into a shared
//! recorder — never contend on one lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bp_core::{ControlState, ScheduleSource, Window};
use bp_obs::{MetricsBuf, MetricsSource};
use bp_util::clock::{Micros, MICROS_PER_SEC};
use bp_util::sync::{thread_slot, CachePadded, Mutex};

/// One captured request: where in the run it arrived and what it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleRecord {
    /// Arrival time, µs since run start (window base + in-window offset).
    pub offset_us: Micros,
    pub tenant: u16,
    pub txn_type: u16,
    pub phase: u16,
}

const SHARDS: usize = 8;

/// Sharded append-only buffer of captured schedule records.
pub struct Recorder {
    shards: Vec<CachePadded<Mutex<Vec<ScheduleRecord>>>>,
    captured: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder {
            shards: (0..SHARDS).map(|_| CachePadded(Mutex::new(Vec::new()))).collect(),
            captured: AtomicU64::new(0),
        }
    }

    fn my_shard(&self) -> &Mutex<Vec<ScheduleRecord>> {
        &self.shards[thread_slot() % SHARDS].0
    }

    /// Capture one window's records: one uncontended lock + a memcpy-style
    /// extend, amortizing to ~ns per request.
    pub fn capture_batch(&self, records: impl IntoIterator<Item = ScheduleRecord>) {
        let mut shard = self.my_shard().lock();
        let before = shard.len();
        shard.extend(records);
        let n = (shard.len() - before) as u64;
        drop(shard);
        self.captured.fetch_add(n, Ordering::Relaxed);
    }

    /// Total records captured so far.
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Merge the shards into one arrival-ordered schedule. The sort is
    /// stable, so records from a single manager thread (one shard, already
    /// in generation order) keep their relative order at equal offsets —
    /// which is what makes same-seed snapshots byte-identical.
    pub fn snapshot(&self) -> Vec<ScheduleRecord> {
        let mut all: Vec<ScheduleRecord> = Vec::with_capacity(self.captured() as usize);
        for shard in &self.shards {
            all.extend(shard.0.lock().iter().copied());
        }
        all.sort_by_key(|r| r.offset_us);
        all
    }
}

/// `bp_replay_captured_total` for `/metrics`.
impl MetricsSource for Recorder {
    fn collect(&self, buf: &mut MetricsBuf) {
        buf.counter(
            "bp_replay_captured_total",
            "Schedule records captured by the replay recorder",
            &[],
            self.captured() as f64,
        );
    }
}

/// A `ScheduleSource` decorator that records everything the inner source
/// plans, stamped with the recording tenant.
pub struct RecordingSource<S> {
    inner: S,
    recorder: Arc<Recorder>,
    tenant: u16,
}

impl<S: ScheduleSource> RecordingSource<S> {
    pub fn new(inner: S, recorder: Arc<Recorder>, tenant: u16) -> RecordingSource<S> {
        RecordingSource { inner, recorder, tenant }
    }
}

impl<S: ScheduleSource> ScheduleSource for RecordingSource<S> {
    fn plan(&mut self, second: u64, behind_us: Micros, state: &ControlState) -> Window {
        let window = self.inner.plan(second, behind_us, state);
        if !window.requests.is_empty() {
            let base = second * MICROS_PER_SEC;
            self.recorder.capture_batch(window.requests.iter().map(|r| ScheduleRecord {
                offset_us: base + r.offset_us,
                tenant: self.tenant,
                txn_type: r.txn_type,
                phase: r.phase,
            }));
        }
        window
    }

    fn drain_on_done(&self) -> bool {
        self.inner.drain_on_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ControlState, Mixture, Phase, PhaseScript, Rate, ScriptSchedule};

    fn run_recorded(seed: u64) -> Vec<ScheduleRecord> {
        let script = PhaseScript::new(vec![
            Phase::new(Rate::Limited(120.0), 1.0).with_weights(vec![60.0, 40.0]),
            Phase::new(Rate::Limited(80.0), 1.0),
        ]);
        let state = ControlState::new(
            Rate::Limited(120.0),
            Mixture::new(vec![60.0, 40.0]).unwrap(),
            50_000.0,
        );
        let recorder = Arc::new(Recorder::new());
        let mut src = RecordingSource::new(
            ScriptSchedule::new(script, 50_000.0, seed),
            recorder.clone(),
            3,
        );
        for second in 0.. {
            if src.plan(second, 0, &state).done {
                break;
            }
        }
        recorder.snapshot()
    }

    #[test]
    fn capture_is_deterministic_and_ordered() {
        let a = run_recorded(11);
        let b = run_recorded(11);
        assert_eq!(a.len(), 200);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].offset_us <= w[1].offset_us));
        assert!(a.iter().all(|r| r.tenant == 3));
        assert_ne!(a, run_recorded(12));
    }

    #[test]
    fn captured_counter_tracks_batches() {
        let r = Recorder::new();
        assert_eq!(r.captured(), 0);
        r.capture_batch([
            ScheduleRecord { offset_us: 5, tenant: 0, txn_type: 1, phase: 0 },
            ScheduleRecord { offset_us: 2, tenant: 0, txn_type: 0, phase: 0 },
        ]);
        assert_eq!(r.captured(), 2);
        assert_eq!(r.snapshot()[0].offset_us, 2, "snapshot sorts by arrival");
        let mut buf = MetricsBuf::new();
        r.collect(&mut buf);
        assert!(!buf.into_samples().is_empty());
    }
}
