//! The versioned, self-describing replay artifact.
//!
//! A plain-text, line-oriented format so artifacts diff, grep and ship like
//! any other trace file:
//!
//! ```text
//! #bp-replay v1
//! workload voter
//! personality postgres
//! seed 42
//! terminals 4
//! tenant 0
//! unlimited_rate 50000
//! types Vote,Audit
//! repeat false
//! phase rate=200 arrival=uniform duration_s=2 think_us=0
//! schedule 400            <- record count, then one line per request
//! 1250 0 1 0              <- offset_us tenant txn_type phase
//! …
//! trace 398               <- line count of the embedded recorded trace
//! #bp-trace v1
//! 1290 1 410 C            <- Trace::to_text lines (divergence baseline)
//! …
//! end
//! ```
//!
//! The header is enough to regenerate the schedule from scratch (seed +
//! script), so artifacts with an empty `schedule` section — e.g. a game
//! session saved as a scenario — are still replayable: replay falls back to
//! live generation from the recorded seed.

use bp_core::{Phase, PhaseScript, Trace, TraceRecord};
use bp_util::clock::Micros;

use crate::recorder::ScheduleRecord;

/// Artifact format version this build writes and understands.
pub const ARTIFACT_VERSION: u32 = 1;
const HEADER: &str = "#bp-replay v1";

/// A captured run: everything needed to re-execute and then judge the
/// re-execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    pub version: u32,
    /// Workload (benchmark) name the schedule was recorded against.
    pub workload: String,
    /// DBMS personality of the recording run (informational).
    pub personality: String,
    pub seed: u64,
    pub terminals: usize,
    pub tenant: u16,
    pub unlimited_rate: f64,
    /// Transaction type names, index-aligned with `txn_type` fields.
    pub types: Vec<String>,
    /// The recorded run's phase script (rates/arrivals/durations).
    pub script: PhaseScript,
    /// The captured request schedule; empty for script-only artifacts.
    pub schedule: Vec<ScheduleRecord>,
    /// The recorded run's outcome trace — the divergence baseline.
    pub trace: Vec<TraceRecord>,
}

impl Artifact {
    /// Total recorded duration in whole seconds (schedule span, falling
    /// back to the script duration for script-only artifacts).
    pub fn duration_s(&self) -> f64 {
        match self.schedule.last() {
            Some(last) => (last.offset_us as f64 / 1e6).ceil(),
            None => self.script.total_duration_us() as f64 / 1e6,
        }
    }

    /// The `schedule` section alone (count line + record lines). Two
    /// same-seed recordings must agree on this byte-for-byte — headers and
    /// embedded traces may differ (wall-clock latencies), the schedule may
    /// not.
    pub fn schedule_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(16 + self.schedule.len() * 16);
        let _ = writeln!(out, "schedule {}", self.schedule.len());
        for r in &self.schedule {
            let _ = writeln!(out, "{} {} {} {}", r.offset_us, r.tenant, r.txn_type, r.phase);
        }
        out
    }

    /// Serialize the whole artifact.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.schedule.len() * 16 + self.trace.len() * 24);
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "workload {}", self.workload);
        let _ = writeln!(out, "personality {}", self.personality);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "terminals {}", self.terminals);
        let _ = writeln!(out, "tenant {}", self.tenant);
        let _ = writeln!(out, "unlimited_rate {}", self.unlimited_rate);
        let _ = writeln!(out, "types {}", self.types.join(","));
        let _ = writeln!(out, "repeat {}", self.script.repeat);
        for p in &self.script.phases {
            let _ = writeln!(out, "phase {p}");
        }
        out.push_str(&self.schedule_text());
        let mut trace_lines = String::new();
        for r in &self.trace {
            r.write_line(&mut trace_lines);
        }
        let _ = writeln!(out, "trace {}", self.trace.len());
        let _ = writeln!(out, "{}", bp_core::TRACE_HEADER);
        out.push_str(&trace_lines);
        let _ = writeln!(out, "end");
        out
    }

    /// Line-streaming parse; the exact inverse of [`Artifact::to_text`].
    pub fn from_text(text: &str) -> Result<Artifact, String> {
        let mut lines = text.lines().enumerate();
        let err = |lineno: usize, msg: &str| format!("artifact line {}: {msg}", lineno + 1);

        let (n0, first) = lines.next().ok_or("empty artifact")?;
        match first.trim().strip_prefix("#bp-replay v") {
            Some("1") => {}
            Some(_) => return Err(err(n0, "unsupported artifact version")),
            None => return Err(err(n0, "missing #bp-replay header")),
        }

        let mut workload = None;
        let mut personality = None;
        let mut seed = None;
        let mut terminals = None;
        let mut tenant = None;
        let mut unlimited_rate = None;
        let mut types: Option<Vec<String>> = None;
        let mut repeat = None;
        let mut phases: Vec<Phase> = Vec::new();
        let mut schedule: Vec<ScheduleRecord> = Vec::new();
        let mut trace: Vec<TraceRecord> = Vec::new();
        let mut saw_end = false;

        while let Some((lineno, raw)) = lines.next() {
            let line = raw.trim();
            // The version header was already validated on line 1; any other
            // `#` line (including the embedded trace header after an empty
            // trace section) is a comment.
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = match line.split_once(char::is_whitespace) {
                Some((k, v)) => (k, v.trim()),
                None => (line, ""),
            };
            match key {
                "workload" => workload = Some(value.to_string()),
                "personality" => personality = Some(value.to_string()),
                "seed" => {
                    seed = Some(value.parse().map_err(|_| err(lineno, "bad seed"))?);
                }
                "terminals" => {
                    terminals = Some(value.parse().map_err(|_| err(lineno, "bad terminals"))?);
                }
                "tenant" => {
                    tenant = Some(value.parse().map_err(|_| err(lineno, "bad tenant"))?);
                }
                "unlimited_rate" => {
                    unlimited_rate =
                        Some(value.parse().map_err(|_| err(lineno, "bad unlimited_rate"))?);
                }
                "types" => {
                    types = Some(
                        value
                            .split(',')
                            .map(str::trim)
                            .filter(|t| !t.is_empty())
                            .map(str::to_string)
                            .collect(),
                    );
                }
                "repeat" => {
                    repeat = Some(value.parse().map_err(|_| err(lineno, "bad repeat"))?);
                }
                "phase" => {
                    phases.push(Phase::parse(value).ok_or_else(|| err(lineno, "bad phase"))?);
                }
                "schedule" => {
                    let count: usize =
                        value.parse().map_err(|_| err(lineno, "bad schedule count"))?;
                    schedule.reserve(count);
                    for _ in 0..count {
                        let (ln, rec) =
                            lines.next().ok_or_else(|| err(lineno, "truncated schedule"))?;
                        schedule.push(parse_schedule_line(rec).map_err(|m| err(ln, &m))?);
                    }
                }
                "trace" => {
                    let count: usize = value.parse().map_err(|_| err(lineno, "bad trace count"))?;
                    trace.reserve(count);
                    let mut remaining = count;
                    while remaining > 0 {
                        let (ln, rec) =
                            lines.next().ok_or_else(|| err(lineno, "truncated trace"))?;
                        let rec = rec.trim();
                        if rec.is_empty() || rec.starts_with('#') {
                            continue; // the embedded #bp-trace header
                        }
                        trace.push(TraceRecord::parse_line(rec).map_err(|m| err(ln, &m))?);
                        remaining -= 1;
                    }
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                _ => return Err(err(lineno, "unknown artifact key")),
            }
        }
        if !saw_end {
            return Err("artifact missing end marker".to_string());
        }

        let types = types.ok_or("artifact missing types")?;
        let num_types = types.len();
        if let Some(bad) = schedule.iter().find(|r| r.txn_type as usize >= num_types) {
            return Err(format!(
                "schedule references txn_type {} but artifact declares {num_types} types",
                bad.txn_type
            ));
        }
        Ok(Artifact {
            version: ARTIFACT_VERSION,
            workload: workload.ok_or("artifact missing workload")?,
            personality: personality.unwrap_or_default(),
            seed: seed.ok_or("artifact missing seed")?,
            terminals: terminals.ok_or("artifact missing terminals")?,
            tenant: tenant.unwrap_or(0),
            unlimited_rate: unlimited_rate.ok_or("artifact missing unlimited_rate")?,
            types,
            script: PhaseScript { phases, repeat: repeat.unwrap_or(false) },
            schedule,
            trace,
        })
    }

    /// The embedded recorded trace as a `Trace` (divergence baseline).
    pub fn recorded_trace(&self) -> Trace {
        Trace::from_records(self.trace.clone())
    }
}

fn parse_schedule_line(line: &str) -> Result<ScheduleRecord, String> {
    let mut parts = line.split_whitespace();
    let mut next = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or_else(|| format!("bad schedule {what}"))
    };
    let offset_us = next("offset")? as Micros;
    let tenant = next("tenant")? as u16;
    let txn_type = next("txn_type")? as u16;
    let phase = next("phase")? as u16;
    Ok(ScheduleRecord { offset_us, tenant, txn_type, phase })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{ArrivalDist, Rate, RequestOutcome};

    fn sample_artifact() -> Artifact {
        Artifact {
            version: 1,
            workload: "counter".into(),
            personality: "test".into(),
            seed: 42,
            terminals: 4,
            tenant: 1,
            unlimited_rate: 50_000.0,
            types: vec!["Read".into(), "Incr".into()],
            script: PhaseScript::new(vec![
                Phase::new(Rate::Limited(200.0), 2.0).with_weights(vec![70.0, 30.0]),
                Phase::new(Rate::Limited(12.5), 1.5).with_arrival(ArrivalDist::Exponential),
            ]),
            schedule: vec![
                ScheduleRecord { offset_us: 0, tenant: 1, txn_type: 0, phase: 0 },
                ScheduleRecord { offset_us: 5_000, tenant: 1, txn_type: 1, phase: 0 },
                ScheduleRecord { offset_us: 2_100_000, tenant: 1, txn_type: 0, phase: 1 },
            ],
            trace: vec![
                TraceRecord {
                    start_us: 120,
                    latency_us: 800,
                    txn_type: 0,
                    outcome: RequestOutcome::Committed,
                },
                TraceRecord {
                    start_us: 5_200,
                    latency_us: 0,
                    txn_type: 1,
                    outcome: RequestOutcome::Shed,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_exact() {
        let a = sample_artifact();
        let text = a.to_text();
        let back = Artifact::from_text(&text).unwrap();
        assert_eq!(back, a);
        // Serialization is deterministic, so the round-trip is bytewise too.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn schedule_text_is_a_section_of_to_text() {
        let a = sample_artifact();
        assert!(a.to_text().contains(&a.schedule_text()));
        assert!(a.schedule_text().starts_with("schedule 3\n"));
    }

    #[test]
    fn script_only_artifact_roundtrips() {
        let mut a = sample_artifact();
        a.schedule.clear();
        a.trace.clear();
        let back = Artifact::from_text(&a.to_text()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.duration_s(), 3.5, "falls back to script duration");
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(Artifact::from_text("").is_err());
        assert!(Artifact::from_text("#bp-replay v9\nend\n").is_err(), "future version");
        assert!(Artifact::from_text("#bp-trace v1\n").is_err(), "wrong header");
        let a = sample_artifact();
        let truncated = a.to_text().replace("\nend\n", "\n");
        assert!(Artifact::from_text(&truncated).is_err(), "missing end");
        let bad_type = a.to_text().replace("types Read,Incr", "types Read");
        assert!(Artifact::from_text(&bad_type).is_err(), "schedule type out of range");
    }
}
