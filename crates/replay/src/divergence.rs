//! Replayed-vs-recorded divergence: did the re-run behave like the
//! original?
//!
//! The recorded artifact embeds the original run's outcome trace; after a
//! replay finishes, both traces go through the existing `TraceAnalyzer` and
//! are compared on three axes:
//!
//! - **throughput series** — per-second delivered rates, with the replayed
//!   timeline rescaled by the warp factor so a ×4 replay is compared
//!   against the recording it compresses;
//! - **per-type counts** — mixture shares must match;
//! - **latency percentiles** — p50/p95/p99 from the raw latencies.
//!
//! The composite `score` is 0 for an identical re-run and grows with
//! relative error; `within(tol)` is the acceptance check used by the
//! harness and verify.sh smoke.

use bp_core::{RequestOutcome, Trace, TraceAnalyzer};
use bp_util::histogram::Histogram;
use bp_util::timeseries::mean_abs_error;

/// The replayed-vs-recorded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Executed (non-shed) requests in each trace.
    pub recorded_requests: u64,
    pub replayed_requests: u64,
    /// Per-second delivered throughput, recorded timeline.
    pub recorded_throughput: Vec<f64>,
    /// Replayed throughput mapped onto the recorded timeline (warp-scaled).
    pub replayed_throughput: Vec<f64>,
    /// Mean absolute error between the two series (tx/s).
    pub throughput_mae: f64,
    /// `throughput_mae` relative to the recorded mean rate.
    pub throughput_rel_error: f64,
    pub per_type_recorded: Vec<u64>,
    pub per_type_replayed: Vec<u64>,
    /// Largest absolute difference in per-type share (0..1).
    pub max_type_share_diff: f64,
    pub recorded_latency_us: [u64; 3],
    pub replayed_latency_us: [u64; 3],
    /// Composite divergence: mean of count, throughput and mixture relative
    /// errors. 0 = statistically identical.
    pub score: f64,
}

impl DivergenceReport {
    /// Compare a replayed trace against the recorded baseline. `speed` is
    /// the replay's time-compression factor (1.0 for as-recorded,
    /// `f64::INFINITY` for asap — which skips the throughput-series axis,
    /// as closed-loop replay deliberately abandons recorded timing).
    pub fn compare(recorded: &Trace, replayed: &Trace, num_types: usize, speed: f64) -> DivergenceReport {
        let rec = TraceAnalyzer::analyze(recorded, num_types);
        let rep = TraceAnalyzer::analyze(replayed, num_types);
        let recorded_requests: u64 = rec.committed + rec.user_aborted + rec.failed;
        let replayed_requests: u64 = rep.committed + rep.user_aborted + rep.failed;

        // Rescale the replayed completions onto the recorded timeline: a
        // completion at replay-time t happened at recorded-time t*speed.
        let recorded_throughput = rec.throughput.clone();
        let replayed_throughput = if speed.is_finite() {
            // A completion at replay-time t lands in recorded-second
            // floor(t*speed); bucket counts then read directly as tx per
            // recorded second.
            let mut counts = vec![0.0f64; recorded_throughput.len().max(1)];
            for r in replayed.records() {
                if r.outcome == RequestOutcome::Shed {
                    continue;
                }
                let end_us = (r.start_us + r.latency_us) as f64 * speed;
                let s = (end_us / 1e6) as usize;
                if let Some(slot) = counts.get_mut(s) {
                    *slot += 1.0;
                }
            }
            counts
        } else {
            Vec::new()
        };

        let (throughput_mae, throughput_rel_error) = if replayed_throughput.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let mae = mean_abs_error(&recorded_throughput, &replayed_throughput);
            let mean_rate = recorded_throughput.iter().sum::<f64>()
                / recorded_throughput.len().max(1) as f64;
            (mae, if mean_rate > 0.0 { mae / mean_rate } else { 0.0 })
        };

        let max_type_share_diff = max_share_diff(
            &rec.per_type_counts,
            recorded_requests,
            &rep.per_type_counts,
            replayed_requests,
        );

        let pcts = |t: &Trace| -> [u64; 3] {
            let mut h = Histogram::latency();
            for r in t.records() {
                if r.outcome != RequestOutcome::Shed {
                    h.record(r.latency_us);
                }
            }
            if h.is_empty() {
                [0, 0, 0]
            } else {
                [h.percentile(50.0), h.percentile(95.0), h.percentile(99.0)]
            }
        };

        let count_rel_error = if recorded_requests == 0 {
            if replayed_requests == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            (recorded_requests as f64 - replayed_requests as f64).abs() / recorded_requests as f64
        };
        let mut components = vec![count_rel_error, max_type_share_diff];
        if throughput_rel_error.is_finite() {
            components.push(throughput_rel_error);
        }
        let score = components.iter().sum::<f64>() / components.len() as f64;

        DivergenceReport {
            recorded_requests,
            replayed_requests,
            recorded_throughput,
            replayed_throughput,
            throughput_mae,
            throughput_rel_error,
            per_type_recorded: rec.per_type_counts,
            per_type_replayed: rep.per_type_counts,
            max_type_share_diff,
            recorded_latency_us: pcts(recorded),
            replayed_latency_us: pcts(replayed),
            score,
        }
    }

    /// The acceptance check: composite divergence at or below `tolerance`.
    pub fn within(&self, tolerance: f64) -> bool {
        self.score <= tolerance
    }
}

fn max_share_diff(a_counts: &[u64], a_total: u64, b_counts: &[u64], b_total: u64) -> f64 {
    if a_total == 0 || b_total == 0 {
        return if a_total == b_total { 0.0 } else { 1.0 };
    }
    a_counts
        .iter()
        .zip(b_counts)
        .map(|(a, b)| (*a as f64 / a_total as f64 - *b as f64 / b_total as f64).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::TraceRecord;

    fn trace(records: Vec<(u64, usize, u64)>) -> Trace {
        Trace::from_records(
            records
                .into_iter()
                .map(|(start_us, txn_type, latency_us)| TraceRecord {
                    start_us,
                    latency_us,
                    txn_type,
                    outcome: RequestOutcome::Committed,
                })
                .collect(),
        )
    }

    fn steady(rate: u64, seconds: u64, ty_mod: usize) -> Vec<(u64, usize, u64)> {
        (0..rate * seconds)
            .map(|i| (i * 1_000_000 / rate, (i as usize) % ty_mod, 300))
            .collect()
    }

    #[test]
    fn identical_traces_have_zero_score() {
        let a = trace(steady(100, 2, 2));
        let b = trace(steady(100, 2, 2));
        let d = DivergenceReport::compare(&a, &b, 2, 1.0);
        assert_eq!(d.recorded_requests, 200);
        assert_eq!(d.replayed_requests, 200);
        assert!(d.score < 1e-9, "score {}", d.score);
        assert!(d.within(0.01));
        assert_eq!(d.per_type_recorded, d.per_type_replayed);
    }

    #[test]
    fn mixture_drift_raises_share_diff() {
        let a = trace(steady(100, 2, 2)); // 50/50
        let b = trace(steady(100, 2, 1)); // all type 0
        let d = DivergenceReport::compare(&a, &b, 2, 1.0);
        assert!((d.max_type_share_diff - 0.5).abs() < 1e-9, "{}", d.max_type_share_diff);
        assert!(!d.within(0.05));
    }

    #[test]
    fn warp_rescaling_matches_compressed_replay() {
        // Recorded: 100/s for 4s. Replayed at ×4: same 400 requests in 1s.
        let a = trace(steady(100, 4, 1));
        let b = trace(steady(400, 1, 1));
        let d = DivergenceReport::compare(&a, &b, 1, 4.0);
        assert_eq!(d.replayed_throughput.len(), d.recorded_throughput.len());
        assert!(d.throughput_rel_error < 0.05, "rel err {}", d.throughput_rel_error);
        assert!(d.within(0.05), "score {}", d.score);
    }

    #[test]
    fn asap_skips_throughput_axis() {
        let a = trace(steady(100, 2, 2));
        let b = trace(steady(1000, 1, 2).into_iter().take(200).collect());
        let d = DivergenceReport::compare(&a, &b, 2, f64::INFINITY);
        assert!(d.throughput_mae.is_nan());
        assert!(d.score.is_finite());
    }

    #[test]
    fn dropped_tail_counts_against_score() {
        let a = trace(steady(100, 2, 2));
        let b = trace(steady(100, 2, 2).into_iter().take(120).collect());
        let d = DivergenceReport::compare(&a, &b, 2, 1.0);
        assert!(d.score > 0.1, "score {}", d.score);
    }
}
