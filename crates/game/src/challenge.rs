//! Challenges: the obstacle courses of §4.1.2.
//!
//! A challenge is a sequence of obstacles — pairs of vertical pipes whose
//! opening represents the expected throughput range for a time window. Four
//! generator shapes are provided (Steps, Sinusoidal, Peak, Tunnels) and new
//! challenges can be loaded from a configuration file, exactly as the demo
//! describes.

use bp_util::clock::{Micros, MICROS_PER_SEC};
use bp_util::xml::XmlNode;

/// One obstacle: a throughput gap that must be hit during a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Window start (µs from course start).
    pub start_us: Micros,
    /// Window end (µs from course start).
    pub end_us: Micros,
    /// Lower edge of the opening (tx/s).
    pub gap_low: f64,
    /// Upper edge of the opening (tx/s).
    pub gap_high: f64,
    /// Autopilot zone: user input is ignored while inside (§4.1.2 Tunnels).
    pub autopilot: bool,
}

impl Obstacle {
    pub fn contains(&self, tps: f64) -> bool {
        tps >= self.gap_low && tps <= self.gap_high
    }

    pub fn center(&self) -> f64 {
        (self.gap_low + self.gap_high) / 2.0
    }
}

/// The four built-in challenge shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChallengeShape {
    /// Increasing (or decreasing) throughput levels; finds the saturation
    /// point ("at some point the DBMS will become saturated").
    Steps { levels: usize, low: f64, high: f64, ascending: bool },
    /// Recurring up/down pattern; tests graceful response without jitter.
    Sinusoidal { cycles: usize, mid: f64, amplitude: f64 },
    /// Steady state, a short burst, then back; tests sporadic load response.
    Peak { base: f64, peak: f64 },
    /// A long constant narrow range with autopilot; DBMSs with oscillating
    /// throughput cannot pass it.
    Tunnel { target: f64, half_width: f64 },
}

/// A full course: obstacles in time order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Course {
    pub name: String,
    pub obstacles: Vec<Obstacle>,
    pub duration_us: Micros,
}

impl Course {
    /// Generate a course from a shape over `duration_s` seconds, with a
    /// relative gap width (`tolerance`, e.g. 0.25 = ±12.5% of the level).
    pub fn generate(name: &str, shape: ChallengeShape, duration_s: f64, tolerance: f64) -> Course {
        let duration_us = (duration_s * MICROS_PER_SEC as f64) as Micros;
        let mut obstacles = Vec::new();
        match shape {
            ChallengeShape::Steps { levels, low, high, ascending } => {
                let levels = levels.max(1);
                let window = duration_us / levels as u64;
                for i in 0..levels {
                    let frac = i as f64 / (levels.max(2) - 1) as f64;
                    let frac = if ascending { frac } else { 1.0 - frac };
                    let level = low + frac * (high - low);
                    let half = (level * tolerance / 2.0).max(1.0);
                    obstacles.push(Obstacle {
                        // Leave a lead-in margin of 30% per window so the
                        // player can climb to the next level.
                        start_us: i as u64 * window + window * 3 / 10,
                        end_us: (i as u64 + 1) * window,
                        gap_low: (level - half).max(0.0),
                        gap_high: level + half,
                        autopilot: false,
                    });
                }
            }
            ChallengeShape::Sinusoidal { cycles, mid, amplitude } => {
                // One obstacle per quarter cycle, tracking the sine.
                let segments = (cycles.max(1) * 8).max(4);
                let window = duration_us / segments as u64;
                // Segment 0 is an obstacle-free lead-in so the player can
                // climb to the first level from a standing start.
                for i in 1..segments {
                    let phase = (i as f64 + 0.5) / segments as f64 * cycles as f64 * std::f64::consts::TAU;
                    let level = mid + amplitude * phase.sin();
                    let half = (level.abs() * tolerance / 2.0).max(amplitude * 0.25);
                    obstacles.push(Obstacle {
                        // 40% of each window is transition room: the sine
                        // moves between levels faster than gravity alone, so
                        // the player needs time to dive/climb.
                        start_us: i as u64 * window + window * 2 / 5,
                        end_us: (i as u64 + 1) * window,
                        gap_low: (level - half).max(0.0),
                        gap_high: level + half,
                        autopilot: false,
                    });
                }
            }
            ChallengeShape::Peak { base, peak } => {
                let half_base = (base * tolerance / 2.0).max(1.0);
                let half_peak = (peak * tolerance / 2.0).max(1.0);
                // Steady 40%, peak 20%, steady 40%.
                let d = duration_us;
                obstacles.push(Obstacle {
                    start_us: d / 10,
                    end_us: d * 4 / 10,
                    gap_low: (base - half_base).max(0.0),
                    gap_high: base + half_base,
                    autopilot: false,
                });
                obstacles.push(Obstacle {
                    start_us: d * 45 / 100,
                    end_us: d * 6 / 10,
                    gap_low: (peak - half_peak).max(0.0),
                    gap_high: peak + half_peak,
                    autopilot: false,
                });
                obstacles.push(Obstacle {
                    start_us: d * 7 / 10,
                    end_us: d,
                    gap_low: (base - half_base).max(0.0),
                    gap_high: base + half_base,
                    autopilot: false,
                });
            }
            ChallengeShape::Tunnel { target, half_width } => {
                obstacles.push(Obstacle {
                    start_us: duration_us / 10,
                    end_us: duration_us,
                    gap_low: (target - half_width).max(0.0),
                    gap_high: target + half_width,
                    autopilot: true,
                });
            }
        }
        Course { name: name.to_string(), obstacles, duration_us }
    }

    /// The obstacle active at time `t`, if any.
    pub fn active_at(&self, t: Micros) -> Option<&Obstacle> {
        self.obstacles.iter().find(|o| t >= o.start_us && t < o.end_us)
    }

    /// Is `t` inside an autopilot zone?
    pub fn in_autopilot(&self, t: Micros) -> bool {
        self.active_at(t).map(|o| o.autopilot).unwrap_or(false)
    }

    pub fn is_finished(&self, t: Micros) -> bool {
        t >= self.duration_us
    }

    /// Load a course from an XML challenge file:
    /// ```xml
    /// <challenge name="custom">
    ///   <obstacle start="2" end="5" low="300" high="400"/>
    ///   <obstacle start="6" end="12" low="500" high="550" autopilot="true"/>
    /// </challenge>
    /// ```
    pub fn from_xml(xml: &str) -> Result<Course, String> {
        let root = XmlNode::parse(xml).map_err(|e| e.to_string())?;
        if root.name != "challenge" {
            return Err(format!("root must be <challenge>, got <{}>", root.name));
        }
        let name = root.attr("name").unwrap_or("custom").to_string();
        let mut obstacles = Vec::new();
        let mut max_end = 0;
        for (i, node) in root.children_named("obstacle").enumerate() {
            let get = |attr: &str| -> Result<f64, String> {
                node.attr(attr)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("obstacle #{}: missing/invalid {attr}", i + 1))
            };
            let start = get("start")?;
            let end = get("end")?;
            let low = get("low")?;
            let high = get("high")?;
            if end <= start || high < low {
                return Err(format!("obstacle #{}: inverted bounds", i + 1));
            }
            let autopilot = node.attr("autopilot").map(|v| v == "true").unwrap_or(false);
            let end_us = (end * MICROS_PER_SEC as f64) as Micros;
            obstacles.push(Obstacle {
                start_us: (start * MICROS_PER_SEC as f64) as Micros,
                end_us,
                gap_low: low,
                gap_high: high,
                autopilot,
            });
            max_end = max_end.max(end_us);
        }
        Ok(Course { name, obstacles, duration_us: max_end })
    }

    /// The four demo challenges at a given difficulty scale (peak tps).
    pub fn demo_set(scale_tps: f64) -> Vec<Course> {
        vec![
            Course::generate(
                "steps",
                ChallengeShape::Steps { levels: 5, low: scale_tps * 0.2, high: scale_tps, ascending: true },
                50.0,
                0.5,
            ),
            Course::generate(
                "sinusoidal",
                ChallengeShape::Sinusoidal { cycles: 3, mid: scale_tps * 0.5, amplitude: scale_tps * 0.3 },
                60.0,
                0.5,
            ),
            Course::generate(
                "peak",
                ChallengeShape::Peak { base: scale_tps * 0.3, peak: scale_tps * 0.9 },
                40.0,
                0.5,
            ),
            Course::generate(
                "tunnel",
                ChallengeShape::Tunnel { target: scale_tps * 0.6, half_width: scale_tps * 0.08 },
                40.0,
                0.5,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_ascend() {
        let c = Course::generate(
            "s",
            ChallengeShape::Steps { levels: 4, low: 100.0, high: 400.0, ascending: true },
            40.0,
            0.3,
        );
        assert_eq!(c.obstacles.len(), 4);
        let centers: Vec<f64> = c.obstacles.iter().map(Obstacle::center).collect();
        assert!(centers.windows(2).all(|w| w[0] < w[1]), "{centers:?}");
        assert!((centers[0] - 100.0).abs() < 1.0);
        assert!((centers[3] - 400.0).abs() < 1.0);
    }

    #[test]
    fn steps_descend() {
        let c = Course::generate(
            "s",
            ChallengeShape::Steps { levels: 3, low: 100.0, high: 300.0, ascending: false },
            30.0,
            0.3,
        );
        let centers: Vec<f64> = c.obstacles.iter().map(Obstacle::center).collect();
        assert!(centers.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn sinusoid_oscillates() {
        let c = Course::generate(
            "sin",
            ChallengeShape::Sinusoidal { cycles: 2, mid: 500.0, amplitude: 200.0 },
            60.0,
            0.3,
        );
        let centers: Vec<f64> = c.obstacles.iter().map(Obstacle::center).collect();
        let above = centers.iter().filter(|c| **c > 500.0).count();
        let below = centers.iter().filter(|c| **c < 500.0).count();
        assert!(above >= 4 && below >= 4, "above {above} below {below}");
        // Bounded by mid ± amplitude (+gap half-width slack).
        assert!(centers.iter().all(|c| *c >= 280.0 && *c <= 720.0), "{centers:?}");
    }

    #[test]
    fn peak_has_burst_in_middle() {
        let c = Course::generate("p", ChallengeShape::Peak { base: 200.0, peak: 800.0 }, 40.0, 0.3);
        assert_eq!(c.obstacles.len(), 3);
        assert!(c.obstacles[1].center() > c.obstacles[0].center() * 3.0);
        assert!((c.obstacles[0].center() - c.obstacles[2].center()).abs() < 1.0);
    }

    #[test]
    fn tunnel_is_autopilot_and_long() {
        let c = Course::generate("t", ChallengeShape::Tunnel { target: 500.0, half_width: 50.0 }, 30.0, 0.3);
        assert_eq!(c.obstacles.len(), 1);
        let o = c.obstacles[0];
        assert!(o.autopilot);
        assert!(c.in_autopilot(o.start_us + 1));
        assert!(!c.in_autopilot(0));
        assert!(o.end_us - o.start_us > 20 * MICROS_PER_SEC);
        assert!(o.contains(500.0) && !o.contains(560.0) && !o.contains(440.0));
    }

    #[test]
    fn active_at_lookup() {
        let c = Course::generate(
            "s",
            ChallengeShape::Steps { levels: 2, low: 100.0, high: 200.0, ascending: true },
            20.0,
            0.3,
        );
        assert!(c.active_at(0).is_none(), "lead-in has no obstacle");
        let mid_first = (c.obstacles[0].start_us + c.obstacles[0].end_us) / 2;
        assert_eq!(c.active_at(mid_first).unwrap().center(), c.obstacles[0].center());
        assert!(c.is_finished(c.duration_us));
        assert!(!c.is_finished(c.duration_us - 1));
    }

    #[test]
    fn xml_course() {
        let xml = r#"<challenge name="custom">
            <obstacle start="2" end="5" low="300" high="400"/>
            <obstacle start="6" end="12" low="500" high="550" autopilot="true"/>
        </challenge>"#;
        let c = Course::from_xml(xml).unwrap();
        assert_eq!(c.name, "custom");
        assert_eq!(c.obstacles.len(), 2);
        assert_eq!(c.duration_us, 12 * MICROS_PER_SEC);
        assert!(c.obstacles[1].autopilot);
        assert!(c.active_at(3 * MICROS_PER_SEC).unwrap().contains(350.0));
    }

    #[test]
    fn xml_course_errors() {
        assert!(Course::from_xml("<nope/>").is_err());
        assert!(Course::from_xml(r#"<challenge><obstacle start="5" end="2" low="1" high="2"/></challenge>"#).is_err());
        assert!(Course::from_xml(r#"<challenge><obstacle start="1" end="2" low="9" high="2"/></challenge>"#).is_err());
        assert!(Course::from_xml(r#"<challenge><obstacle start="1" end="2" low="1"/></challenge>"#).is_err());
    }

    #[test]
    fn demo_set_has_four_shapes() {
        let set = Course::demo_set(1000.0);
        let names: Vec<&str> = set.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["steps", "sinusoidal", "peak", "tunnel"]);
    }
}
