//! `bp-game`: the BenchPress game (§4 of the paper).
//!
//! "BenchPress is a game that allows users to control the behavior of
//! OLTP-Bench through its API." The character's height is the *measured*
//! throughput of the target DBMS; jumping requests a higher rate; gravity
//! decays the requested rate linearly to zero; obstacles are expected-
//! throughput ranges over time windows; crashing halts the benchmark and
//! resets the database.
//!
//! Modules: [`challenge`] (Steps / Sinusoidal / Peak / Tunnel courses, plus
//! XML-loaded custom ones), [`physics`] (jump + gravity), [`game`] (the
//! state machine with pause-to-change-mixture), [`session`] (backends:
//! deterministic simulation or the live control API; two-player
//! multi-tenancy), [`render`] (ASCII frames).

pub mod challenge;
pub mod game;
pub mod physics;
pub mod render;
pub mod session;

pub use challenge::{ChallengeShape, Course, Obstacle};
pub use game::{Game, GameEvent, Input, Menu, Screen};
pub use physics::{Character, PhysicsConfig};
pub use render::render;
pub use session::{chase_center_policy, ApiBackend, GameBackend, GameSession, SimBackend, TwoPlayerSession};
