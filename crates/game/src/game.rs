//! The BenchPress game state machine (§4, Fig. 2).
//!
//! Screens: select a benchmark (the character), select a DBMS (the stage),
//! play through the obstacle course, optionally pause to change the
//! workload mixture (Fig. 2d), crash (halting the benchmark and resetting
//! the database) or win.

use bp_core::MixturePreset;
use bp_util::clock::{Micros, MICROS_PER_SEC};

use crate::challenge::Course;
use crate::physics::{Character, PhysicsConfig};

/// Player input, one per tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Input {
    None,
    Jump,
    Dive,
    /// Pause and open the mixture dialog.
    Pause,
    /// Resume play (closing the dialog).
    Resume,
    /// While paused: pick a preset mixture.
    SelectPreset(MixturePreset),
    /// While paused: fully custom weights.
    SelectCustomMixture,
}

/// Game screens (Fig. 2a–2d).
#[derive(Debug, Clone, PartialEq)]
pub enum Screen {
    SelectBenchmark,
    SelectDbms,
    Playing,
    /// Mixture dialog open; the benchmark is paused (workers blocked).
    Paused,
    Crashed { at_us: Micros, obstacle_center: f64 },
    Won,
}

/// Events emitted by a tick, for the embedding session to act on.
#[derive(Debug, Clone, PartialEq)]
pub enum GameEvent {
    /// The benchmark must be paused (block all workers).
    PauseBenchmark,
    /// The benchmark must resume.
    ResumeBenchmark,
    /// Apply this preset mixture.
    ApplyPreset(MixturePreset),
    /// Game over: halt the benchmark and reset the database (§4.1.1).
    HaltAndReset,
    /// Course completed.
    Victory,
}

/// The core game: pure state, no IO.
#[derive(Debug, Clone)]
pub struct Game {
    pub benchmark: String,
    pub dbms: String,
    pub course: Course,
    pub character: Character,
    screen: Screen,
    /// Elapsed play time (pauses excluded), µs.
    t_us: Micros,
    score: u64,
    obstacles_cleared: usize,
    last_obstacle_idx: Option<usize>,
}

impl Game {
    pub fn new(benchmark: &str, dbms: &str, course: Course, physics: PhysicsConfig) -> Game {
        Game {
            benchmark: benchmark.to_string(),
            dbms: dbms.to_string(),
            course,
            character: Character::new(physics),
            screen: Screen::Playing,
            t_us: 0,
            score: 0,
            obstacles_cleared: 0,
            last_obstacle_idx: None,
        }
    }

    pub fn screen(&self) -> &Screen {
        &self.screen
    }

    pub fn elapsed_us(&self) -> Micros {
        self.t_us
    }

    pub fn score(&self) -> u64 {
        self.score
    }

    pub fn obstacles_cleared(&self) -> usize {
        self.obstacles_cleared
    }

    pub fn is_over(&self) -> bool {
        matches!(self.screen, Screen::Crashed { .. } | Screen::Won)
    }

    /// Requested rate the testbed should be driven at right now.
    pub fn requested_tps(&self) -> f64 {
        if self.screen == Screen::Paused {
            0.0
        } else {
            self.character.requested_tps
        }
    }

    /// Advance the game by `dt_us`, given the measured throughput reported
    /// by the testbed and the player's input. Returns events for the
    /// embedding session.
    pub fn tick(&mut self, dt_us: Micros, measured_tps: f64, input: Input) -> Vec<GameEvent> {
        let mut events = Vec::new();
        match self.screen {
            Screen::Playing => {}
            Screen::Paused => {
                match input {
                    Input::Resume => {
                        self.screen = Screen::Playing;
                        events.push(GameEvent::ResumeBenchmark);
                    }
                    Input::SelectPreset(p) => {
                        events.push(GameEvent::ApplyPreset(p));
                    }
                    _ => {}
                }
                return events;
            }
            _ => return events, // over / menus: nothing moves
        }

        // Input (ignored inside autopilot zones, §4.1.2).
        let autopilot = self.course.in_autopilot(self.t_us);
        if !autopilot {
            match input {
                Input::Jump => self.character.jump(),
                Input::Dive => self.character.dive(),
                Input::Pause => {
                    // "The user can pause at any moment in time to change
                    // the workload parameters" — OLTP-Bench temporarily
                    // blocks all threads.
                    self.screen = Screen::Paused;
                    events.push(GameEvent::PauseBenchmark);
                    return events;
                }
                _ => {}
            }
        }
        // Gravity always applies when there was no upward input.
        if !matches!(input, Input::Jump) {
            self.character.apply_gravity(dt_us);
        }

        self.character.observe(measured_tps);
        self.t_us += dt_us;
        self.score += dt_us / 1_000; // 1 point per millisecond survived

        // Collision: inside an obstacle window, the measured throughput
        // must be within the opening.
        let current_idx = self
            .course
            .obstacles
            .iter()
            .position(|o| self.t_us >= o.start_us && self.t_us < o.end_us);
        if let Some(idx) = current_idx {
            let o = self.course.obstacles[idx];
            if !o.contains(self.character.measured_tps) {
                self.screen = Screen::Crashed { at_us: self.t_us, obstacle_center: o.center() };
                events.push(GameEvent::HaltAndReset);
                return events;
            }
        }
        // Count cleared obstacles on edge transitions.
        if self.last_obstacle_idx.is_some() && current_idx != self.last_obstacle_idx {
            self.obstacles_cleared += 1;
            self.score += 1_000;
        }
        self.last_obstacle_idx = current_idx;

        if self.course.is_finished(self.t_us) {
            self.screen = Screen::Won;
            events.push(GameEvent::Victory);
        }
        events
    }
}

/// The menu flow (Fig. 2a / 2b): pick benchmark, then DBMS, then a course.
#[derive(Debug, Clone, Default)]
pub struct Menu {
    pub benchmarks: Vec<String>,
    pub dbms_list: Vec<String>,
    pub selected_benchmark: Option<String>,
    pub selected_dbms: Option<String>,
}

impl Menu {
    pub fn new(benchmarks: Vec<String>, dbms_list: Vec<String>) -> Menu {
        Menu { benchmarks, dbms_list, selected_benchmark: None, selected_dbms: None }
    }

    pub fn screen(&self) -> Screen {
        if self.selected_benchmark.is_none() {
            Screen::SelectBenchmark
        } else if self.selected_dbms.is_none() {
            Screen::SelectDbms
        } else {
            Screen::Playing
        }
    }

    pub fn pick_benchmark(&mut self, name: &str) -> Result<(), String> {
        if self.benchmarks.iter().any(|b| b == name) {
            self.selected_benchmark = Some(name.to_string());
            Ok(())
        } else {
            Err(format!("unknown benchmark {name}"))
        }
    }

    pub fn pick_dbms(&mut self, name: &str) -> Result<(), String> {
        if self.dbms_list.iter().any(|d| d == name) {
            self.selected_dbms = Some(name.to_string());
            Ok(())
        } else {
            Err(format!("unknown DBMS {name}"))
        }
    }
}

/// Seconds of play time, for display.
pub fn play_seconds(t_us: Micros) -> f64 {
    t_us as f64 / MICROS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::ChallengeShape;

    fn game() -> Game {
        let course = Course::generate(
            "steps",
            ChallengeShape::Steps { levels: 2, low: 100.0, high: 200.0, ascending: true },
            20.0,
            0.6,
        );
        Game::new(
            "voter",
            "mysql",
            course,
            PhysicsConfig { jump_tps: 50.0, gravity_tps_per_s: 20.0, max_tps: 500.0 },
        )
    }

    #[test]
    fn survives_when_tracking_gap() {
        let mut g = game();
        // Feed measured == obstacle center at all times.
        let mut t = 0u64;
        while !g.is_over() && t < 25_000_000 {
            // Collision is checked at the post-tick time, so feed the
            // measured value for t + dt.
            let measured = g
                .course
                .active_at(t + 100_000)
                .map(|o| o.center())
                .unwrap_or(100.0);
            g.tick(100_000, measured, Input::None);
            t += 100_000;
        }
        assert_eq!(*g.screen(), Screen::Won);
        assert!(g.obstacles_cleared() >= 1);
        assert!(g.score() > 0);
    }

    #[test]
    fn crashes_outside_gap() {
        let mut g = game();
        let start = g.course.obstacles[0].start_us;
        let mut events = Vec::new();
        let mut t = 0u64;
        while t <= start + 200_000 {
            // Measured far below every opening.
            events = g.tick(100_000, 1.0, Input::None);
            if g.is_over() {
                break;
            }
            t += 100_000;
        }
        assert!(matches!(g.screen(), Screen::Crashed { .. }), "{:?}", g.screen());
        assert!(events.contains(&GameEvent::HaltAndReset));
    }

    #[test]
    fn jump_and_gravity_shape_requested_rate() {
        let mut g = game();
        g.tick(100_000, 0.0, Input::Jump);
        assert_eq!(g.requested_tps(), 50.0);
        g.tick(1_000_000, 40.0, Input::None); // gravity 20 tps/s
        assert!((g.requested_tps() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn pause_blocks_and_preset_applies() {
        let mut g = game();
        let ev = g.tick(100_000, 0.0, Input::Pause);
        assert_eq!(ev, vec![GameEvent::PauseBenchmark]);
        assert_eq!(*g.screen(), Screen::Paused);
        assert_eq!(g.requested_tps(), 0.0);
        // Time does not advance while paused.
        let before = g.elapsed_us();
        let ev = g.tick(500_000, 0.0, Input::SelectPreset(MixturePreset::ReadOnly));
        assert_eq!(ev, vec![GameEvent::ApplyPreset(MixturePreset::ReadOnly)]);
        assert_eq!(g.elapsed_us(), before);
        let ev = g.tick(100_000, 0.0, Input::Resume);
        assert_eq!(ev, vec![GameEvent::ResumeBenchmark]);
        assert_eq!(*g.screen(), Screen::Playing);
    }

    #[test]
    fn autopilot_ignores_input() {
        let course = Course::generate(
            "t",
            ChallengeShape::Tunnel { target: 200.0, half_width: 50.0 },
            20.0,
            0.3,
        );
        let mut g = Game::new("ycsb", "oracle", course, PhysicsConfig::default());
        // Advance into the tunnel.
        let tunnel_start = g.course.obstacles[0].start_us;
        while g.elapsed_us() <= tunnel_start {
            g.tick(100_000, 200.0, Input::None);
        }
        let req_before = g.requested_tps();
        g.tick(100_000, 200.0, Input::Jump); // ignored
        assert_eq!(g.requested_tps(), (req_before - 0.1 * PhysicsConfig::default().gravity_tps_per_s).max(0.0));
        // Pause is also ignored inside the tunnel.
        g.tick(100_000, 200.0, Input::Pause);
        assert_eq!(*g.screen(), Screen::Playing);
    }

    #[test]
    fn menu_flow() {
        let mut m = Menu::new(vec!["tpcc".into(), "voter".into()], vec!["mysql".into()]);
        assert_eq!(m.screen(), Screen::SelectBenchmark);
        assert!(m.pick_benchmark("nope").is_err());
        m.pick_benchmark("voter").unwrap();
        assert_eq!(m.screen(), Screen::SelectDbms);
        m.pick_dbms("mysql").unwrap();
        assert_eq!(m.screen(), Screen::Playing);
    }

    #[test]
    fn no_ticks_after_game_over() {
        let mut g = game();
        // Force a crash.
        while !g.is_over() {
            g.tick(100_000, 0.0, Input::None);
        }
        let score = g.score();
        let ev = g.tick(100_000, 150.0, Input::Jump);
        assert!(ev.is_empty());
        assert_eq!(g.score(), score);
    }
}
