//! Game sessions: wiring the game loop to a backend testbed.
//!
//! The demo's architecture is: browser game → Web app server → OLTP-Bench
//! control API → DBMS. Here the [`GameBackend`] trait abstracts the right
//! side of that chain; two implementations are provided:
//!
//! * [`SimBackend`]: the deterministic capacity-model DBMS (fast, perfect
//!   for tests and autopilot experiments);
//! * [`ApiBackend`]: drives a *live* workload through [`bp_api::ApiServer`]
//!   requests, exactly like the JavaScript game does over REST.
//!
//! [`TwoPlayerSession`] runs two characters against one shared simulated
//! server, letting each player feel the other's load (§4.3).

use std::sync::Arc;

use bp_api::{ApiServer, Request};
use bp_core::{CapacityModel, MixturePreset, Phase, PhaseScript, Rate, SimDbms, SimServer, TransactionType};
use bp_replay::{Artifact, ARTIFACT_VERSION};
use bp_util::clock::Micros;
use bp_util::json::Json;

use crate::challenge::Course;
use crate::game::{Game, GameEvent, Input};
use crate::physics::PhysicsConfig;

/// What the game needs from the testbed.
pub trait GameBackend {
    /// Push the requested rate; returns the measured throughput for the
    /// elapsed interval.
    fn exchange(&mut self, requested_tps: f64, dt_us: Micros) -> f64;

    /// Pause / resume the benchmark (blocks the workers).
    fn set_paused(&mut self, paused: bool);

    /// Apply a preset mixture.
    fn apply_preset(&mut self, preset: MixturePreset);

    /// Game over: halt the benchmark and reset the database.
    fn halt_and_reset(&mut self);

    /// One-line per-stage latency summary from the testbed's span flight
    /// recorder, if the backend has one. The analytic sim backend does not.
    fn span_summary(&self) -> Option<String> {
        None
    }

    /// Post-mortem bottleneck findings from the testbed's doctor, one line
    /// per finding. Backends without telemetry return nothing.
    fn doctor_findings(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Deterministic backend over the analytic capacity model.
pub struct SimBackend {
    dbms: SimDbms,
    types: Vec<TransactionType>,
    mixture: bp_core::Mixture,
    paused: bool,
    pub resets: usize,
}

impl SimBackend {
    pub fn new(model: CapacityModel, types: Vec<TransactionType>, seed: u64) -> SimBackend {
        let mixture = bp_core::Mixture::default_of(&types);
        SimBackend { dbms: SimDbms::new(model, seed), types, mixture, paused: false, resets: 0 }
    }
}

impl GameBackend for SimBackend {
    fn exchange(&mut self, requested_tps: f64, dt_us: Micros) -> f64 {
        if self.paused {
            return 0.0;
        }
        let dt_s = dt_us as f64 / 1_000_000.0;
        self.dbms.tick(
            requested_tps,
            self.mixture.write_share(&self.types),
            self.mixture.mean_cost(&self.types),
            dt_s,
        )
    }

    fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    fn apply_preset(&mut self, preset: MixturePreset) {
        self.mixture = preset.build(&self.types);
    }

    fn halt_and_reset(&mut self) {
        self.dbms.reset();
        self.resets += 1;
    }
}

/// Live backend: every game action becomes a control-API request, and the
/// measured throughput comes from the API's status feedback — the same
/// contract the browser game uses.
pub struct ApiBackend {
    api: Arc<ApiServer>,
    workload_id: String,
}

impl ApiBackend {
    pub fn new(api: Arc<ApiServer>, workload_id: &str) -> ApiBackend {
        ApiBackend { api, workload_id: workload_id.to_string() }
    }

    fn post(&self, action: &str, body: Json) {
        let path = format!("/workloads/{}/{}", self.workload_id, action);
        let _ = self.api.handle(&Request::post(&path, body));
    }
}

impl GameBackend for ApiBackend {
    fn exchange(&mut self, requested_tps: f64, _dt_us: Micros) -> f64 {
        self.post("rate", Json::obj().set("tps", requested_tps));
        let path = format!("/workloads/{}", self.workload_id);
        let resp = self.api.handle(&Request::get(&path));
        resp.body
            .get("status")
            .and_then(|s| s.get("throughput"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    }

    fn set_paused(&mut self, paused: bool) {
        self.post(if paused { "pause" } else { "resume" }, Json::obj());
    }

    fn apply_preset(&mut self, preset: MixturePreset) {
        let name = match preset {
            MixturePreset::Default => "default",
            MixturePreset::ReadOnly => "read_only",
            MixturePreset::SuperWrites => "super_writes",
        };
        self.post("mixture", Json::obj().set("preset", name));
    }

    fn halt_and_reset(&mut self) {
        self.post("reset", Json::obj());
    }

    fn span_summary(&self) -> Option<String> {
        let resp = self.api.handle(&Request::get("/trace/summary"));
        resp.body
            .get("workloads")?
            .as_arr()?
            .iter()
            .find(|w| w.get("id").and_then(Json::as_str) == Some(self.workload_id.as_str()))?
            .get("line")?
            .as_str()
            .map(str::to_string)
    }

    fn doctor_findings(&self) -> Vec<String> {
        let path = format!("/doctor?workload={}", self.workload_id);
        let resp = self.api.handle(&Request::get(&path));
        let Some(findings) = resp.body.get("findings").and_then(Json::as_arr) else {
            return Vec::new();
        };
        findings
            .iter()
            .filter_map(|f| {
                let bottleneck = f.get("bottleneck")?.as_str()?;
                let evidence = f.get("evidence").and_then(Json::as_str).unwrap_or("");
                Some(format!("{bottleneck}: {evidence}"))
            })
            .collect()
    }
}

/// A single-player session: game + backend, stepped tick by tick.
pub struct GameSession<B: GameBackend> {
    pub game: Game,
    pub backend: B,
    /// One summary line per finished run (crash or victory), pulled from
    /// the backend's span recorder when it has one.
    pub span_log: Vec<String>,
    /// Bottleneck post-mortem lines from the testbed's doctor, captured at
    /// crash time (before the reset wipes the telemetry).
    pub doctor_log: Vec<String>,
    /// `(play_time_us, requested_tps)` per tick — the raw material for
    /// saving the played run as a replayable scenario.
    pub rate_log: Vec<(Micros, f64)>,
}

impl<B: GameBackend> GameSession<B> {
    pub fn new(game: Game, backend: B) -> GameSession<B> {
        GameSession { game, backend, span_log: Vec::new(), doctor_log: Vec::new(), rate_log: Vec::new() }
    }

    /// One game tick: exchange load with the backend, advance the game,
    /// apply resulting events to the backend. Returns the events.
    pub fn tick(&mut self, dt_us: Micros, input: Input) -> Vec<GameEvent> {
        let measured = self.backend.exchange(self.game.requested_tps(), dt_us);
        let events = self.game.tick(dt_us, measured, input);
        for e in &events {
            match e {
                GameEvent::PauseBenchmark => self.backend.set_paused(true),
                GameEvent::ResumeBenchmark => self.backend.set_paused(false),
                GameEvent::ApplyPreset(p) => self.backend.apply_preset(*p),
                GameEvent::HaltAndReset => {
                    // Snapshot the run's stage latencies and the doctor's
                    // post-mortem before the reset wipes the benchmark state.
                    self.log_span_summary("game-over");
                    self.doctor_log.extend(self.backend.doctor_findings());
                    self.backend.halt_and_reset();
                }
                GameEvent::Victory => self.log_span_summary("victory"),
            }
        }
        // Log the rate curve at distinct play-time points (paused ticks
        // don't advance time and would duplicate the last point).
        let t = self.game.elapsed_us();
        if self.rate_log.last().is_none_or(|(lt, _)| *lt < t) {
            self.rate_log.push((t, self.game.requested_tps()));
        }
        events
    }

    /// Compress the played rate curve into a `PhaseScript`: consecutive
    /// ticks whose requested rate stays near the running phase mean merge
    /// into one phase at that mean. The merge band is sized to the
    /// character's jump impulse, so normal jump/gravity oscillation around
    /// a level folds into one phase while level changes split.
    pub fn scenario_script(&self) -> PhaseScript {
        let band = (1.5 * self.game.character.config().jump_tps).max(5.0);
        let mut phases = Vec::new();
        let mut iter = self.rate_log.iter().copied();
        let Some((mut seg_t, first_rate)) = iter.next() else {
            return PhaseScript::new(phases);
        };
        let mut sum = first_rate;
        let mut n = 1u64;
        let mut last_t = seg_t;
        for (t, rate) in iter {
            last_t = t;
            let mean = sum / n as f64;
            if (rate - mean).abs() <= (0.15 * mean.abs()).max(band) {
                sum += rate;
                n += 1;
                continue;
            }
            let duration_s = ((t - seg_t) as f64 / 1e6).max(0.1);
            phases.push(Phase::new(Rate::Limited(mean), duration_s));
            (seg_t, sum, n) = (t, rate, 1);
        }
        let duration_s = ((last_t - seg_t) as f64 / 1e6).max(0.1);
        phases.push(Phase::new(Rate::Limited(sum / n as f64), duration_s));
        PhaseScript::new(phases)
    }

    /// Save the played run as a script-only replay artifact: replaying it
    /// regenerates the scenario's schedule from `seed`, so a good game can
    /// be re-run as a benchmark workload (or shared as text).
    pub fn scenario_artifact(&self, seed: u64, types: &[&str]) -> Artifact {
        Artifact {
            version: ARTIFACT_VERSION,
            workload: self.game.benchmark.clone(),
            personality: self.game.dbms.clone(),
            seed,
            terminals: 4,
            tenant: 0,
            unlimited_rate: 50_000.0,
            types: types.iter().map(|s| s.to_string()).collect(),
            script: self.scenario_script(),
            schedule: Vec::new(),
            trace: Vec::new(),
        }
    }

    fn log_span_summary(&mut self, event: &str) {
        if let Some(line) = self.backend.span_summary() {
            self.span_log.push(format!("{event} {line}"));
        }
    }

    /// Run with a scripted input policy until the game ends or `max_ticks`.
    pub fn run_policy(
        &mut self,
        dt_us: Micros,
        max_ticks: usize,
        mut policy: impl FnMut(&Game) -> Input,
    ) -> &Game {
        for _ in 0..max_ticks {
            if self.game.is_over() {
                break;
            }
            let input = policy(&self.game);
            self.tick(dt_us, input);
        }
        &self.game
    }
}

/// Two players, one shared simulated DBMS instance: each player's load
/// shrinks the capacity available to the other (multi-tenancy, §2.2.3/§4.3).
pub struct TwoPlayerSession {
    pub games: [Game; 2],
    server: SimServer,
    types: Vec<TransactionType>,
    mixtures: [bp_core::Mixture; 2],
}

impl TwoPlayerSession {
    pub fn new(
        model: CapacityModel,
        types: Vec<TransactionType>,
        courses: [Course; 2],
        physics: PhysicsConfig,
        seed: u64,
    ) -> TwoPlayerSession {
        let mixture = bp_core::Mixture::default_of(&types);
        TwoPlayerSession {
            games: [
                Game::new("p1", model.name, courses[0].clone(), physics),
                Game::new("p2", model.name, courses[1].clone(), physics),
            ],
            server: SimServer::new(model, 2, seed),
            types,
            mixtures: [mixture.clone(), mixture],
        }
    }

    /// Tick both players with their inputs.
    pub fn tick(&mut self, dt_us: Micros, inputs: [Input; 2]) {
        let dt_s = dt_us as f64 / 1_000_000.0;
        let demands: Vec<(f64, f64, f64)> = (0..2)
            .map(|i| {
                (
                    self.games[i].requested_tps(),
                    self.mixtures[i].write_share(&self.types),
                    self.mixtures[i].mean_cost(&self.types),
                )
            })
            .collect();
        let delivered = self.server.tick(&demands, dt_s);
        for i in 0..2 {
            let events = self.games[i].tick(dt_us, delivered[i], inputs[i]);
            for e in events {
                if let GameEvent::ApplyPreset(p) = e {
                    self.mixtures[i] = p.build(&self.types);
                }
            }
        }
    }
}

/// Helper: the ideal requested rate to hit the next obstacle's center —
/// the policy used by autopilot demos and the physics tests.
pub fn chase_center_policy(game: &Game) -> Input {
    let t = game.elapsed_us();
    // Look a little ahead so we climb before the window opens.
    let target = game
        .course
        .active_at(t)
        .or_else(|| game.course.active_at(t + 2_000_000))
        .map(|o| o.center());
    match target {
        Some(target) => {
            let requested = game.character.requested_tps;
            if requested < target - game.character.config().jump_tps * 0.6 {
                Input::Jump
            } else if requested > target + game.character.config().jump_tps * 0.6 {
                Input::Dive
            } else if requested < target {
                // Counteract gravity with small hops.
                Input::Jump
            } else {
                Input::None
            }
        }
        None => Input::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::ChallengeShape;

    fn types() -> Vec<TransactionType> {
        vec![
            TransactionType::new("r", 50.0, true),
            TransactionType::new("w", 50.0, false),
        ]
    }

    fn quiet_model() -> CapacityModel {
        CapacityModel { jitter: 0.0, ..CapacityModel::mysql_like() }
    }

    fn steps_course(max: f64) -> Course {
        Course::generate(
            "steps",
            ChallengeShape::Steps { levels: 3, low: max * 0.2, high: max * 0.5, ascending: true },
            30.0,
            0.8,
        )
    }

    #[test]
    fn sim_session_with_chase_policy_wins_easy_course() {
        let course = steps_course(1_000.0);
        let game = Game::new("ycsb", "mysql", course, PhysicsConfig {
            jump_tps: 60.0,
            gravity_tps_per_s: 40.0,
            max_tps: 1_000.0,
        });
        let backend = SimBackend::new(quiet_model(), types(), 7);
        let mut session = GameSession::new(game, backend);
        session.run_policy(100_000, 400, chase_center_policy);
        assert_eq!(*session.game.screen(), crate::game::Screen::Won, "score {}", session.game.score());
    }

    #[test]
    fn doing_nothing_crashes() {
        let course = steps_course(1_000.0);
        let game = Game::new("ycsb", "mysql", course, PhysicsConfig::default());
        let backend = SimBackend::new(quiet_model(), types(), 7);
        let mut session = GameSession::new(game, backend);
        session.run_policy(100_000, 400, |_| Input::None);
        assert!(matches!(session.game.screen(), crate::game::Screen::Crashed { .. }));
        assert_eq!(session.backend.resets, 1, "crash must reset the database");
    }

    #[test]
    fn derby_fails_tunnel_that_oracle_passes() {
        // §4.3: "certain DBMSs cannot pass the tunnel tests, since they
        // produce oscillating throughputs".
        let tunnel = |name: &str| {
            Course::generate(
                "tunnel",
                ChallengeShape::Tunnel { target: 300.0, half_width: 45.0 },
                30.0,
                0.3,
            )
            .obstacles
            .clone()
            .into_iter()
            .fold(
                Course { name: name.into(), obstacles: vec![], duration_us: 30_000_000 },
                |mut c, o| {
                    c.obstacles.push(o);
                    c
                },
            )
        };
        let run = |model: CapacityModel| {
            let game = Game::new("ycsb", model.name, tunnel(model.name), PhysicsConfig {
                jump_tps: 60.0,
                gravity_tps_per_s: 40.0,
                max_tps: 1_000.0,
            });
            let backend = SimBackend::new(model, types(), 99);
            let mut session = GameSession::new(game, backend);
            session.run_policy(100_000, 400, chase_center_policy);
            session.game.screen().clone()
        };
        let oracle = run(CapacityModel::oracle_like());
        let derby = run(CapacityModel::derby_like());
        assert_eq!(oracle, crate::game::Screen::Won, "oracle should pass the tunnel");
        assert!(
            matches!(derby, crate::game::Screen::Crashed { .. }),
            "derby's oscillation should fail the tunnel: {derby:?}"
        );
    }

    #[test]
    fn two_players_interfere() {
        let model = quiet_model();
        let cap = model.capacity(0.5, 1.0);
        // Both players hold a demand near the full capacity: neither can
        // get it all once the other joins.
        let course = Course { name: "open".into(), obstacles: vec![], duration_us: 60_000_000 };
        let mut two = TwoPlayerSession::new(
            model,
            types(),
            [course.clone(), course],
            PhysicsConfig { jump_tps: 200.0, gravity_tps_per_s: 0.0, max_tps: 5_000.0 },
            5,
        );
        two.games[0].character.set_requested(cap);
        two.games[1].character.set_requested(0.0);
        for _ in 0..100 {
            two.tick(100_000, [Input::None, Input::None]);
        }
        let solo = two.games[0].character.measured_tps;
        two.games[1].character.set_requested(cap);
        for _ in 0..100 {
            two.tick(100_000, [Input::None, Input::None]);
        }
        let contended = two.games[0].character.measured_tps;
        assert!(
            contended < solo * 0.7,
            "player 2's load should slow player 1: solo {solo:.0} contended {contended:.0}"
        );
    }

    #[test]
    fn crash_logs_span_summary() {
        // A backend with a span recorder gets its per-stage summary logged
        // when the run ends.
        struct Summarizing(SimBackend);
        impl GameBackend for Summarizing {
            fn exchange(&mut self, tps: f64, dt_us: Micros) -> f64 {
                self.0.exchange(tps, dt_us)
            }
            fn set_paused(&mut self, p: bool) {
                self.0.set_paused(p)
            }
            fn apply_preset(&mut self, p: MixturePreset) {
                self.0.apply_preset(p)
            }
            fn halt_and_reset(&mut self) {
                self.0.halt_and_reset()
            }
            fn span_summary(&self) -> Option<String> {
                Some("spans=42 queue p50/p95/p99=1/2/3µs".into())
            }
            fn doctor_findings(&self) -> Vec<String> {
                vec!["lock_contention: p99 rose 8x at t=12s".into()]
            }
        }
        let course = steps_course(1_000.0);
        let game = Game::new("ycsb", "mysql", course, PhysicsConfig::default());
        let backend = Summarizing(SimBackend::new(quiet_model(), types(), 7));
        let mut session = GameSession::new(game, backend);
        session.run_policy(100_000, 400, |_| Input::None);
        assert_eq!(session.backend.0.resets, 1);
        assert_eq!(session.span_log.len(), 1);
        assert!(session.span_log[0].starts_with("game-over spans=42"), "{:?}", session.span_log);
        assert_eq!(session.doctor_log.len(), 1, "crash captures the doctor post-mortem");
        assert!(session.doctor_log[0].starts_with("lock_contention:"), "{:?}", session.doctor_log);
    }

    #[test]
    fn api_backend_span_summary_via_trace_endpoint() {
        use bp_core::{ControlState, Controller, Rate, RequestQueue, StatsCollector};
        use bp_obs::{ObsConfig, Span, SpanOutcome, SpanRecorder};
        use bp_util::clock::sim_clock;

        let (_, clock) = sim_clock();
        let ts = vec![TransactionType::new("T", 100.0, true)];
        let mixture = bp_core::Mixture::default_of(&ts);
        let state = ControlState::new(Rate::Limited(50.0), mixture, 1e4);
        let queue = Arc::new(RequestQueue::new(clock.clone()));
        let stats = Arc::new(StatsCollector::new(clock, &["T"]));
        let db = bp_storage::Database::new(bp_storage::Personality::test());
        let rec = Arc::new(SpanRecorder::new(ObsConfig::default()));
        rec.record(Span {
            trace_id: bp_obs::trace_id(42, 0),
            seq: 0,
            submitted_us: 0,
            dequeued_us: 10,
            end_us: 100,
            lock_wait_us: 5,
            commit_us: 5,
            tenant: 0,
            phase: 0,
            txn_type: 0,
            retries: 0,
            outcome: SpanOutcome::Committed,
        });
        let c = Controller::new(state, queue, stats, db, ts, "w").with_spans(rec);
        let api = Arc::new(ApiServer::new());
        api.register("w", c);
        let backend = ApiBackend::new(api, "w");
        let line = backend.span_summary().expect("summary line");
        assert!(line.contains("spans=1"), "{line}");
    }

    #[test]
    fn played_run_saves_as_replayable_scenario() {
        let course = steps_course(1_000.0);
        let game = Game::new("ycsb", "mysql", course, PhysicsConfig {
            jump_tps: 60.0,
            gravity_tps_per_s: 40.0,
            max_tps: 1_000.0,
        });
        let backend = SimBackend::new(quiet_model(), types(), 7);
        let mut session = GameSession::new(game, backend);
        session.run_policy(100_000, 400, chase_center_policy);

        let ticks = session.rate_log.len();
        assert!(ticks > 50, "rate log should cover the run: {ticks}");
        let script = session.scenario_script();
        assert!(!script.phases.is_empty());
        assert!(
            script.phases.len() * 4 < ticks,
            "phases ({}) should compress ticks ({ticks})",
            script.phases.len()
        );
        // Total scripted time tracks the played time.
        let scripted: f64 = script.phases.iter().map(|p| p.duration_s).sum();
        let played = session.game.elapsed_us() as f64 / 1e6;
        assert!((scripted - played).abs() < 1.0, "scripted {scripted} played {played}");

        // The artifact round-trips through text and stays replayable.
        let artifact = session.scenario_artifact(42, &["r", "w"]);
        let text = artifact.to_text();
        let parsed = Artifact::from_text(&text).expect("parse scenario artifact");
        assert_eq!(parsed.workload, "ycsb");
        assert_eq!(parsed.personality, "mysql");
        assert!(parsed.schedule.is_empty(), "scenario artifacts are script-only");
        assert_eq!(parsed.script, artifact.script);
    }

    #[test]
    fn preset_event_reaches_backend() {
        let course = Course { name: "open".into(), obstacles: vec![], duration_us: 60_000_000 };
        let game = Game::new("ycsb", "mysql", course, PhysicsConfig::default());
        let backend = SimBackend::new(quiet_model(), types(), 3);
        let mut session = GameSession::new(game, backend);
        session.tick(100_000, Input::Pause);
        session.tick(100_000, Input::SelectPreset(MixturePreset::ReadOnly));
        assert_eq!(session.backend.mixture.write_share(&types()), 0.0);
        session.tick(100_000, Input::Resume);
        assert!(!session.backend.paused);
    }
}
