//! ASCII renderer for the game (the demo's visuals, in a terminal).
//!
//! Renders a side-scrolling window: time on the X axis, throughput on the
//! Y axis, pipes (`#`) for obstacles with an opening, and `@` for the
//! character at the measured throughput.

use bp_util::clock::{Micros, MICROS_PER_SEC};

use crate::game::{Game, Screen};

/// Render a frame of `width`×`height` characters covering `window_s`
/// seconds ahead of the character.
pub fn render(game: &Game, width: usize, height: usize, window_s: f64) -> String {
    let width = width.max(16);
    let height = height.max(8);
    let max_tps = game.character.config().max_tps;
    let t0 = game.elapsed_us();
    let window_us = (window_s * MICROS_PER_SEC as f64) as Micros;

    let mut grid = vec![vec![' '; width]; height];

    // Obstacles: columns where an obstacle window covers that time.
    for (x, col) in grid.iter_mut().enumerate().skip(1) {
        let t = t0 + (x as u64 * window_us) / width as u64;
        if let Some(o) = game.course.active_at(t) {
            for (y, cell) in col.iter_mut().enumerate() {
                // y=0 is the top.
                let tps = max_tps * (1.0 - y as f64 / (height - 1) as f64);
                if !o.contains(tps) {
                    *cell = if o.autopilot { '=' } else { '#' };
                }
            }
        }
    }

    // Character at x=0 column, at the measured height.
    let frac = game.character.height_fraction();
    let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
    grid[y.min(height - 1)][0] = '@';

    let mut out = String::with_capacity((width + 1) * (height + 2));
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    let status = match game.screen() {
        Screen::Playing => format!(
            "[{} on {}] t={:.1}s req={:.0}tps meas={:.0}tps score={}",
            game.benchmark,
            game.dbms,
            game.elapsed_us() as f64 / MICROS_PER_SEC as f64,
            game.character.requested_tps,
            game.character.measured_tps,
            game.score()
        ),
        Screen::Paused => "[PAUSED] choose mixture: default / read-only / super-writes / custom".into(),
        Screen::Crashed { at_us, obstacle_center } => format!(
            "[GAME OVER] crashed at {:.1}s (needed ~{obstacle_center:.0} tps) — benchmark halted, database reset",
            *at_us as f64 / MICROS_PER_SEC as f64
        ),
        Screen::Won => format!("[YOU WIN] score={} obstacles={}", game.score(), game.obstacles_cleared()),
        other => format!("[{other:?}]"),
    };
    out.push_str(&status);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::{ChallengeShape, Course};
    use crate::game::Input;
    use crate::physics::PhysicsConfig;

    fn game() -> Game {
        let course = Course::generate(
            "steps",
            ChallengeShape::Steps { levels: 2, low: 200.0, high: 400.0, ascending: true },
            20.0,
            0.4,
        );
        Game::new("voter", "mysql", course, PhysicsConfig { max_tps: 1_000.0, ..Default::default() })
    }

    #[test]
    fn frame_dimensions() {
        let g = game();
        let frame = render(&g, 40, 12, 10.0);
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines.len(), 13); // 12 rows + status
        assert!(lines[..12].iter().all(|l| l.chars().count() == 40));
    }

    #[test]
    fn character_rendered_at_height() {
        let mut g = game();
        g.character.observe(500.0); // half height
        let frame = render(&g, 30, 11, 10.0);
        let lines: Vec<&str> = frame.lines().collect();
        // Row 5 of 0..=10 is the midpoint.
        assert_eq!(lines[5].chars().next(), Some('@'));
    }

    #[test]
    fn obstacles_rendered_with_gap() {
        let g = game();
        let frame = render(&g, 60, 20, 25.0);
        assert!(frame.contains('#'), "no pipes rendered:\n{frame}");
        // There must be gap cells in obstacle columns (not a solid wall).
        let lines: Vec<&str> = frame.lines().collect();
        let mut has_gap_column = false;
        for x in 1..60 {
            let column: Vec<char> = lines[..20].iter().filter_map(|l| l.chars().nth(x)).collect();
            let pipes = column.iter().filter(|c| **c == '#').count();
            if pipes > 0 && pipes < 20 {
                has_gap_column = true;
            }
        }
        assert!(has_gap_column);
    }

    #[test]
    fn status_lines() {
        let mut g = game();
        assert!(render(&g, 30, 10, 5.0).contains("[voter on mysql]"));
        g.tick(1_000, 0.0, Input::Pause);
        assert!(render(&g, 30, 10, 5.0).contains("PAUSED"));
    }
}
