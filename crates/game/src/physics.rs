//! Game physics (§4.1): jumps and simulated gravity in throughput space.
//!
//! The player's input sets the *requested* throughput; the character's
//! height tracks only the *measured* throughput the DBMS actually delivers.
//! A jump raises the requested rate; without input, gravity decreases the
//! requested rate linearly until it reaches 0 tx/s and the character falls
//! to the floor.

use bp_util::clock::Micros;

/// Physics configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicsConfig {
    /// Requested-rate increase per jump (tx/s).
    pub jump_tps: f64,
    /// Linear gravity decay of the requested rate (tx/s per second).
    pub gravity_tps_per_s: f64,
    /// Maximum requestable rate (the top of the screen).
    pub max_tps: f64,
}

impl Default for PhysicsConfig {
    fn default() -> Self {
        PhysicsConfig { jump_tps: 120.0, gravity_tps_per_s: 180.0, max_tps: 2_000.0 }
    }
}

/// The character's control state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Character {
    /// Requested throughput (what the player asks the DBMS for).
    pub requested_tps: f64,
    /// Measured throughput (where the character actually is).
    pub measured_tps: f64,
    config: PhysicsConfig,
}

impl Character {
    pub fn new(config: PhysicsConfig) -> Character {
        Character { requested_tps: 0.0, measured_tps: 0.0, config }
    }

    pub fn config(&self) -> PhysicsConfig {
        self.config
    }

    /// Jump: request a higher throughput rate (§4.1 "A jump requests a
    /// higher throughput rate and makes the game character move upwards").
    pub fn jump(&mut self) {
        self.requested_tps = (self.requested_tps + self.config.jump_tps).min(self.config.max_tps);
    }

    /// Dive: explicitly request a lower rate (the "manual decrease" setup
    /// the demo mentions as an alternative to gravity).
    pub fn dive(&mut self) {
        self.requested_tps = (self.requested_tps - self.config.jump_tps).max(0.0);
    }

    /// Set an absolute requested rate (autopilot input).
    pub fn set_requested(&mut self, tps: f64) {
        self.requested_tps = tps.clamp(0.0, self.config.max_tps);
    }

    /// Apply gravity over `dt_us`: the requested throughput decreases
    /// linearly until reaching 0 tx/s.
    pub fn apply_gravity(&mut self, dt_us: Micros) {
        let dt_s = dt_us as f64 / 1_000_000.0;
        self.requested_tps = (self.requested_tps - self.config.gravity_tps_per_s * dt_s).max(0.0);
    }

    /// Record the measured throughput reported by the testbed.
    pub fn observe(&mut self, measured_tps: f64) {
        self.measured_tps = measured_tps.max(0.0);
    }

    /// Character height as a fraction of the screen (0 = floor, 1 = top).
    pub fn height_fraction(&self) -> f64 {
        (self.measured_tps / self.config.max_tps).clamp(0.0, 1.0)
    }

    /// On the floor: the DBMS delivers (essentially) nothing.
    pub fn on_floor(&self) -> bool {
        self.measured_tps < self.config.max_tps * 0.005
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn character() -> Character {
        Character::new(PhysicsConfig { jump_tps: 100.0, gravity_tps_per_s: 200.0, max_tps: 1_000.0 })
    }

    #[test]
    fn jump_raises_requested_only() {
        let mut c = character();
        c.jump();
        assert_eq!(c.requested_tps, 100.0);
        assert_eq!(c.measured_tps, 0.0, "character moves only with measured tps");
        c.jump();
        assert_eq!(c.requested_tps, 200.0);
    }

    #[test]
    fn jump_capped_at_max() {
        let mut c = character();
        for _ in 0..50 {
            c.jump();
        }
        assert_eq!(c.requested_tps, 1_000.0);
    }

    #[test]
    fn gravity_decays_linearly_to_zero() {
        let mut c = character();
        c.set_requested(500.0);
        c.apply_gravity(1_000_000); // 1s at 200 tps/s
        assert!((c.requested_tps - 300.0).abs() < 1e-9);
        c.apply_gravity(2_000_000);
        assert_eq!(c.requested_tps, 0.0, "decays to 0 and stops");
    }

    #[test]
    fn dive_lowers_requested() {
        let mut c = character();
        c.set_requested(500.0);
        c.dive();
        assert_eq!(c.requested_tps, 400.0);
        c.set_requested(50.0);
        c.dive();
        assert_eq!(c.requested_tps, 0.0);
    }

    #[test]
    fn height_follows_measured() {
        let mut c = character();
        c.set_requested(900.0);
        c.observe(450.0);
        assert!((c.height_fraction() - 0.45).abs() < 1e-9);
        assert!(!c.on_floor());
        c.observe(1.0);
        assert!(c.on_floor());
    }

    #[test]
    fn fractional_gravity_steps() {
        let mut c = character();
        c.set_requested(100.0);
        for _ in 0..10 {
            c.apply_gravity(100_000); // 10 × 0.1s = 1s total
        }
        assert!((c.requested_tps - (100.0 - 200.0 * 1.0)).abs() < 1e-9 || c.requested_tps == 0.0);
        assert_eq!(c.requested_tps, 0.0);
    }
}
