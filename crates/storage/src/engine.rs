//! The embedded database engine: catalog, sessions and transactions.
//!
//! A [`Database`] is shared across worker threads via `Arc`; each worker
//! opens a [`Session`] (the JDBC-connection analogue) and runs transactions
//! through it. Isolation is strict two-phase locking with multigranularity
//! intention locks (see [`crate::lock`]); atomicity comes from an undo log
//! applied on rollback. Every operation charges the personality's service
//! cost so that contention, commit pressure and IO behave like a real DBMS
//! under the workloads the testbed drives.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use bp_chaos::{ChaosController, FaultKind};
use bp_obs::{EventJournal, Severity};
use bp_util::sync::RwLock;

use bp_util::rng::Rng;

use crate::bufferpool::BufferPool;
use crate::error::{Result, StorageError};
use crate::lock::{LockManager, LockMode, LockTarget, TxnId};
use crate::metrics::ServerMetrics;
use crate::personality::{apply_delay, Personality};
use crate::recovery::{
    encode_row, CheckpointStats, CrashPoint, RecoveryReport, RecoveryStats, RecoveryStatus,
    RedoOp, RedoRecord,
};
use crate::schema::{IndexDef, TableSchema};
use crate::table::{RowId, Table};
use crate::value::{Row, Value};
use crate::wal::Wal;

#[derive(Default)]
struct Catalog {
    by_name: HashMap<String, Arc<Table>>,
    order: Vec<String>,
}

/// The shared database instance.
pub struct Database {
    catalog: RwLock<Catalog>,
    locks: LockManager,
    wal: Wal,
    pool: BufferPool,
    metrics: Arc<ServerMetrics>,
    chaos: Arc<ChaosController>,
    journal: Arc<EventJournal>,
    personality: Personality,
    next_txn: AtomicU64,
    next_table_id: AtomicU32,
    seed: AtomicU64,
    /// True while the engine is "dead" after an injected crash: every
    /// operation fails with [`StorageError::Crashed`] until [`recover`]
    /// (see [`Database::recover`]) completes.
    crashed: AtomicBool,
    /// Bumped by every recovery; transactions begun under an older
    /// generation are stale and must not apply their undo.
    generation: AtomicU64,
    recovery: Arc<RecoveryStats>,
}

impl Database {
    pub fn new(personality: Personality) -> Arc<Database> {
        let metrics = Arc::new(ServerMetrics::new());
        let chaos = Arc::new(ChaosController::new());
        // One journal per engine instance, shared by every emitting layer
        // (lock manager, WAL, buffer pool, chaos gate, and — via
        // `Database::journal()` — the controller and API on top).
        let journal = Arc::new(EventJournal::new());
        chaos.set_journal(journal.clone());
        Arc::new(Database {
            catalog: RwLock::new(Catalog::default()),
            locks: LockManager::new(personality.lock_timeout, metrics.clone(), chaos.clone())
                .with_journal(journal.clone()),
            wal: Wal::new(
                personality.group_commit_window_us,
                personality.wal_us_per_kb,
                personality.commit_us,
            )
            .with_journal(journal.clone()),
            pool: BufferPool::new(personality.buffer_pages, personality.rows_per_page)
                .with_journal(journal.clone()),
            metrics,
            chaos,
            journal,
            personality,
            next_txn: AtomicU64::new(1),
            next_table_id: AtomicU32::new(1),
            seed: AtomicU64::new(0x9E3779B97F4A7C15),
            crashed: AtomicBool::new(false),
            generation: AtomicU64::new(1),
            recovery: Arc::new(RecoveryStats::new()),
        })
    }

    pub fn personality(&self) -> &Personality {
        &self.personality
    }

    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The fault-injection gate for this engine instance. Disarmed (the
    /// default) it costs one relaxed load per probe; the API layer arms
    /// plans on it at runtime.
    pub fn chaos(&self) -> &Arc<ChaosController> {
        &self.chaos
    }

    /// The event journal every layer of this engine emits into. Layers
    /// above (controller, API) share it so `/events` shows one timeline.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Open a session (one per worker thread).
    pub fn session(self: &Arc<Database>) -> Session {
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        Session { db: self.clone(), txn: None, rng: Rng::new(seed) }
    }

    // ---- DDL (auto-committed) ----

    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut cat = self.catalog.write();
        let key = schema.name.to_ascii_lowercase();
        if cat.by_name.contains_key(&key) {
            return Err(StorageError::TableExists(schema.name));
        }
        let id = self.next_table_id.fetch_add(1, Ordering::Relaxed);
        cat.order.push(key.clone());
        cat.by_name.insert(key, Arc::new(Table::new(id, schema)));
        Ok(())
    }

    pub fn create_index(&self, table: &str, name: &str, columns: &[&str], unique: bool) -> Result<()> {
        let t = self.table(table)?;
        let key_columns = columns
            .iter()
            .map(|c| t.schema.column_index(c))
            .collect::<Result<Vec<_>>>()?;
        t.add_index(IndexDef {
            name: name.to_string(),
            table: t.schema.name.clone(),
            key_columns,
            unique,
        })
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut cat = self.catalog.write();
        let key = name.to_ascii_lowercase();
        cat.by_name
            .remove(&key)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))?;
        cat.order.retain(|n| *n != key);
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog
            .read()
            .by_name
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().order.clone()
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().by_name.contains_key(&name.to_ascii_lowercase())
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        let cat = self.catalog.read();
        cat.by_name.values().map(|t| t.len()).sum()
    }

    /// Empty every table, keeping schemas and indexes (the game's crash
    /// semantics reset the database, §4.1.1). The WAL is fully rewound —
    /// LSN, rotation counters and the redo store — so back-to-back runs
    /// start from a clean log.
    pub fn truncate_all(&self) {
        let cat = self.catalog.read();
        for t in cat.by_name.values() {
            t.truncate();
        }
        self.pool.clear();
        self.wal.reset_full();
        self.recovery.reset();
    }

    /// Drop all tables entirely.
    pub fn reset_schema(&self) {
        let mut cat = self.catalog.write();
        cat.by_name.clear();
        cat.order.clear();
        self.pool.clear();
        self.wal.reset_full();
        self.recovery.reset();
    }

    // ---- Crash & recovery ----

    /// True while the engine is dead awaiting recovery.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Current engine generation (bumped by every recovery).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Recovery bookkeeping, exposed as `bp_recovery_*` metrics.
    pub fn recovery_stats(&self) -> &Arc<RecoveryStats> {
        &self.recovery
    }

    /// Snapshot for `/recovery/status`.
    pub fn recovery_status(&self) -> RecoveryStatus {
        self.recovery.status(self.generation())
    }

    /// Kill the engine at `point` (injected by the `ServerCrash` fault).
    /// Idempotent: only the first caller journals the crash.
    fn crash(&self, point: CrashPoint, lsn: u64) {
        if self.crashed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.recovery.note_crash(point);
        self.journal.emit_with(Severity::Error, "storage", "server_crash", || {
            let mut fields =
                vec![("crashpoint", point.name().to_string()), ("lsn", lsn.to_string())];
            let tid = bp_obs::current_trace();
            if tid != 0 {
                fields.push(("trace_id", bp_obs::format_trace_id(tid)));
            }
            (
                format!("storage engine crashed mid-commit at crashpoint {}", point.name()),
                fields,
            )
        });
    }

    /// Rebuild committed state from the latest checkpoint plus the redo
    /// tail, truncating a torn final record, then bring the engine back
    /// online under a new generation.
    pub fn recover(&self) -> RecoveryReport {
        let start = std::time::Instant::now();
        self.journal.emit_with(Severity::Warn, "storage", "recovery_begin", || {
            ("replaying redo log after crash".to_string(), Vec::new())
        });
        let image = self.wal.recovered_image();
        {
            let cat = self.catalog.read();
            let empty = std::collections::BTreeMap::new();
            for t in cat.by_name.values() {
                t.rebuild_from(image.tables.get(&t.id).unwrap_or(&empty));
            }
        }
        self.pool.clear();
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let report = RecoveryReport {
            replayed_records: image.replayed_records,
            torn_truncated: image.torn_truncated,
            checkpoint_lsn: image.checkpoint_lsn,
            durable_lsn: image.durable_lsn,
            duration_us: start.elapsed().as_micros() as u64,
            generation,
        };
        self.recovery.note_recovery(&report);
        self.crashed.store(false, Ordering::Release);
        self.journal.emit_with(Severity::Warn, "storage", "recovery_complete", || {
            (
                format!(
                    "recovered to lsn {} in {}µs: checkpoint lsn {} + {} replayed records, {} torn",
                    report.durable_lsn,
                    report.duration_us,
                    report.checkpoint_lsn,
                    report.replayed_records,
                    report.torn_truncated
                ),
                vec![
                    ("durable_lsn", report.durable_lsn.to_string()),
                    ("replayed", report.replayed_records.to_string()),
                    ("torn", report.torn_truncated.to_string()),
                    ("duration_us", report.duration_us.to_string()),
                    ("generation", generation.to_string()),
                ],
            )
        });
        report
    }

    /// Snapshot committed state at the current stable LSN and truncate the
    /// consumed redo segments. Returns `None` while crashed (the
    /// checkpointer must not run against a dead engine).
    pub fn checkpoint(&self) -> Option<CheckpointStats> {
        if self.is_crashed() {
            return None;
        }
        let stats = self.wal.take_checkpoint();
        self.recovery.note_checkpoint(&stats);
        self.recovery.note_durable(self.wal.durable_lsn());
        self.journal.emit_with(Severity::Info, "storage", "checkpoint", || {
            (
                format!(
                    "checkpoint at lsn {} ({} records, {} segments truncated)",
                    stats.lsn, stats.records_applied, stats.segments_truncated
                ),
                vec![
                    ("lsn", stats.lsn.to_string()),
                    ("records", stats.records_applied.to_string()),
                    ("segments", stats.segments_truncated.to_string()),
                ],
            )
        });
        Some(stats)
    }

    /// Canonical byte encoding of all live rows, in catalog order with
    /// rowids ascending. Two databases holding the same committed state
    /// produce identical digests — the crashpoint matrix compares these.
    pub fn state_digest(&self) -> Vec<u8> {
        let cat = self.catalog.read();
        let mut out = Vec::new();
        for name in &cat.order {
            let t = &cat.by_name[name];
            out.extend_from_slice(name.as_bytes());
            out.push(0);
            out.extend_from_slice(&t.id.to_le_bytes());
            let mut rows = t.scan();
            rows.sort_by_key(|(rid, _)| *rid);
            out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
            for (rid, row) in rows {
                out.extend_from_slice(&rid.to_le_bytes());
                encode_row(&mut out, &row);
            }
        }
        out
    }
}

enum Undo {
    Insert { table: Arc<Table>, rowid: RowId },
    Update { table: Arc<Table>, rowid: RowId, before: Row },
    Delete { table: Arc<Table>, rowid: RowId, before: Row },
}

struct Txn {
    id: TxnId,
    /// Engine generation at `begin`; a recovery in between makes the txn
    /// stale (its undo must not touch the rebuilt tables).
    gen: u64,
    locks: Vec<LockTarget>,
    undo: Vec<Undo>,
    /// After-images for the commit's redo record, in operation order.
    redo: Vec<RedoOp>,
    wal_bytes: u64,
    rows_read: u64,
    rows_written: u64,
}

/// A connection-like handle bound to one thread of execution.
pub struct Session {
    db: Arc<Database>,
    txn: Option<Txn>,
    rng: Rng,
}

impl Session {
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Current transaction id, if any.
    pub fn txn_id(&self) -> Option<TxnId> {
        self.txn.as_ref().map(|t| t.id)
    }

    /// Fail fast with [`StorageError::Crashed`] when the engine is dead or
    /// this txn predates the last recovery. Aborts the active transaction
    /// (stale undo is skipped by `rollback`), like a lock failure would.
    fn ensure_alive(&mut self) -> Result<()> {
        let stale = self
            .txn
            .as_ref()
            .is_some_and(|t| t.gen != self.db.generation());
        if self.db.is_crashed() || stale {
            return Err(self.abort_with(StorageError::Crashed));
        }
        Ok(())
    }

    pub fn begin(&mut self) -> Result<()> {
        if self.db.is_crashed() {
            return Err(StorageError::Crashed);
        }
        if self.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        let id = self.db.next_txn.fetch_add(1, Ordering::Relaxed);
        self.db.metrics.txn_started();
        self.txn = Some(Txn {
            id,
            gen: self.db.generation(),
            locks: Vec::new(),
            undo: Vec::new(),
            redo: Vec::new(),
            wal_bytes: 0,
            rows_read: 0,
            rows_written: 0,
        });
        Ok(())
    }

    pub fn commit(&mut self) -> Result<()> {
        self.ensure_alive()?;
        let txn = self.txn.take().ok_or(StorageError::NoActiveTransaction)?;
        let commit_start = std::time::Instant::now();
        // Chaos: an injected server crash kills the engine at one of three
        // deterministic points in the commit sequence (window magnitude
        // selects which). The dying commit reports failure either way; at
        // `AfterFsync` the record is durable, so recovery resurrects it —
        // the classic "ambiguous commit" a crash leaves behind.
        let crashpoint = self
            .db
            .chaos
            .roll(FaultKind::ServerCrash)
            .map(CrashPoint::from_magnitude);
        if crashpoint == Some(CrashPoint::BeforeAppend) {
            return Err(self.die_in_commit(txn, CrashPoint::BeforeAppend, self.db.wal.current_lsn()));
        }
        let mut cost = 0.0;
        if txn.wal_bytes > 0 {
            let (lsn, wal_cost) = self.db.wal.commit(txn.wal_bytes, &self.db.metrics);
            cost += wal_cost;
            if !txn.redo.is_empty() {
                let record = RedoRecord { lsn, txn: txn.id, ops: txn.redo.clone() }.encode();
                let torn = crashpoint == Some(CrashPoint::AfterAppendBeforeFsync);
                self.db.wal.append_redo(lsn, &record, torn);
                if !torn {
                    self.db.recovery.note_durable(lsn);
                }
            }
            if let Some(point) = crashpoint {
                return Err(self.die_in_commit(txn, point, lsn));
            }
        } else if let Some(point) = crashpoint {
            // Read-only commit: nothing to append, but the process still
            // dies mid-commit.
            return Err(self.die_in_commit(txn, point, self.db.wal.current_lsn()));
        }
        // Chaos: a stalled fsync lengthens the commit's service demand.
        // Charged to fsync_us too so the doctor sees the stall as IO time.
        if let Some(stall_us) = self.db.chaos.roll(FaultKind::FsyncStall) {
            cost += stall_us as f64;
            self.db.metrics.add_fsync_micros(stall_us);
        }
        self.charge(cost);
        self.db.locks.release_all(txn.id, &txn.locks);
        self.db.metrics.inc_commits();
        self.db.metrics.add_rows_read(txn.rows_read);
        self.db.metrics.add_rows_written(txn.rows_written);
        self.db.metrics.txn_ended();
        // Commit-stage time (WAL write + fsync cost model + lock release)
        // for the span of the request executing on this thread.
        bp_obs::add_commit_us(commit_start.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Kill the engine at `point` during this txn's commit. The dying
    /// txn's locks are released explicitly — the lock table survives
    /// recovery, so leaking them would block rebuilt rows forever — and
    /// the commit reports failure.
    fn die_in_commit(&mut self, txn: Txn, point: CrashPoint, lsn: u64) -> StorageError {
        self.db.crash(point, lsn);
        self.db.locks.release_all(txn.id, &txn.locks);
        self.db.metrics.txn_ended();
        StorageError::Crashed
    }

    pub fn rollback(&mut self) -> Result<()> {
        let txn = self.txn.take().ok_or(StorageError::NoActiveTransaction)?;
        // A txn from before the crash/recovery must not undo into the
        // rebuilt tables: its effects were never recovered in the first
        // place. Releasing its (stale) locks is still correct — the lock
        // table survives recovery.
        let stale = self.db.is_crashed() || txn.gen != self.db.generation();
        if !stale {
            Self::undo_all(&txn);
        }
        self.db.locks.release_all(txn.id, &txn.locks);
        self.db.metrics.inc_aborts();
        self.db.metrics.txn_ended();
        Ok(())
    }

    fn undo_all(txn: &Txn) {
        for u in txn.undo.iter().rev() {
            // Undo failures indicate engine bugs; they must not panic the
            // worker, so best-effort with a debug assertion.
            let ok = match u {
                Undo::Insert { table, rowid } => table.delete(*rowid).is_ok(),
                Undo::Update { table, rowid, before } => table.update(*rowid, before.clone()).is_ok(),
                Undo::Delete { table, rowid, before } => table.restore(*rowid, before.clone()).is_ok(),
            };
            debug_assert!(ok, "undo operation failed");
        }
    }

    /// Abort the transaction because of `err` (lock failure) and return it.
    fn abort_with(&mut self, err: StorageError) -> StorageError {
        if self.txn.is_some() {
            let _ = self.rollback();
        }
        err
    }

    fn charge(&mut self, base_us: f64) {
        // Chaos: latency spikes add service demand to whatever operation
        // is being charged (probed before the zero check so a spike can
        // hit even zero-cost personalities' operations).
        let base_us = match self.db.chaos.roll(FaultKind::LatencySpike) {
            Some(spike_us) => base_us + spike_us as f64,
            None => base_us,
        };
        if base_us <= 0.0 {
            return;
        }
        let cost = self.db.personality.jittered(base_us, &mut self.rng);
        self.db.metrics.add_busy_micros(cost as u64);
        apply_delay(self.db.personality.delay, cost);
    }

    fn txn_mut(&mut self) -> Result<&mut Txn> {
        self.txn.as_mut().ok_or(StorageError::NoActiveTransaction)
    }

    fn lock(&mut self, target: LockTarget, mode: LockMode) -> Result<()> {
        let txn = self.txn.as_ref().ok_or(StorageError::NoActiveTransaction)?;
        let id = txn.id;
        match self.db.locks.acquire(id, target, mode) {
            Ok(true) => {
                self.txn_mut()?.locks.push(target);
                Ok(())
            }
            Ok(false) => Ok(()),
            Err(e) => Err(self.abort_with(e)),
        }
    }

    fn touch_page(&mut self, table: &Table, rowid: RowId, write: bool) {
        let access = self
            .db
            .pool
            .access(table.id, rowid, write, &self.db.metrics);
        // Chaos: buffer-pool thrash charges extra page IOs as if the
        // working set had been evicted under us.
        let extra_ios = self.db.chaos.roll(FaultKind::BufferThrash).unwrap_or(0);
        let ios = access.ios as u64 + extra_ios;
        if ios > 0 {
            self.charge(self.db.personality.io_us * ios as f64);
        }
    }

    // ---- Reads ----

    /// Read a row by rowid, taking an S (or X when `for_update`) lock.
    /// Returns `None` if the row no longer exists.
    pub fn get_row(&mut self, table: &Arc<Table>, rowid: RowId, for_update: bool) -> Result<Option<Row>> {
        self.ensure_alive()?;
        let (table_mode, row_mode) = if for_update {
            self.write_modes(table)
        } else {
            (LockMode::IntentionShared, LockMode::Shared)
        };
        self.lock(LockTarget::Table(table.id), table_mode)?;
        if self.db.personality.row_locking || !for_update {
            self.lock(LockTarget::Row(table.id, rowid), row_mode)?;
        }
        self.touch_page(table, rowid, false);
        self.charge(self.db.personality.read_us);
        let row = table.get(rowid);
        if row.is_some() {
            self.txn_mut()?.rows_read += 1;
        }
        Ok(row)
    }

    /// Point lookup by primary key (locks the row, rechecks after the wait).
    pub fn read_pk(&mut self, table: &Arc<Table>, key: &[Value], for_update: bool) -> Result<Option<(RowId, Row)>> {
        match table.lookup_pk(key) {
            None => {
                // Charge the (cheap) index probe.
                self.charge(self.db.personality.read_us * 0.5);
                Ok(None)
            }
            Some(rowid) => {
                let row = self.get_row(table, rowid, for_update)?;
                match row {
                    // Re-verify: the row may have been deleted/moved while we
                    // waited for the lock.
                    Some(r) if table.schema.pk_of(&r) == key => Ok(Some((rowid, r))),
                    _ => Ok(None),
                }
            }
        }
    }

    /// Fetch all rows for an index point lookup, S-locking each.
    pub fn read_index(&mut self, table: &Arc<Table>, index: &str, key: &[Value]) -> Result<Vec<(RowId, Row)>> {
        let rowids = table.index_lookup(index, key)?;
        self.fetch_rows(table, rowids, false)
    }

    /// Fetch rows in an index range.
    #[allow(clippy::too_many_arguments)]
    pub fn read_index_range(
        &mut self,
        table: &Arc<Table>,
        index: &str,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
        limit: usize,
    ) -> Result<Vec<(RowId, Row)>> {
        let rowids = table.index_range(index, lo, hi, limit)?;
        self.fetch_rows(table, rowids, false)
    }

    /// Fetch rows whose composite index key starts with `prefix`.
    pub fn read_index_prefix(
        &mut self,
        table: &Arc<Table>,
        index: &str,
        prefix: &[Value],
        limit: usize,
    ) -> Result<Vec<(RowId, Row)>> {
        let rowids = table.index_prefix(index, prefix, limit)?;
        self.fetch_rows(table, rowids, false)
    }

    fn fetch_rows(&mut self, table: &Arc<Table>, rowids: Vec<RowId>, for_update: bool) -> Result<Vec<(RowId, Row)>> {
        let mut out = Vec::with_capacity(rowids.len());
        for rowid in rowids {
            if let Some(row) = self.get_row(table, rowid, for_update)? {
                out.push((rowid, row));
            }
        }
        Ok(out)
    }

    /// Full table scan under a table-level S lock.
    pub fn scan(&mut self, table: &Arc<Table>) -> Result<Vec<(RowId, Row)>> {
        self.ensure_alive()?;
        self.lock(LockTarget::Table(table.id), LockMode::Shared)?;
        let rows = table.scan();
        self.charge(self.db.personality.scan_row_us * rows.len().max(1) as f64);
        self.txn_mut()?.rows_read += rows.len() as u64;
        Ok(rows)
    }

    // ---- Writes ----

    fn write_modes(&self, _table: &Table) -> (LockMode, LockMode) {
        if self.db.personality.row_locking {
            (LockMode::IntentionExclusive, LockMode::Exclusive)
        } else {
            // Coarse-grained engines: writers take the whole table.
            (LockMode::Exclusive, LockMode::Exclusive)
        }
    }

    /// Insert a row (validated against the schema).
    pub fn insert(&mut self, table: &Arc<Table>, row: Row) -> Result<RowId> {
        self.ensure_alive()?;
        let row = table.schema.check_row(row)?;
        let (table_mode, _) = self.write_modes(table);
        self.lock(LockTarget::Table(table.id), table_mode)?;
        let bytes = table.schema.row_bytes(&row) as u64;
        let rowid = table.insert(row.clone())?;
        if self.db.personality.row_locking {
            // X-lock the new row so no one reads it before commit. The row is
            // brand new, so this cannot block.
            self.lock(LockTarget::Row(table.id, rowid), LockMode::Exclusive)?;
        }
        self.touch_page(table, rowid, true);
        self.charge(self.db.personality.insert_us);
        let txn = self.txn_mut()?;
        txn.undo.push(Undo::Insert { table: table.clone(), rowid });
        txn.redo.push(RedoOp::Insert { table: table.id, rowid, row });
        txn.wal_bytes += bytes;
        txn.rows_written += 1;
        Ok(rowid)
    }

    /// Update a row in place by rowid.
    pub fn update(&mut self, table: &Arc<Table>, rowid: RowId, new_row: Row) -> Result<()> {
        self.ensure_alive()?;
        let new_row = table.schema.check_row(new_row)?;
        let (table_mode, row_mode) = self.write_modes(table);
        self.lock(LockTarget::Table(table.id), table_mode)?;
        if self.db.personality.row_locking {
            self.lock(LockTarget::Row(table.id, rowid), row_mode)?;
        }
        self.touch_page(table, rowid, true);
        let bytes = table.schema.row_bytes(&new_row) as u64;
        let before = table.update(rowid, new_row.clone())?;
        self.charge(self.db.personality.write_us);
        let txn = self.txn_mut()?;
        txn.undo.push(Undo::Update { table: table.clone(), rowid, before });
        txn.redo.push(RedoOp::Update { table: table.id, rowid, row: new_row });
        txn.wal_bytes += bytes;
        txn.rows_written += 1;
        Ok(())
    }

    /// Delete a row by rowid.
    pub fn delete(&mut self, table: &Arc<Table>, rowid: RowId) -> Result<()> {
        self.ensure_alive()?;
        let (table_mode, row_mode) = self.write_modes(table);
        self.lock(LockTarget::Table(table.id), table_mode)?;
        if self.db.personality.row_locking {
            self.lock(LockTarget::Row(table.id, rowid), row_mode)?;
        }
        self.touch_page(table, rowid, true);
        let before = table.delete(rowid)?;
        let bytes = table.schema.row_bytes(&before) as u64;
        self.charge(self.db.personality.write_us);
        let txn = self.txn_mut()?;
        txn.undo.push(Undo::Delete { table: table.clone(), rowid, before });
        txn.redo.push(RedoOp::Delete { table: table.id, rowid });
        txn.wal_bytes += bytes;
        txn.rows_written += 1;
        Ok(())
    }

    /// Run `body` inside a transaction, committing on `Ok` and rolling back
    /// on `Err`. Does not retry: retry policy belongs to the caller.
    pub fn with_txn<T>(&mut self, body: impl FnOnce(&mut Session) -> Result<T>) -> Result<T> {
        self.begin()?;
        match body(self) {
            Ok(v) => {
                self.commit()?;
                Ok(v)
            }
            Err(e) => {
                if self.in_txn() {
                    let _ = self.rollback();
                }
                Err(e)
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.in_txn() {
            let _ = self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn db() -> Arc<Database> {
        let db = Database::new(Personality::test());
        db.create_table(
            TableSchema::new(
                "acct",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("bal", DataType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn acct(db: &Arc<Database>) -> Arc<Table> {
        db.table("acct").unwrap()
    }

    #[test]
    fn insert_commit_read() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&t, vec![Value::Int(1), Value::Int(100)]).unwrap();
        s.commit().unwrap();

        let mut s2 = db.session();
        s2.begin().unwrap();
        let (_, row) = s2.read_pk(&t, &[Value::Int(1)], false).unwrap().unwrap();
        assert_eq!(row[1], Value::Int(100));
        s2.commit().unwrap();
        assert_eq!(db.metrics().snapshot().commits, 2);
    }

    #[test]
    fn rollback_insert() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&t, vec![Value::Int(1), Value::Int(100)]).unwrap();
        s.rollback().unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(db.metrics().snapshot().aborts, 1);
    }

    #[test]
    fn rollback_update_restores() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(100)]))
            .unwrap();
        s.begin().unwrap();
        let (rid, _) = s.read_pk(&t, &[Value::Int(1)], true).unwrap().unwrap();
        s.update(&t, rid, vec![Value::Int(1), Value::Int(999)]).unwrap();
        s.rollback().unwrap();
        let row = t.get(rid).unwrap();
        assert_eq!(row[1], Value::Int(100));
    }

    #[test]
    fn rollback_delete_restores() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        let rid = s
            .with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(100)]))
            .unwrap();
        s.begin().unwrap();
        s.delete(&t, rid).unwrap();
        assert_eq!(t.len(), 0);
        s.rollback().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(rid).unwrap()[1], Value::Int(100));
        assert_eq!(t.lookup_pk(&[Value::Int(1)]), Some(rid));
    }

    #[test]
    fn multi_op_rollback_in_reverse() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| {
            s.insert(&t, vec![Value::Int(1), Value::Int(10)])?;
            s.insert(&t, vec![Value::Int(2), Value::Int(20)])
        })
        .unwrap();
        s.begin().unwrap();
        let (r1, _) = s.read_pk(&t, &[Value::Int(1)], true).unwrap().unwrap();
        s.update(&t, r1, vec![Value::Int(1), Value::Int(11)]).unwrap();
        s.delete(&t, r1).unwrap();
        s.insert(&t, vec![Value::Int(3), Value::Int(30)]).unwrap();
        s.rollback().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(r1).unwrap()[1], Value::Int(10));
        assert!(t.lookup_pk(&[Value::Int(3)]).is_none());
    }

    #[test]
    fn conflicting_writes_wait_die() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();

        let mut older = db.session();
        let mut younger = db.session();
        older.begin().unwrap();
        younger.begin().unwrap();
        let (rid, _) = older.read_pk(&t, &[Value::Int(1)], true).unwrap().unwrap();
        older.update(&t, rid, vec![Value::Int(1), Value::Int(5)]).unwrap();
        // Younger conflicting write dies immediately.
        let err = younger
            .update(&t, rid, vec![Value::Int(1), Value::Int(7)])
            .unwrap_err();
        assert!(err.is_retryable());
        assert!(!younger.in_txn(), "failed txn must be rolled back");
        older.commit().unwrap();
        assert_eq!(t.get(rid).unwrap()[1], Value::Int(5));
    }

    #[test]
    fn reader_blocks_until_writer_commits() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();

        let mut writer = db.session();
        writer.begin().unwrap();
        let (rid, _) = writer.read_pk(&t, &[Value::Int(1)], true).unwrap().unwrap();
        writer.update(&t, rid, vec![Value::Int(1), Value::Int(42)]).unwrap();

        let db2 = db.clone();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let mut reader = db2.session();
            reader.begin().unwrap();
            // Older reader waits for the younger writer... wait: reader is
            // younger here (created later), so wait-die would abort it.
            // Retry until the writer commits, as the workload layer does.
            loop {
                match reader.read_pk(&t2, &[Value::Int(1)], false) {
                    Ok(Some((_, row))) => {
                        reader.commit().unwrap();
                        return row[1].clone();
                    }
                    Ok(None) => panic!("row vanished"),
                    Err(e) if e.is_retryable() => {
                        reader.begin().unwrap();
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        writer.commit().unwrap();
        assert_eq!(h.join().unwrap(), Value::Int(42));
    }

    #[test]
    fn table_granularity_serializes_writers() {
        let db = Database::new(Personality { row_locking: false, ..Personality::test() });
        db.create_table(
            TableSchema::new(
                "t",
                vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        let t = db.table("t").unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.insert(&t, vec![Value::Int(1), Value::Int(1)]).unwrap();
        // Second writer hits the table X lock; younger dies.
        let err = b.insert(&t, vec![Value::Int(2), Value::Int(2)]).unwrap_err();
        assert!(err.is_retryable());
        a.commit().unwrap();
    }

    #[test]
    fn duplicate_key_surfaces_but_txn_continues() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.begin().unwrap();
        s.insert(&t, vec![Value::Int(1), Value::Int(0)]).unwrap();
        let err = s.insert(&t, vec![Value::Int(1), Value::Int(0)]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert!(s.in_txn(), "constraint violations do not auto-abort");
        s.rollback().unwrap();
    }

    #[test]
    fn scan_sees_committed_only_rows() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| {
            for i in 0..10 {
                s.insert(&t, vec![Value::Int(i), Value::Int(i * 10)])?;
            }
            Ok(())
        })
        .unwrap();
        let mut s2 = db.session();
        s2.begin().unwrap();
        let rows = s2.scan(&t).unwrap();
        assert_eq!(rows.len(), 10);
        s2.commit().unwrap();
    }

    #[test]
    fn scan_blocks_on_concurrent_writer() {
        let db = db();
        let t = acct(&db);
        let mut w = db.session();
        w.begin().unwrap();
        w.insert(&t, vec![Value::Int(1), Value::Int(0)]).unwrap();
        // Younger scanner conflicts with IX table lock and dies.
        let mut r = db.session();
        r.begin().unwrap();
        let err = r.scan(&t).unwrap_err();
        assert!(err.is_retryable());
        w.commit().unwrap();
    }

    #[test]
    fn truncate_all_and_reuse() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();
        db.truncate_all();
        assert_eq!(db.total_rows(), 0);
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn session_drop_rolls_back() {
        let db = db();
        let t = acct(&db);
        {
            let mut s = db.session();
            s.begin().unwrap();
            s.insert(&t, vec![Value::Int(1), Value::Int(0)]).unwrap();
            // dropped without commit
        }
        assert_eq!(t.len(), 0);
        // And the lock is gone: a new txn can write the same key.
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();
    }

    #[test]
    fn ddl_catalog() {
        let db = db();
        assert!(db.has_table("ACCT"));
        assert_eq!(db.table_names(), vec!["acct"]);
        assert!(db.create_table(
            TableSchema::new("acct", vec![Column::new("x", DataType::Int)], &[]).unwrap()
        ).is_err());
        db.drop_table("acct").unwrap();
        assert!(!db.has_table("acct"));
        assert!(db.drop_table("acct").is_err());
    }

    #[test]
    fn read_pk_rechecks_after_wait() {
        // Delete the row while a reader is blocked; reader must get None,
        // not a stale row.
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();
        let mut deleter = db.session();
        deleter.begin().unwrap();
        let (rid, _) = deleter.read_pk(&t, &[Value::Int(1)], true).unwrap().unwrap();
        deleter.delete(&t, rid).unwrap();

        let db2 = db.clone();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let mut reader = db2.session();
            loop {
                reader.begin().unwrap();
                match reader.read_pk(&t2, &[Value::Int(1)], false) {
                    Ok(v) => {
                        reader.commit().unwrap();
                        return v.map(|(_, r)| r);
                    }
                    Err(e) if e.is_retryable() => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        deleter.commit().unwrap();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn chaos_injection_threads_through_engine() {
        use bp_chaos::{FaultPlan, FaultWindow};
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| s.insert(&t, vec![Value::Int(1), Value::Int(0)]))
            .unwrap();
        // Disarmed: nothing injected (everything above worked).
        assert_eq!(db.chaos().injected_total(FaultKind::InjectedError), 0);
        // Armed with certain transient errors: the first lock acquisition
        // fails retryably and rolls the transaction back.
        db.chaos().arm(
            FaultPlan::new("all-errors", 1)
                .with_window(FaultWindow::always(FaultKind::InjectedError, 1.0, 0)),
        );
        s.begin().unwrap();
        let err = s.read_pk(&t, &[Value::Int(1)], false).unwrap_err();
        assert_eq!(err, StorageError::Injected { site: "lock" });
        assert!(err.is_retryable());
        assert!(!s.in_txn(), "injected lock failure aborts the txn");
        assert!(db.chaos().injected_total(FaultKind::InjectedError) >= 1);
        // Disarm restores normal service.
        db.chaos().disarm();
        s.with_txn(|s| s.read_pk(&t, &[Value::Int(1)], false).map(|_| ()))
            .unwrap();
        // Fsync stalls land in the commit's busy time.
        let busy_before = db.metrics().snapshot().busy_micros;
        db.chaos().arm(
            FaultPlan::new("stall", 2)
                .with_window(FaultWindow::always(FaultKind::FsyncStall, 1.0, 7_000)),
        );
        s.with_txn(|s| s.insert(&t, vec![Value::Int(2), Value::Int(0)]))
            .unwrap();
        db.chaos().disarm();
        let busy_after = db.metrics().snapshot().busy_micros;
        assert!(
            busy_after - busy_before >= 7_000,
            "stall charged: {busy_before} -> {busy_after}"
        );
    }

    #[test]
    fn metrics_row_counts() {
        let db = db();
        let t = acct(&db);
        let mut s = db.session();
        s.with_txn(|s| {
            s.insert(&t, vec![Value::Int(1), Value::Int(0)])?;
            s.insert(&t, vec![Value::Int(2), Value::Int(0)])
        })
        .unwrap();
        s.with_txn(|s| {
            s.read_pk(&t, &[Value::Int(1)], false)?;
            Ok(())
        })
        .unwrap();
        let m = db.metrics().snapshot();
        assert_eq!(m.rows_written, 2);
        assert_eq!(m.rows_read, 1);
        assert!(m.wal_bytes > 0);
    }
}
