//! Hierarchical strict two-phase locking with wait-die deadlock avoidance.
//!
//! The engine takes intention locks at table granularity and S/X locks at row
//! granularity. This is what makes the paper's §2.2.2 observation emerge
//! naturally: "switching the workload mixture to a read-heavy workload will
//! boost the DBMS's throughput due to reduced lock contention".
//!
//! Deadlock policy is **wait-die**: an older transaction may wait for a
//! younger one, but a younger transaction requesting a lock held by an older
//! one is aborted immediately (`StorageError::Deadlock`). A configurable
//! timeout backstops pathological waits. Transaction age = transaction id
//! (monotonically increasing), so "older" means a smaller id.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bp_chaos::{ChaosController, FaultKind};
use bp_obs::{EventJournal, Severity};
use bp_util::sync::{Condvar, Mutex};

use crate::error::{Result, StorageError};
use crate::metrics::ServerMetrics;

/// Transaction identifier; smaller = older.
pub type TxnId = u64;

/// Lock modes. Intention modes are only used at table granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table): row-level S locks will be taken.
    IntentionShared,
    /// Intention exclusive (table): row-level X locks will be taken.
    IntentionExclusive,
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
}

impl LockMode {
    /// Standard multigranularity compatibility matrix (no SIX mode).
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IntentionShared, IntentionShared)
                | (IntentionShared, IntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (IntentionShared, Shared)
                | (Shared, IntentionShared)
                | (Shared, Shared)
        )
    }

    /// True if holding `self` implies the rights of `want`.
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        match (self, want) {
            (a, b) if a == b => true,
            (Exclusive, _) => true,
            (Shared, IntentionShared) => true,
            (IntentionExclusive, IntentionShared) => true,
            _ => false,
        }
    }
}

/// What is being locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    Table(u32),
    Row(u32, u64),
}

#[derive(Debug)]
struct LockState {
    /// Granted holders: (txn, mode). A txn appears at most once.
    granted: Vec<(TxnId, LockMode)>,
    /// Number of threads currently blocked on this entry.
    waiters: usize,
}

struct LockEntry {
    state: Mutex<LockState>,
    cond: Condvar,
}

/// The lock table.
pub struct LockManager {
    entries: Mutex<HashMap<LockTarget, Arc<LockEntry>>>,
    timeout: Duration,
    metrics: Arc<ServerMetrics>,
    chaos: Arc<ChaosController>,
    journal: Option<Arc<EventJournal>>,
}

impl LockManager {
    pub fn new(
        timeout: Duration,
        metrics: Arc<ServerMetrics>,
        chaos: Arc<ChaosController>,
    ) -> LockManager {
        LockManager {
            entries: Mutex::new(HashMap::new()),
            timeout,
            metrics,
            chaos,
            journal: None,
        }
    }

    /// Attach the event journal (deadlock-victim events) — builder style so
    /// the plain constructor keeps working everywhere.
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> LockManager {
        self.journal = Some(journal);
        self
    }

    /// Journal a wait-die (or chaos-storm) victim pick.
    fn note_victim(&self, txn: TxnId, holder: TxnId) {
        if let Some(j) = &self.journal {
            j.emit_with(Severity::Debug, "storage", "deadlock_victim", || {
                let mut fields = vec![("txn", txn.to_string()), ("holder", holder.to_string())];
                let tid = bp_obs::current_trace();
                if tid != 0 {
                    fields.push(("trace_id", bp_obs::format_trace_id(tid)));
                }
                (
                    format!("txn {txn} aborted: wait-die victim behind txn {holder}"),
                    fields,
                )
            });
        }
    }

    fn entry(&self, target: LockTarget) -> Arc<LockEntry> {
        let mut map = self.entries.lock();
        map.entry(target)
            .or_insert_with(|| {
                Arc::new(LockEntry {
                    state: Mutex::new(LockState { granted: Vec::new(), waiters: 0 }),
                    cond: Condvar::new(),
                })
            })
            .clone()
    }

    /// Record a finished lock wait: the engine-wide counters plus the
    /// per-request span stage accumulator (drained by the worker loop).
    fn note_wait(&self, wait_start: std::time::Instant) {
        let waited = wait_start.elapsed();
        self.metrics.record_lock_wait(waited);
        bp_obs::add_lock_wait_us(waited.as_micros() as u64);
    }

    /// Acquire (or upgrade to) `mode` on `target` for transaction `txn`.
    ///
    /// Returns `Ok(true)` if a new lock or upgrade was granted, `Ok(false)`
    /// if the transaction already held a covering lock (caller should not
    /// record it again).
    pub fn acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Result<bool> {
        // Chaos probes before touching the lock table: a transient error
        // models a dropped connection / internal engine hiccup; a deadlock
        // storm models pathological contention by forcing a wait-die
        // victim abort. Both are retryable and both leave the lock table
        // untouched, exactly like a real abort-before-grant.
        if self.chaos.roll(FaultKind::InjectedError).is_some() {
            return Err(StorageError::Injected { site: "lock" });
        }
        if self.chaos.roll(FaultKind::DeadlockStorm).is_some() {
            self.metrics.inc_deadlocks();
            self.note_victim(txn, txn);
            return Err(StorageError::Deadlock { waiting_for: txn });
        }
        let entry = self.entry(target);
        let mut state = entry.state.lock();
        let mut waited = false;
        let wait_start = std::time::Instant::now();
        loop {
            // Already hold something?
            if let Some(pos) = state.granted.iter().position(|(t, _)| *t == txn) {
                let held = state.granted[pos].1;
                if held.covers(mode) {
                    return Ok(false);
                }
                // Upgrade: must be compatible with all *other* holders.
                let others_ok = state
                    .granted
                    .iter()
                    .all(|(t, m)| *t == txn || mode.compatible(*m));
                if others_ok {
                    state.granted[pos].1 = upgrade_result(held, mode);
                    if waited {
                        self.note_wait(wait_start);
                    }
                    return Ok(true);
                }
            } else {
                let all_ok = state.granted.iter().all(|(_, m)| mode.compatible(*m));
                if all_ok {
                    state.granted.push((txn, mode));
                    if waited {
                        self.note_wait(wait_start);
                    }
                    return Ok(true);
                }
            }

            // Conflict. Wait-die: die if any incompatible holder is older.
            let oldest_conflicting = state
                .granted
                .iter()
                .filter(|(t, m)| *t != txn && !mode.compatible(*m))
                .map(|(t, _)| *t)
                .min();
            if let Some(holder) = oldest_conflicting {
                if holder < txn {
                    self.metrics.inc_deadlocks();
                    self.note_victim(txn, holder);
                    if waited {
                        self.note_wait(wait_start);
                    }
                    return Err(StorageError::Deadlock { waiting_for: holder });
                }
            }

            // Older than all conflicting holders: wait.
            waited = true;
            state.waiters += 1;
            let timed_out = entry
                .cond
                .wait_for(&mut state, self.timeout)
                .timed_out();
            state.waiters -= 1;
            if timed_out {
                self.metrics.inc_lock_timeouts();
                self.note_wait(wait_start);
                return Err(StorageError::LockTimeout);
            }
        }
    }

    /// Release every lock in `held` for `txn` and wake waiters.
    pub fn release_all(&self, txn: TxnId, held: &[LockTarget]) {
        for &target in held {
            self.release(txn, target);
        }
    }

    /// Release one lock.
    pub fn release(&self, txn: TxnId, target: LockTarget) {
        let entry = {
            let map = self.entries.lock();
            match map.get(&target) {
                Some(e) => e.clone(),
                None => return,
            }
        };
        let mut state = entry.state.lock();
        state.granted.retain(|(t, _)| *t != txn);
        let empty = state.granted.is_empty() && state.waiters == 0;
        entry.cond.notify_all();
        drop(state);
        if empty {
            // Garbage-collect the entry if still empty under the map lock.
            // The strong-count check is essential: `entry()` clones the Arc
            // while holding the map lock, so a count of exactly 2 (map +
            // ours) proves no in-flight acquirer holds this entry. Removing
            // an entry another thread is about to lock would let a fresh
            // entry be created for the same target — two independent "lock
            // tables" for one row, i.e. lost updates.
            let mut map = self.entries.lock();
            if let Some(e) = map.get(&target) {
                if Arc::ptr_eq(e, &entry) && Arc::strong_count(e) == 2 {
                    let st = e.state.lock();
                    if st.granted.is_empty() && st.waiters == 0 {
                        drop(st);
                        map.remove(&target);
                    }
                }
            }
        }
    }

    /// Number of live lock entries (for tests / introspection).
    pub fn entry_count(&self) -> usize {
        self.entries.lock().len()
    }
}

/// Result mode when a transaction holding `held` upgrades to `want`.
fn upgrade_result(held: LockMode, want: LockMode) -> LockMode {
    use LockMode::*;
    match (held, want) {
        (Shared, Exclusive) | (Exclusive, _) => Exclusive,
        (IntentionShared, m) => m,
        (IntentionExclusive, Shared) => Exclusive, // IX + S = SIX ~ X (conservative)
        (IntentionExclusive, Exclusive) => Exclusive,
        (h, w) => {
            if w.covers(h) {
                w
            } else {
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn mgr() -> LockManager {
        LockManager::new(
            Duration::from_millis(200),
            Arc::new(ServerMetrics::new()),
            Arc::new(ChaosController::new()),
        )
    }

    const T: LockTarget = LockTarget::Table(1);
    const R: LockTarget = LockTarget::Row(1, 10);

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        assert!(m.acquire(1, R, LockMode::Shared).unwrap());
        assert!(m.acquire(2, R, LockMode::Shared).unwrap());
        m.release(1, R);
        m.release(2, R);
        assert_eq!(m.entry_count(), 0);
    }

    #[test]
    fn reentrant_acquire_is_noop() {
        let m = mgr();
        assert!(m.acquire(1, R, LockMode::Exclusive).unwrap());
        assert!(!m.acquire(1, R, LockMode::Exclusive).unwrap());
        assert!(!m.acquire(1, R, LockMode::Shared).unwrap()); // X covers S
    }

    #[test]
    fn upgrade_s_to_x_when_sole_holder() {
        let m = mgr();
        m.acquire(1, R, LockMode::Shared).unwrap();
        assert!(m.acquire(1, R, LockMode::Exclusive).unwrap());
        // Now another txn's S must conflict -> younger dies.
        let err = m.acquire(2, R, LockMode::Shared).unwrap_err();
        assert!(matches!(err, StorageError::Deadlock { .. }));
    }

    #[test]
    fn wait_die_younger_dies() {
        let m = mgr();
        m.acquire(1, R, LockMode::Exclusive).unwrap(); // older txn holds X
        let err = m.acquire(2, R, LockMode::Exclusive).unwrap_err();
        assert_eq!(err, StorageError::Deadlock { waiting_for: 1 });
    }

    #[test]
    fn wait_die_older_waits_and_gets_lock() {
        let m = Arc::new(mgr());
        m.acquire(5, R, LockMode::Exclusive).unwrap(); // younger holds X
        let m2 = m.clone();
        let released = Arc::new(AtomicBool::new(false));
        let released2 = released.clone();
        let h = std::thread::spawn(move || {
            // Older txn 1 must block until release, then succeed.
            m2.acquire(1, R, LockMode::Exclusive).unwrap();
            assert!(released2.load(Ordering::SeqCst), "acquired before release");
        });
        std::thread::sleep(Duration::from_millis(30));
        released.store(true, Ordering::SeqCst);
        m.release(5, R);
        h.join().unwrap();
    }

    #[test]
    fn timeout_fires() {
        let metrics = Arc::new(ServerMetrics::new());
        let m = LockManager::new(
            Duration::from_millis(40),
            metrics.clone(),
            Arc::new(ChaosController::new()),
        );
        m.acquire(5, R, LockMode::Exclusive).unwrap();
        // Older txn 1 waits but holder never releases -> timeout.
        let err = m.acquire(1, R, LockMode::Exclusive).unwrap_err();
        assert_eq!(err, StorageError::LockTimeout);
        assert_eq!(metrics.snapshot().lock_timeouts, 1);
    }

    #[test]
    fn intention_locks_compatible() {
        let m = mgr();
        m.acquire(1, T, LockMode::IntentionShared).unwrap();
        m.acquire(2, T, LockMode::IntentionExclusive).unwrap();
        m.acquire(3, T, LockMode::IntentionShared).unwrap();
    }

    #[test]
    fn table_s_blocks_ix() {
        let m = mgr();
        m.acquire(1, T, LockMode::Shared).unwrap(); // scanner
        let err = m.acquire(2, T, LockMode::IntentionExclusive).unwrap_err();
        assert!(matches!(err, StorageError::Deadlock { .. }));
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IntentionShared.compatible(Shared));
        assert!(!IntentionExclusive.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
    }

    #[test]
    fn release_all_wakes_waiters() {
        let m = Arc::new(mgr());
        m.acquire(9, R, LockMode::Exclusive).unwrap();
        m.acquire(9, T, LockMode::IntentionExclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            m2.acquire(1, R, LockMode::Shared).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        m.release_all(9, &[R, T]);
        h.join().unwrap();
        assert!(m.entry_count() <= 1);
    }

    #[test]
    fn deadlock_victim_journaled() {
        let j = Arc::new(EventJournal::new());
        let m = mgr().with_journal(j.clone());
        m.acquire(1, R, LockMode::Exclusive).unwrap();
        let err = m.acquire(2, R, LockMode::Exclusive).unwrap_err();
        assert_eq!(err, StorageError::Deadlock { waiting_for: 1 });
        let events = j.all();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "deadlock_victim");
        assert!(events[0].fields.contains(&("txn", "2".to_string())));
        assert!(events[0].fields.contains(&("holder", "1".to_string())));
    }

    #[test]
    fn lock_wait_metrics_recorded() {
        let metrics = Arc::new(ServerMetrics::new());
        let m = Arc::new(LockManager::new(
            Duration::from_millis(500),
            metrics.clone(),
            Arc::new(ChaosController::new()),
        ));
        m.acquire(5, R, LockMode::Exclusive).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            m2.acquire(1, R, LockMode::Shared).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        m.release(5, R);
        h.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.lock_waits, 1);
        assert!(snap.lock_wait_micros >= 20_000, "waited {}", snap.lock_wait_micros);
    }
}
