//! Crash recovery: typed redo records, checkpoint images and recovery
//! bookkeeping.
//!
//! Commits append one binary redo record (insert/update/delete with table
//! id, rowid and row after-image) to the WAL's segment store. A checkpoint
//! materializes the committed state at a stable LSN by replaying every
//! complete record into an image, then truncates the consumed segments.
//! [`crate::Database::recover`] loads the latest checkpoint, replays the
//! redo tail and truncates a torn final record, so recovered state is
//! exactly the committed prefix of the pre-crash run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::table::RowId;
use crate::value::{Row, Value};

/// Where in the commit sequence an injected `ServerCrash` kills the engine.
///
/// The `bp-chaos` fault window's `magnitude` selects the point (mod 3), so
/// one fault kind covers the whole matrix deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the redo record reaches the log: the transaction is lost.
    BeforeAppend,
    /// After the append but before the fsync: the record is torn and
    /// recovery truncates it — the transaction is lost.
    AfterAppendBeforeFsync,
    /// After the fsync: the record is durable — the transaction survives
    /// even though the client saw the commit fail.
    AfterFsync,
}

impl CrashPoint {
    pub const ALL: [CrashPoint; 3] = [
        CrashPoint::BeforeAppend,
        CrashPoint::AfterAppendBeforeFsync,
        CrashPoint::AfterFsync,
    ];

    /// Map a fault-window magnitude onto a crashpoint.
    pub fn from_magnitude(m: u64) -> CrashPoint {
        Self::ALL[(m % 3) as usize]
    }

    pub fn index(self) -> u64 {
        match self {
            CrashPoint::BeforeAppend => 0,
            CrashPoint::AfterAppendBeforeFsync => 1,
            CrashPoint::AfterFsync => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeAppend => "before_append",
            CrashPoint::AfterAppendBeforeFsync => "after_append_before_fsync",
            CrashPoint::AfterFsync => "after_fsync",
        }
    }
}

/// One logical change inside a committed transaction's redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    Insert { table: u32, rowid: RowId, row: Row },
    Update { table: u32, rowid: RowId, row: Row },
    Delete { table: u32, rowid: RowId },
}

/// A commit's redo record: everything needed to replay it physically.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoRecord {
    pub lsn: u64,
    pub txn: u64,
    pub ops: Vec<RedoOp>,
}

// ---- binary codec ----
//
// Record layout: [len: u32][payload], where `len` counts the payload bytes
// and the payload ends with an FNV-1a checksum over everything before it:
//   payload = [lsn u64][txn u64][nops u32] op* [crc u32]
//   op      = [tag u8][table u32][rowid u64] (row for insert/update)
//   row     = [ncols u32] value*
//   value   = [tag u8] ...
// All integers little-endian. A record whose bytes run out mid-payload or
// whose checksum mismatches is *torn* and recovery truncates it.

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let b = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let b = buf.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(2);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(3);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(4);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.push(5);
            put_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
    }
}

fn decode_value(buf: &[u8], at: &mut usize) -> Option<Value> {
    let tag = *buf.get(*at)?;
    *at += 1;
    Some(match tag {
        0 => Value::Null,
        1 => {
            let b = *buf.get(*at)?;
            *at += 1;
            Value::Bool(b != 0)
        }
        2 => Value::Int(get_u64(buf, at)? as i64),
        3 => Value::Float(f64::from_bits(get_u64(buf, at)?)),
        4 => {
            let n = get_u32(buf, at)? as usize;
            let bytes = buf.get(*at..*at + n)?;
            *at += n;
            Value::Str(String::from_utf8(bytes.to_vec()).ok()?)
        }
        5 => {
            let n = get_u32(buf, at)? as usize;
            let bytes = buf.get(*at..*at + n)?;
            *at += n;
            Value::Bytes(bytes.to_vec())
        }
        _ => return None,
    })
}

/// Canonically encode one row (also used by [`crate::Database::state_digest`]).
pub fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        encode_value(buf, v);
    }
}

fn decode_row(buf: &[u8], at: &mut usize) -> Option<Row> {
    let n = get_u32(buf, at)? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(decode_value(buf, at)?);
    }
    Some(row)
}

impl RedoRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        put_u64(&mut payload, self.lsn);
        put_u64(&mut payload, self.txn);
        put_u32(&mut payload, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                RedoOp::Insert { table, rowid, row } => {
                    payload.push(OP_INSERT);
                    put_u32(&mut payload, *table);
                    put_u64(&mut payload, *rowid);
                    encode_row(&mut payload, row);
                }
                RedoOp::Update { table, rowid, row } => {
                    payload.push(OP_UPDATE);
                    put_u32(&mut payload, *table);
                    put_u64(&mut payload, *rowid);
                    encode_row(&mut payload, row);
                }
                RedoOp::Delete { table, rowid } => {
                    payload.push(OP_DELETE);
                    put_u32(&mut payload, *table);
                    put_u64(&mut payload, *rowid);
                }
            }
        }
        let crc = fnv1a(&payload);
        put_u32(&mut payload, crc);
        let mut out = Vec::with_capacity(4 + payload.len());
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }
}

/// Result of decoding one record at an offset.
pub enum Decoded {
    /// A complete, checksum-valid record; `usize` is the total bytes consumed.
    Record(RedoRecord, usize),
    /// The buffer ends mid-record (or fails its checksum): a torn tail.
    Torn,
}

/// Decode the record starting at `at`. Returns [`Decoded::Torn`] when the
/// remaining bytes cannot hold a complete, checksum-valid record.
pub fn decode_record(buf: &[u8], at: usize) -> Decoded {
    let mut pos = at;
    let Some(len) = get_u32(buf, &mut pos) else {
        return Decoded::Torn;
    };
    let len = len as usize;
    if buf.len() < pos + len || len < 24 {
        return Decoded::Torn;
    }
    let payload = &buf[pos..pos + len];
    let stored_crc = u32::from_le_bytes(payload[len - 4..].try_into().unwrap());
    if fnv1a(&payload[..len - 4]) != stored_crc {
        return Decoded::Torn;
    }
    let mut p = 0usize;
    let (Some(lsn), Some(txn), Some(nops)) = (
        get_u64(payload, &mut p),
        get_u64(payload, &mut p),
        get_u32(payload, &mut p),
    ) else {
        return Decoded::Torn;
    };
    let mut ops = Vec::with_capacity(nops as usize);
    for _ in 0..nops {
        let Some(&tag) = payload.get(p) else {
            return Decoded::Torn;
        };
        p += 1;
        let (Some(table), Some(rowid)) = (get_u32(payload, &mut p), get_u64(payload, &mut p))
        else {
            return Decoded::Torn;
        };
        let op = match tag {
            OP_INSERT | OP_UPDATE => {
                let Some(row) = decode_row(payload, &mut p) else {
                    return Decoded::Torn;
                };
                if tag == OP_INSERT {
                    RedoOp::Insert { table, rowid, row }
                } else {
                    RedoOp::Update { table, rowid, row }
                }
            }
            OP_DELETE => RedoOp::Delete { table, rowid },
            _ => return Decoded::Torn,
        };
        ops.push(op);
    }
    Decoded::Record(RedoRecord { lsn, txn, ops }, 4 + len)
}

/// A materialized table image: committed rows keyed by `(table id, rowid)`.
pub type TableImage = BTreeMap<u32, BTreeMap<RowId, Row>>;

/// A checkpoint: the committed state as of `lsn`, as a physical image.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    pub lsn: u64,
    pub tables: TableImage,
}

/// Apply one redo record to an image (checkpoint build and recovery share
/// this).
pub fn apply_record(image: &mut TableImage, rec: &RedoRecord) {
    for op in &rec.ops {
        match op {
            RedoOp::Insert { table, rowid, row } | RedoOp::Update { table, rowid, row } => {
                image.entry(*table).or_default().insert(*rowid, row.clone());
            }
            RedoOp::Delete { table, rowid } => {
                if let Some(t) = image.get_mut(table) {
                    t.remove(rowid);
                }
            }
        }
    }
}

/// What [`crate::Database::recover`] did, for callers and the journal.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    pub replayed_records: u64,
    pub torn_truncated: u64,
    pub checkpoint_lsn: u64,
    pub durable_lsn: u64,
    pub duration_us: u64,
    pub generation: u64,
}

/// What [`crate::Database::checkpoint`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointStats {
    pub lsn: u64,
    pub records_applied: u64,
    pub segments_truncated: u64,
}

/// Lock-free recovery bookkeeping, exposed as `bp_recovery_*` metrics.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    crashes: AtomicU64,
    recoveries: AtomicU64,
    replayed_records: AtomicU64,
    torn_truncations: AtomicU64,
    checkpoints: AtomicU64,
    segments_truncated: AtomicU64,
    last_recovery_us: AtomicU64,
    /// Crashpoint index + 1 of the most recent crash; 0 = never crashed.
    last_crashpoint: AtomicU64,
    checkpoint_lsn: AtomicU64,
    durable_lsn: AtomicU64,
    crashed: AtomicBool,
}

/// A point-in-time copy of [`RecoveryStats`] (plus the engine generation),
/// consumed by `/recovery/status`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStatus {
    pub crashed: bool,
    pub crashes: u64,
    pub recoveries: u64,
    pub replayed_records: u64,
    pub torn_truncations: u64,
    pub checkpoints: u64,
    pub segments_truncated: u64,
    pub last_recovery_us: u64,
    pub last_crashpoint: Option<CrashPoint>,
    pub checkpoint_lsn: u64,
    pub durable_lsn: u64,
    pub generation: u64,
}

impl RecoveryStats {
    pub fn new() -> RecoveryStats {
        RecoveryStats::default()
    }

    pub fn note_crash(&self, point: CrashPoint) {
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.last_crashpoint.store(point.index() + 1, Ordering::Relaxed);
        self.crashed.store(true, Ordering::Relaxed);
    }

    pub fn note_recovery(&self, rep: &RecoveryReport) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.replayed_records.fetch_add(rep.replayed_records, Ordering::Relaxed);
        self.torn_truncations.fetch_add(rep.torn_truncated, Ordering::Relaxed);
        self.last_recovery_us.store(rep.duration_us, Ordering::Relaxed);
        self.durable_lsn.store(rep.durable_lsn, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
    }

    pub fn note_checkpoint(&self, s: &CheckpointStats) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.segments_truncated.fetch_add(s.segments_truncated, Ordering::Relaxed);
        self.checkpoint_lsn.store(s.lsn, Ordering::Relaxed);
    }

    pub fn note_durable(&self, lsn: u64) {
        self.durable_lsn.store(lsn, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        self.checkpoint_lsn.store(0, Ordering::Relaxed);
        self.durable_lsn.store(0, Ordering::Relaxed);
    }

    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    pub fn status(&self, generation: u64) -> RecoveryStatus {
        let cp = self.last_crashpoint.load(Ordering::Relaxed);
        RecoveryStatus {
            crashed: self.crashed.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            torn_truncations: self.torn_truncations.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            segments_truncated: self.segments_truncated.load(Ordering::Relaxed),
            last_recovery_us: self.last_recovery_us.load(Ordering::Relaxed),
            last_crashpoint: cp.checked_sub(1).map(CrashPoint::from_magnitude),
            checkpoint_lsn: self.checkpoint_lsn.load(Ordering::Relaxed),
            durable_lsn: self.durable_lsn.load(Ordering::Relaxed),
            generation,
        }
    }
}

impl bp_obs::MetricsSource for RecoveryStats {
    fn collect(&self, buf: &mut bp_obs::MetricsBuf) {
        let s = self.status(0);
        let counters: [(&str, u64); 6] = [
            ("crashes", s.crashes),
            ("recoveries", s.recoveries),
            ("replayed_records", s.replayed_records),
            ("torn_truncations", s.torn_truncations),
            ("checkpoints", s.checkpoints),
            ("segments_truncated", s.segments_truncated),
        ];
        for (name, v) in counters {
            let full = format!("bp_recovery_{name}_total");
            buf.counter(&full, "Crash-recovery counter", &[], v as f64);
        }
        buf.gauge(
            "bp_recovery_crashed",
            "1 while the storage engine is dead awaiting recovery",
            &[],
            s.crashed as u64 as f64,
        );
        buf.gauge(
            "bp_recovery_last_duration_us",
            "Duration of the most recent recovery in microseconds",
            &[],
            s.last_recovery_us as f64,
        );
        buf.gauge(
            "bp_recovery_checkpoint_lsn",
            "Stable LSN of the latest checkpoint",
            &[],
            s.checkpoint_lsn as f64,
        );
        buf.gauge(
            "bp_recovery_durable_lsn",
            "Highest LSN whose redo record is durable",
            &[],
            s.durable_lsn as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RedoRecord {
        RedoRecord {
            lsn: 42,
            txn: 7,
            ops: vec![
                RedoOp::Insert {
                    table: 1,
                    rowid: 0,
                    row: vec![Value::Int(1), Value::Str("hello".into()), Value::Null],
                },
                RedoOp::Update {
                    table: 1,
                    rowid: 0,
                    row: vec![Value::Int(1), Value::Str("bye".into()), Value::Float(2.5)],
                },
                RedoOp::Delete { table: 2, rowid: 9 },
            ],
        }
    }

    #[test]
    fn record_round_trip() {
        let rec = sample_record();
        let bytes = rec.encode();
        match decode_record(&bytes, 0) {
            Decoded::Record(got, consumed) => {
                assert_eq!(got, rec);
                assert_eq!(consumed, bytes.len());
            }
            Decoded::Torn => panic!("complete record decoded as torn"),
        }
    }

    #[test]
    fn every_truncation_is_torn() {
        let bytes = sample_record().encode();
        for cut in 0..bytes.len() {
            match decode_record(&bytes[..cut], 0) {
                Decoded::Torn => {}
                Decoded::Record(..) => panic!("prefix of {cut} bytes decoded as complete"),
            }
        }
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let mut bytes = sample_record().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(decode_record(&bytes, 0), Decoded::Torn));
    }

    #[test]
    fn sequential_records_decode() {
        let a = RedoRecord { lsn: 1, txn: 1, ops: vec![RedoOp::Delete { table: 1, rowid: 0 }] };
        let b = sample_record();
        let mut buf = a.encode();
        buf.extend_from_slice(&b.encode());
        let Decoded::Record(got_a, next) = decode_record(&buf, 0) else {
            panic!("torn");
        };
        assert_eq!(got_a, a);
        let Decoded::Record(got_b, _) = decode_record(&buf, next) else {
            panic!("torn");
        };
        assert_eq!(got_b, b);
    }

    #[test]
    fn apply_record_builds_image() {
        let mut image = TableImage::new();
        apply_record(
            &mut image,
            &RedoRecord {
                lsn: 1,
                txn: 1,
                ops: vec![
                    RedoOp::Insert { table: 1, rowid: 3, row: vec![Value::Int(10)] },
                    RedoOp::Insert { table: 1, rowid: 4, row: vec![Value::Int(20)] },
                ],
            },
        );
        apply_record(
            &mut image,
            &RedoRecord {
                lsn: 2,
                txn: 2,
                ops: vec![
                    RedoOp::Update { table: 1, rowid: 3, row: vec![Value::Int(11)] },
                    RedoOp::Delete { table: 1, rowid: 4 },
                ],
            },
        );
        let t = &image[&1];
        assert_eq!(t.len(), 1);
        assert_eq!(t[&3], vec![Value::Int(11)]);
    }

    #[test]
    fn crashpoint_magnitude_mapping() {
        assert_eq!(CrashPoint::from_magnitude(0), CrashPoint::BeforeAppend);
        assert_eq!(CrashPoint::from_magnitude(1), CrashPoint::AfterAppendBeforeFsync);
        assert_eq!(CrashPoint::from_magnitude(2), CrashPoint::AfterFsync);
        assert_eq!(CrashPoint::from_magnitude(5), CrashPoint::AfterFsync);
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::from_magnitude(p.index()), p);
        }
    }

    #[test]
    fn stats_lifecycle() {
        let s = RecoveryStats::new();
        s.note_crash(CrashPoint::AfterFsync);
        let st = s.status(1);
        assert!(st.crashed);
        assert_eq!(st.last_crashpoint, Some(CrashPoint::AfterFsync));
        s.note_recovery(&RecoveryReport {
            replayed_records: 12,
            torn_truncated: 1,
            durable_lsn: 40,
            duration_us: 900,
            ..Default::default()
        });
        let st = s.status(2);
        assert!(!st.crashed);
        assert_eq!(st.recoveries, 1);
        assert_eq!(st.replayed_records, 12);
        assert_eq!(st.torn_truncations, 1);
        assert_eq!(st.generation, 2);
    }

    #[test]
    fn metrics_expose_recovery_series() {
        use bp_obs::MetricsSource as _;
        let s = RecoveryStats::new();
        s.note_crash(CrashPoint::BeforeAppend);
        let mut buf = bp_obs::MetricsBuf::new();
        s.collect(&mut buf);
        let samples = buf.into_samples();
        // 6 counters + 4 gauges.
        assert_eq!(samples.len(), 10);
        assert!(samples.iter().any(|x| {
            x.name == "bp_recovery_crashes_total"
                && x.value == bp_obs::MetricValue::Counter(1.0)
        }));
        assert!(samples.iter().any(|x| {
            x.name == "bp_recovery_crashed" && x.value == bp_obs::MetricValue::Gauge(1.0)
        }));
    }
}
