//! Error types for the embedded storage engine.

use std::fmt;

/// Errors surfaced by the storage engine.
///
/// `Deadlock` and `LockTimeout` are *retryable*: the transaction has been
/// rolled back and the caller (benchmark control code) may re-submit it,
/// mirroring how OLTP-Bench counts and retries aborted transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Wait-die policy killed this (younger) transaction to avoid deadlock.
    Deadlock { waiting_for: u64 },
    /// Lock wait exceeded the engine's timeout.
    LockTimeout,
    /// Unique constraint violation.
    DuplicateKey { table: String, key: String },
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced index does not exist.
    NoSuchIndex(String),
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// Row not found (by rowid — indicates caller bug or concurrent delete).
    RowGone,
    /// Value does not match column type / nullability.
    TypeMismatch { column: String, expected: String, got: String },
    /// Wrong number of values for the table's schema.
    ArityMismatch { expected: usize, got: usize },
    /// Operation requires an active transaction.
    NoActiveTransaction,
    /// A transaction is already active on this session.
    TransactionActive,
    /// Table already exists.
    TableExists(String),
    /// Index already exists.
    IndexExists(String),
    /// Schema definition invalid.
    InvalidSchema(String),
    /// Engine was shut down / reset while the operation was in flight.
    Shutdown,
    /// The storage engine crashed (injected server crash); every operation
    /// fails until recovery completes. Retryable so resilient clients ride
    /// through the outage on backoff while the supervisor recovers.
    Crashed,
    /// Transient fault injected by the chaos layer (retryable).
    Injected { site: &'static str },
}

impl StorageError {
    /// True when the failed transaction may simply be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StorageError::Deadlock { .. }
                | StorageError::LockTimeout
                | StorageError::Crashed
                | StorageError::Injected { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Deadlock { waiting_for } => {
                write!(f, "deadlock avoided (wait-die): aborted while waiting for txn {waiting_for}")
            }
            StorageError::LockTimeout => write!(f, "lock wait timeout"),
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            StorageError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StorageError::RowGone => write!(f, "row no longer exists"),
            StorageError::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch for column {column}: expected {expected}, got {got}")
            }
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: expected {expected} values, got {got}")
            }
            StorageError::NoActiveTransaction => write!(f, "no active transaction"),
            StorageError::TransactionActive => write!(f, "transaction already active"),
            StorageError::TableExists(t) => write!(f, "table already exists: {t}"),
            StorageError::IndexExists(i) => write!(f, "index already exists: {i}"),
            StorageError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            StorageError::Shutdown => write!(f, "engine shut down"),
            StorageError::Crashed => write!(f, "storage engine crashed; recovery pending"),
            StorageError::Injected { site } => write!(f, "injected transient fault at {site}"),
        }
    }
}

impl std::error::Error for StorageError {}

pub type Result<T> = std::result::Result<T, StorageError>;
