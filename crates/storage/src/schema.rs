//! Table schemas: columns, primary keys, secondary index definitions.

use crate::error::{Result, StorageError};
use crate::value::{DataType, Row, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: &str, ty: DataType) -> Column {
        Column { name: name.to_string(), ty, nullable: false }
    }

    pub fn nullable(name: &str, ty: DataType) -> Column {
        Column { name: name.to_string(), ty, nullable: true }
    }
}

/// A table schema: ordered columns plus the primary-key column positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Indices into `columns` forming the primary key (possibly composite).
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Build and validate a schema. Primary key columns are identified by
    /// name and must exist and be non-nullable.
    pub fn new(name: &str, columns: Vec<Column>, primary_key: &[&str]) -> Result<TableSchema> {
        if columns.is_empty() {
            return Err(StorageError::InvalidSchema(format!("table {name} has no columns")));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        let mut pk = Vec::with_capacity(primary_key.len());
        for key_col in primary_key {
            let idx = columns
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(key_col))
                .ok_or_else(|| StorageError::NoSuchColumn((*key_col).to_string()))?;
            if columns[idx].nullable {
                return Err(StorageError::InvalidSchema(format!(
                    "primary key column {key_col} must be NOT NULL"
                )));
            }
            if pk.contains(&idx) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate primary key column {key_col}"
                )));
            }
            pk.push(idx);
        }
        Ok(TableSchema { name: name.to_string(), columns, primary_key: pk })
    }

    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StorageError::NoSuchColumn(name.to_string()))
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Extract the primary-key values from a row.
    pub fn pk_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validate a row against the schema and coerce values into storage form.
    pub fn check_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.columns) {
            if value.is_null() && !col.nullable {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: format!("{} NOT NULL", col.ty),
                    got: "NULL".to_string(),
                });
            }
            if !value.conforms_to(col.ty) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: value
                        .data_type()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "NULL".to_string()),
                });
            }
            out.push(value.coerce(col.ty));
        }
        Ok(out)
    }

    /// Approximate row byte size for the cost model.
    pub fn row_bytes(&self, row: &Row) -> usize {
        row.iter().map(Value::byte_size).sum::<usize>() + 8
    }
}

/// A secondary-index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    pub table: String,
    /// Column positions forming the key.
    pub key_columns: Vec<usize>,
    pub unique: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "accounts",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
                Column::nullable("balance", DataType::Float),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let s = schema();
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(s.column_index("NAME").unwrap(), 1);
        assert!(s.column_index("nope").is_err());
    }

    #[test]
    fn pk_extraction() {
        let s = schema();
        let row = vec![Value::Int(7), Value::Str("x".into()), Value::Null];
        assert_eq!(s.pk_of(&row), vec![Value::Int(7)]);
    }

    #[test]
    fn check_row_valid_and_coerces() {
        let s = schema();
        let row = s
            .check_row(vec![Value::Int(1), Value::Str("a".into()), Value::Int(5)])
            .unwrap();
        assert_eq!(row[2], Value::Float(5.0));
    }

    #[test]
    fn check_row_rejects_null_in_not_null() {
        let s = schema();
        let err = s
            .check_row(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn check_row_rejects_wrong_type() {
        let s = schema();
        let err = s
            .check_row(vec![Value::Str("x".into()), Value::Str("a".into()), Value::Null])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn check_row_rejects_arity() {
        let s = schema();
        let err = s.check_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(err, StorageError::ArityMismatch { expected: 3, got: 1 });
    }

    #[test]
    fn rejects_nullable_pk() {
        let e = TableSchema::new(
            "t",
            vec![Column::nullable("id", DataType::Int)],
            &["id"],
        )
        .unwrap_err();
        assert!(matches!(e, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn rejects_duplicate_columns() {
        let e = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), Column::new("A", DataType::Int)],
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, StorageError::InvalidSchema(_)));
    }

    #[test]
    fn composite_pk() {
        let s = TableSchema::new(
            "order_line",
            vec![
                Column::new("o_id", DataType::Int),
                Column::new("number", DataType::Int),
                Column::new("qty", DataType::Int),
            ],
            &["o_id", "number"],
        )
        .unwrap();
        assert_eq!(s.primary_key, vec![0, 1]);
    }
}
