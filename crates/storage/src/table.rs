//! Heap tables with a clustered primary-key index and secondary B-tree
//! indexes.
//!
//! The physical structures are latched with a `bp_util::sync::RwLock`;
//! *logical* isolation (row/table locks) is enforced above this layer by the
//! engine, so methods here assume the caller already holds the appropriate
//! logical locks.

use std::collections::BTreeMap;
use std::ops::Bound;

use bp_util::sync::RwLock;

use crate::error::{Result, StorageError};
use crate::schema::{IndexDef, TableSchema};
use crate::value::{Row, Value};

pub type RowId = u64;

#[derive(Debug)]
struct IndexState {
    def: IndexDef,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl IndexState {
    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.def.key_columns.iter().map(|&i| row[i].clone()).collect()
    }

    fn insert(&mut self, key: Vec<Value>, rowid: RowId, table: &str) -> Result<()> {
        let slot = self.map.entry(key).or_default();
        if self.def.unique && !slot.is_empty() {
            return Err(StorageError::DuplicateKey {
                table: table.to_string(),
                key: self.def.name.clone(),
            });
        }
        slot.push(rowid);
        Ok(())
    }

    fn remove(&mut self, key: &[Value], rowid: RowId) {
        if let Some(slot) = self.map.get_mut(key) {
            slot.retain(|r| *r != rowid);
            if slot.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

#[derive(Debug, Default)]
struct TableData {
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    pk: BTreeMap<Vec<Value>, RowId>,
    indexes: Vec<IndexState>,
}

/// A table: schema plus latched data.
#[derive(Debug)]
pub struct Table {
    pub id: u32,
    pub schema: TableSchema,
    data: RwLock<TableData>,
}

/// Inclusive/exclusive range bounds over index keys.
pub type KeyBound<'a> = Bound<&'a [Value]>;

impl Table {
    pub fn new(id: u32, schema: TableSchema) -> Table {
        Table { id, schema, data: RwLock::new(TableData::default()) }
    }

    pub fn name(&self) -> &str {
        &self.schema.name
    }

    pub fn len(&self) -> usize {
        self.data.read().live
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add a secondary index; backfills from existing rows.
    pub fn add_index(&self, def: IndexDef) -> Result<()> {
        let mut d = self.data.write();
        if d.indexes.iter().any(|ix| ix.def.name.eq_ignore_ascii_case(&def.name)) {
            return Err(StorageError::IndexExists(def.name));
        }
        let mut ix = IndexState { def, map: BTreeMap::new() };
        for (rowid, slot) in d.slots.iter().enumerate() {
            if let Some(row) = slot {
                let key = ix.key_of(row);
                ix.insert(key, rowid as RowId, &self.schema.name)?;
            }
        }
        d.indexes.push(ix);
        Ok(())
    }

    pub fn index_names(&self) -> Vec<String> {
        self.data.read().indexes.iter().map(|ix| ix.def.name.clone()).collect()
    }

    fn index_pos(d: &TableData, name: &str) -> Result<usize> {
        d.indexes
            .iter()
            .position(|ix| ix.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StorageError::NoSuchIndex(name.to_string()))
    }

    /// Find an index whose key columns are exactly `cols` (in order).
    pub fn index_on(&self, cols: &[usize]) -> Option<String> {
        let d = self.data.read();
        d.indexes
            .iter()
            .find(|ix| ix.def.key_columns == cols)
            .map(|ix| ix.def.name.clone())
    }

    /// Find an index whose key *prefix* is `cols`.
    pub fn index_with_prefix(&self, cols: &[usize]) -> Option<String> {
        let d = self.data.read();
        d.indexes
            .iter()
            .find(|ix| ix.def.key_columns.len() >= cols.len() && ix.def.key_columns[..cols.len()] == *cols)
            .map(|ix| ix.def.name.clone())
    }

    /// Insert a validated row, returning its rowid.
    pub fn insert(&self, row: Row) -> Result<RowId> {
        let mut d = self.data.write();
        // Primary-key uniqueness.
        let pk = self.schema.pk_of(&row);
        if self.schema.has_primary_key() && d.pk.contains_key(&pk) {
            return Err(StorageError::DuplicateKey {
                table: self.schema.name.clone(),
                key: format!("{pk:?}"),
            });
        }
        // Unique secondary indexes.
        for ix in &d.indexes {
            if ix.def.unique {
                let key = ix.key_of(&row);
                if ix.map.contains_key(&key) {
                    return Err(StorageError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: format!("{}={key:?}", ix.def.name),
                    });
                }
            }
        }
        let rowid = match d.free.pop() {
            Some(r) => {
                d.slots[r as usize] = Some(row.clone());
                r
            }
            None => {
                d.slots.push(Some(row.clone()));
                (d.slots.len() - 1) as RowId
            }
        };
        if self.schema.has_primary_key() {
            d.pk.insert(pk, rowid);
        }
        for ix in &mut d.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, rowid, &self.schema.name)?;
        }
        d.live += 1;
        Ok(rowid)
    }

    /// Fetch a row by rowid.
    pub fn get(&self, rowid: RowId) -> Option<Row> {
        self.data.read().slots.get(rowid as usize)?.clone()
    }

    /// Overwrite a row in place, maintaining all indexes.
    /// Returns the before-image.
    pub fn update(&self, rowid: RowId, new_row: Row) -> Result<Row> {
        let mut d = self.data.write();
        let old = d
            .slots
            .get(rowid as usize)
            .and_then(|s| s.clone())
            .ok_or(StorageError::RowGone)?;

        let old_pk = self.schema.pk_of(&old);
        let new_pk = self.schema.pk_of(&new_row);
        if self.schema.has_primary_key() && old_pk != new_pk {
            if d.pk.contains_key(&new_pk) {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: format!("{new_pk:?}"),
                });
            }
            d.pk.remove(&old_pk);
            d.pk.insert(new_pk, rowid);
        }
        // Unique check first (excluding this row), then mutate.
        for ix in &d.indexes {
            if ix.def.unique {
                let new_key = ix.key_of(&new_row);
                if let Some(slot) = ix.map.get(&new_key) {
                    if slot.iter().any(|r| *r != rowid) {
                        return Err(StorageError::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: format!("{}={new_key:?}", ix.def.name),
                        });
                    }
                }
            }
        }
        for ix in &mut d.indexes {
            let old_key = ix.key_of(&old);
            let new_key = ix.key_of(&new_row);
            if old_key != new_key {
                ix.remove(&old_key, rowid);
                ix.insert(new_key, rowid, &self.schema.name)?;
            }
        }
        d.slots[rowid as usize] = Some(new_row);
        Ok(old)
    }

    /// Delete a row, returning its before-image.
    pub fn delete(&self, rowid: RowId) -> Result<Row> {
        let mut d = self.data.write();
        let old = d
            .slots
            .get(rowid as usize)
            .and_then(|s| s.clone())
            .ok_or(StorageError::RowGone)?;
        if self.schema.has_primary_key() {
            let pk = self.schema.pk_of(&old);
            d.pk.remove(&pk);
        }
        for ix in &mut d.indexes {
            let key = ix.key_of(&old);
            ix.remove(&key, rowid);
        }
        d.slots[rowid as usize] = None;
        d.free.push(rowid);
        d.live -= 1;
        Ok(old)
    }

    /// Primary-key point lookup.
    pub fn lookup_pk(&self, key: &[Value]) -> Option<RowId> {
        self.data.read().pk.get(key).copied()
    }

    /// Primary-key range scan (over pk order).
    pub fn pk_range(&self, lo: KeyBound<'_>, hi: KeyBound<'_>, limit: usize) -> Vec<RowId> {
        let d = self.data.read();
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        d.pk.range((lo, hi)).take(limit).map(|(_, r)| *r).collect()
    }

    /// Rows whose primary key starts with `prefix` (composite-PK prefix).
    pub fn pk_prefix(&self, prefix: &[Value], limit: usize) -> Vec<RowId> {
        let d = self.data.read();
        let mut out = Vec::new();
        for (key, rowid) in d.pk.range(prefix.to_vec()..) {
            if key.len() < prefix.len() || key[..prefix.len()] != *prefix {
                break;
            }
            if out.len() >= limit {
                break;
            }
            out.push(*rowid);
        }
        out
    }

    /// Definitions of all secondary indexes.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.data.read().indexes.iter().map(|ix| ix.def.clone()).collect()
    }

    /// Secondary-index point lookup.
    pub fn index_lookup(&self, index: &str, key: &[Value]) -> Result<Vec<RowId>> {
        let d = self.data.read();
        let pos = Self::index_pos(&d, index)?;
        Ok(d.indexes[pos].map.get(key).cloned().unwrap_or_default())
    }

    /// Secondary-index range scan.
    pub fn index_range(
        &self,
        index: &str,
        lo: KeyBound<'_>,
        hi: KeyBound<'_>,
        limit: usize,
    ) -> Result<Vec<RowId>> {
        let d = self.data.read();
        let pos = Self::index_pos(&d, index)?;
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        let mut out = Vec::new();
        for (_, rowids) in d.indexes[pos].map.range((lo, hi)) {
            for r in rowids {
                if out.len() >= limit {
                    return Ok(out);
                }
                out.push(*r);
            }
        }
        Ok(out)
    }

    /// Rows whose index key starts with `prefix` (composite-index prefix
    /// scan, e.g. all order lines of one order).
    pub fn index_prefix(&self, index: &str, prefix: &[Value], limit: usize) -> Result<Vec<RowId>> {
        let d = self.data.read();
        let pos = Self::index_pos(&d, index)?;
        let mut out = Vec::new();
        for (key, rowids) in d.indexes[pos].map.range(prefix.to_vec()..) {
            if key.len() < prefix.len() || key[..prefix.len()] != *prefix {
                break;
            }
            for r in rowids {
                if out.len() >= limit {
                    return Ok(out);
                }
                out.push(*r);
            }
        }
        Ok(out)
    }

    /// Materialized full scan.
    pub fn scan(&self) -> Vec<(RowId, Row)> {
        let d = self.data.read();
        d.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i as RowId, r.clone())))
            .collect()
    }

    /// Re-insert a row into a specific slot (transaction rollback of a
    /// delete). The slot must be vacant.
    pub fn restore(&self, rowid: RowId, row: Row) -> Result<()> {
        let mut d = self.data.write();
        let idx = rowid as usize;
        if idx >= d.slots.len() || d.slots[idx].is_some() {
            return Err(StorageError::RowGone);
        }
        if self.schema.has_primary_key() {
            let pk = self.schema.pk_of(&row);
            d.pk.insert(pk, rowid);
        }
        for ix in &mut d.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, rowid, &self.schema.name)?;
        }
        d.free.retain(|r| *r != rowid);
        d.slots[idx] = Some(row);
        d.live += 1;
        Ok(())
    }

    /// Replace the table's contents with a recovered image, placing each
    /// row at its original slot so recovered rowids match the pre-crash
    /// run. Holes left by committed deletes become free slots again.
    pub fn rebuild_from(&self, rows: &BTreeMap<RowId, Row>) {
        let mut d = self.data.write();
        d.slots.clear();
        d.free.clear();
        d.pk.clear();
        for ix in &mut d.indexes {
            ix.map.clear();
        }
        let cap = rows.keys().next_back().map(|r| *r as usize + 1).unwrap_or(0);
        d.slots.resize(cap, None);
        for (&rowid, row) in rows {
            if self.schema.has_primary_key() {
                let pk = self.schema.pk_of(row);
                d.pk.insert(pk, rowid);
            }
            for ix in &mut d.indexes {
                let key = ix.key_of(row);
                // The image is committed state, so uniqueness holds by
                // construction; a violation here is an engine bug.
                let ok = ix.insert(key, rowid, &self.schema.name).is_ok();
                debug_assert!(ok, "recovered image violates index {}", ix.def.name);
            }
            d.slots[rowid as usize] = Some(row.clone());
        }
        d.live = rows.len();
        // Vacant slots (committed deletes) are free again; highest first so
        // `free.pop()` hands out the lowest rowid, like fresh growth would.
        d.free = (0..cap as RowId).rev().filter(|r| d.slots[*r as usize].is_none()).collect();
    }

    /// Remove every row (used by truncate / game reset).
    pub fn truncate(&self) {
        let mut d = self.data.write();
        d.slots.clear();
        d.free.clear();
        d.live = 0;
        d.pk.clear();
        for ix in &mut d.indexes {
            ix.map.clear();
        }
    }
}

fn map_bound(b: KeyBound<'_>) -> Bound<Vec<Value>> {
    match b {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("name", DataType::Str),
            ],
            &["id"],
        )
        .unwrap();
        let t = Table::new(1, schema);
        t.add_index(IndexDef {
            name: "t_grp".into(),
            table: "t".into(),
            key_columns: vec![1],
            unique: false,
        })
        .unwrap();
        t
    }

    fn row(id: i64, grp: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Int(grp), Value::Str(name.into())]
    }

    #[test]
    fn insert_get() {
        let t = table();
        let r = t.insert(row(1, 10, "a")).unwrap();
        assert_eq!(t.get(r).unwrap()[2], Value::Str("a".into()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let t = table();
        t.insert(row(1, 10, "a")).unwrap();
        let err = t.insert(row(1, 11, "b")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pk_lookup() {
        let t = table();
        let r = t.insert(row(7, 1, "x")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::Int(7)]), Some(r));
        assert_eq!(t.lookup_pk(&[Value::Int(8)]), None);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let t = table();
        let a = t.insert(row(1, 10, "a")).unwrap();
        let b = t.insert(row(2, 10, "b")).unwrap();
        t.insert(row(3, 20, "c")).unwrap();
        let mut hits = t.index_lookup("t_grp", &[Value::Int(10)]).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![a, b]);

        // Update moves row 2 to grp 20.
        t.update(b, row(2, 20, "b")).unwrap();
        assert_eq!(t.index_lookup("t_grp", &[Value::Int(10)]).unwrap(), vec![a]);
        assert_eq!(t.index_lookup("t_grp", &[Value::Int(20)]).unwrap().len(), 2);

        // Delete removes from the index.
        t.delete(a).unwrap();
        assert!(t.index_lookup("t_grp", &[Value::Int(10)]).unwrap().is_empty());
    }

    #[test]
    fn update_pk_change() {
        let t = table();
        let r = t.insert(row(1, 10, "a")).unwrap();
        t.update(r, row(5, 10, "a")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::Int(1)]), None);
        assert_eq!(t.lookup_pk(&[Value::Int(5)]), Some(r));
    }

    #[test]
    fn update_pk_conflict_rejected() {
        let t = table();
        let r1 = t.insert(row(1, 10, "a")).unwrap();
        t.insert(row(2, 10, "b")).unwrap();
        assert!(t.update(r1, row(2, 10, "a")).is_err());
        // Original untouched.
        assert_eq!(t.lookup_pk(&[Value::Int(1)]), Some(r1));
    }

    #[test]
    fn delete_and_slot_reuse() {
        let t = table();
        let a = t.insert(row(1, 1, "a")).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(a).is_none());
        let b = t.insert(row(2, 1, "b")).unwrap();
        assert_eq!(a, b, "slot should be reused");
    }

    #[test]
    fn double_delete_errors() {
        let t = table();
        let a = t.insert(row(1, 1, "a")).unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.delete(a).unwrap_err(), StorageError::RowGone);
    }

    #[test]
    fn pk_range_scan() {
        let t = table();
        for i in 0..20 {
            t.insert(row(i, 0, "r")).unwrap();
        }
        let got = t.pk_range(
            Bound::Included(&[Value::Int(5)][..]),
            Bound::Excluded(&[Value::Int(10)][..]),
            100,
        );
        assert_eq!(got.len(), 5);
        let limited = t.pk_range(Bound::Unbounded, Bound::Unbounded, 7);
        assert_eq!(limited.len(), 7);
    }

    #[test]
    fn index_range_and_prefix() {
        let schema = TableSchema::new(
            "ol",
            vec![
                Column::new("o", DataType::Int),
                Column::new("n", DataType::Int),
            ],
            &["o", "n"],
        )
        .unwrap();
        let t = Table::new(2, schema);
        t.add_index(IndexDef {
            name: "ol_on".into(),
            table: "ol".into(),
            key_columns: vec![0, 1],
            unique: true,
        })
        .unwrap();
        for o in 0..3i64 {
            for n in 0..4i64 {
                t.insert(vec![Value::Int(o), Value::Int(n)]).unwrap();
            }
        }
        let pre = t.index_prefix("ol_on", &[Value::Int(1)], 100).unwrap();
        assert_eq!(pre.len(), 4);
        let rng = t
            .index_range(
                "ol_on",
                Bound::Included(&[Value::Int(1), Value::Int(2)][..]),
                Bound::Unbounded,
                3,
            )
            .unwrap();
        assert_eq!(rng.len(), 3);
    }

    #[test]
    fn unique_secondary_index() {
        let t = table();
        t.add_index(IndexDef {
            name: "t_name".into(),
            table: "t".into(),
            key_columns: vec![2],
            unique: true,
        })
        .unwrap();
        t.insert(row(1, 1, "a")).unwrap();
        let err = t.insert(row(2, 2, "a")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
    }

    #[test]
    fn backfilled_index() {
        let t = table();
        t.insert(row(1, 7, "a")).unwrap();
        t.insert(row(2, 7, "b")).unwrap();
        t.add_index(IndexDef {
            name: "t_grp2".into(),
            table: "t".into(),
            key_columns: vec![1],
            unique: false,
        })
        .unwrap();
        assert_eq!(t.index_lookup("t_grp2", &[Value::Int(7)]).unwrap().len(), 2);
    }

    #[test]
    fn truncate() {
        let t = table();
        for i in 0..10 {
            t.insert(row(i, i, "x")).unwrap();
        }
        t.truncate();
        assert_eq!(t.len(), 0);
        assert!(t.scan().is_empty());
        assert!(t.index_lookup("t_grp", &[Value::Int(1)]).unwrap().is_empty());
        // Insert works again after truncate.
        t.insert(row(1, 1, "a")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rebuild_from_image_places_rows_at_original_slots() {
        let t = table();
        for i in 0..6 {
            t.insert(row(i, i % 2, "x")).unwrap();
        }
        // Image with holes at slots 1 and 4 (committed deletes).
        let mut image = BTreeMap::new();
        for rid in [0u64, 2, 3, 5] {
            image.insert(rid, row(rid as i64, 1, "r"));
        }
        t.rebuild_from(&image);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(2).unwrap()[0], Value::Int(2));
        assert!(t.get(1).is_none());
        assert_eq!(t.lookup_pk(&[Value::Int(5)]), Some(5));
        assert_eq!(t.index_lookup("t_grp", &[Value::Int(1)]).unwrap().len(), 4);
        // Vacant slots are handed out lowest-first to new inserts.
        assert_eq!(t.insert(row(100, 0, "new")).unwrap(), 1);
        assert_eq!(t.insert(row(101, 0, "new2")).unwrap(), 4);
        assert_eq!(t.insert(row(102, 0, "new3")).unwrap(), 6);
    }

    #[test]
    fn scan_returns_live_rows_only() {
        let t = table();
        let a = t.insert(row(1, 1, "a")).unwrap();
        t.insert(row(2, 2, "b")).unwrap();
        t.delete(a).unwrap();
        let rows = t.scan();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Value::Int(2));
    }
}
