//! Runtime values and column data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Bytes,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A runtime value.
///
/// Ordering is total: NULL sorts first, then by type rank, then by value
/// (floats via `total_cmp`). Cross-type Int/Float comparisons compare
/// numerically so that index keys built from either work intuitively.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Type rank for cross-type ordering. Numeric types share a rank so they
    /// compare by value.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Bytes(_) => 4,
        }
    }

    /// Check the value can be stored in a column of `ty` (NULL always passes
    /// here; nullability is enforced by the schema).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Float(_), DataType::Float) => true,
            // Allow Int literals in Float columns; coerce at insert.
            (Value::Int(_), DataType::Float) => true,
            (Value::Str(_), DataType::Str) => true,
            (Value::Bytes(_), DataType::Bytes) => true,
            _ => false,
        }
    }

    /// Coerce into the column's storage representation (Int→Float only).
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Approximate in-memory size, used by the WAL and buffer-pool models.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 4,
            Value::Bytes(b) => b.len() + 4,
        }
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Hash floats by bits of the canonical form so Int(x) and
                // Float(x.0) hash identically when x is exactly representable.
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    (*f as i64).hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}'", b.iter().map(|x| format!("{x:02x}")).collect::<String>()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// A row is a vector of values, one per column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn numeric_cross_type() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn conformance() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Str));
        assert!(!Value::Str("x".into()).conforms_to(DataType::Int));
    }

    #[test]
    fn coercion() {
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert_eq!(Value::Int(3).coerce(DataType::Int), Value::Int(3));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "x'ab01'");
    }

    #[test]
    fn hash_int_float_consistent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Str("abcd".into()).byte_size(), 8);
    }
}
