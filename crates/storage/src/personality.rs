//! DBMS personalities and the service-cost model.
//!
//! The demo lets the player pick among several real DBMSs (Fig. 2b shows
//! MySQL, PostgreSQL, Apache Derby and Oracle); each system responds
//! differently to the same requested load. We cannot ship those engines, so
//! a personality parameterizes our embedded engine to *behave* like a
//! distinct system: per-operation service costs, commit/fsync cost with or
//! without group commit, IO cost on buffer-pool misses, lock granularity and
//! timeout, and execution jitter. The parameter values are synthetic but the
//! mechanisms (and therefore the relative behaviours the game exposes) are
//! real.

use std::time::{Duration, Instant};

use bp_util::rng::Rng;

/// How accrued service cost is applied to the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Do not delay (unit tests; the DES executor models time itself).
    None,
    /// Busy-wait / sleep for the accrued cost: realistic wall-clock runs.
    Busy,
}

/// A named parameter set emulating one DBMS.
#[derive(Debug, Clone)]
pub struct Personality {
    pub name: &'static str,
    /// Point-read service cost (µs).
    pub read_us: f64,
    /// In-place update service cost (µs).
    pub write_us: f64,
    /// Insert service cost (µs).
    pub insert_us: f64,
    /// Per-row cost during scans (µs).
    pub scan_row_us: f64,
    /// Commit (fsync) cost (µs).
    pub commit_us: f64,
    /// Commits within this window share one fsync (0 = no group commit).
    pub group_commit_window_us: u64,
    /// Cost of one simulated page IO on a buffer miss (µs).
    pub io_us: f64,
    /// Execution jitter as a ± fraction of each cost.
    pub jitter: f64,
    /// Lock wait timeout.
    pub lock_timeout: Duration,
    /// Row-level locking; when `false`, writers take table-level X locks
    /// (coarse-grained engines serialize all writes to a table).
    pub row_locking: bool,
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Rows per simulated page.
    pub rows_per_page: u64,
    /// WAL write cost per KiB (µs).
    pub wal_us_per_kb: f64,
    /// How to apply service costs.
    pub delay: DelayMode,
}

impl Personality {
    /// Fast, row-locking engine with aggressive group commit.
    pub fn mysql_like() -> Personality {
        Personality {
            name: "mysql",
            read_us: 8.0,
            write_us: 20.0,
            insert_us: 16.0,
            scan_row_us: 0.8,
            commit_us: 150.0,
            group_commit_window_us: 1_000,
            io_us: 80.0,
            jitter: 0.15,
            lock_timeout: Duration::from_millis(300),
            row_locking: true,
            buffer_pages: 16_384,
            rows_per_page: 64,
            wal_us_per_kb: 6.0,
            delay: DelayMode::Busy,
        }
    }

    /// Slightly heavier per-op cost, larger commit, wider group window.
    pub fn postgres_like() -> Personality {
        Personality {
            name: "postgres",
            read_us: 10.0,
            write_us: 26.0,
            insert_us: 20.0,
            scan_row_us: 0.6,
            commit_us: 220.0,
            group_commit_window_us: 2_000,
            io_us: 90.0,
            jitter: 0.10,
            lock_timeout: Duration::from_millis(400),
            row_locking: true,
            buffer_pages: 16_384,
            rows_per_page: 64,
            wal_us_per_kb: 7.0,
            delay: DelayMode::Busy,
        }
    }

    /// Coarse-grained locking, no group commit, slow ops: the "hard stage".
    pub fn derby_like() -> Personality {
        Personality {
            name: "derby",
            read_us: 35.0,
            write_us: 80.0,
            insert_us: 60.0,
            scan_row_us: 2.5,
            commit_us: 500.0,
            group_commit_window_us: 0,
            io_us: 150.0,
            jitter: 0.35,
            lock_timeout: Duration::from_millis(150),
            row_locking: false,
            buffer_pages: 4_096,
            rows_per_page: 64,
            wal_us_per_kb: 15.0,
            delay: DelayMode::Busy,
        }
    }

    /// Fastest point ops, very stable (low jitter): the "easy stage".
    pub fn oracle_like() -> Personality {
        Personality {
            name: "oracle",
            read_us: 6.0,
            write_us: 15.0,
            insert_us: 12.0,
            scan_row_us: 0.5,
            commit_us: 120.0,
            group_commit_window_us: 1_500,
            io_us: 70.0,
            jitter: 0.05,
            lock_timeout: Duration::from_millis(500),
            row_locking: true,
            buffer_pages: 32_768,
            rows_per_page: 64,
            wal_us_per_kb: 5.0,
            delay: DelayMode::Busy,
        }
    }

    /// Zero-cost personality for unit tests: no delays, row locks, generous
    /// timeout. Contention behaviour is still real (locks are taken).
    pub fn test() -> Personality {
        Personality {
            name: "test",
            read_us: 0.0,
            write_us: 0.0,
            insert_us: 0.0,
            scan_row_us: 0.0,
            commit_us: 0.0,
            group_commit_window_us: 0,
            io_us: 0.0,
            jitter: 0.0,
            lock_timeout: Duration::from_millis(250),
            row_locking: true,
            buffer_pages: 1_024,
            rows_per_page: 64,
            wal_us_per_kb: 0.0,
            delay: DelayMode::None,
        }
    }

    /// Look up a personality by name (used by configs and the API).
    pub fn by_name(name: &str) -> Option<Personality> {
        match name.to_ascii_lowercase().as_str() {
            "mysql" => Some(Personality::mysql_like()),
            "postgres" | "postgresql" => Some(Personality::postgres_like()),
            "derby" => Some(Personality::derby_like()),
            "oracle" => Some(Personality::oracle_like()),
            "test" => Some(Personality::test()),
            _ => None,
        }
    }

    /// All demo personalities (the Fig. 2b selection screen).
    pub fn all() -> Vec<Personality> {
        vec![
            Personality::mysql_like(),
            Personality::postgres_like(),
            Personality::derby_like(),
            Personality::oracle_like(),
        ]
    }

    /// Apply jitter to a base cost, returning the effective cost in µs.
    pub fn jittered(&self, base_us: f64, rng: &mut Rng) -> f64 {
        if self.jitter <= 0.0 || base_us <= 0.0 {
            return base_us.max(0.0);
        }
        let factor = 1.0 + rng.f64_range(-self.jitter, self.jitter);
        (base_us * factor).max(0.0)
    }
}

/// Delay the calling thread by `cost_us` according to `mode`.
///
/// Short delays (< 150µs) are spin-waited because OS sleeps are far coarser;
/// longer ones use a sleep plus a short trailing spin.
pub fn apply_delay(mode: DelayMode, cost_us: f64) {
    if cost_us <= 0.0 {
        return;
    }
    match mode {
        DelayMode::None => {}
        DelayMode::Busy => {
            let target = Duration::from_nanos((cost_us * 1_000.0) as u64);
            let start = Instant::now();
            if target > Duration::from_micros(150) {
                std::thread::sleep(target - Duration::from_micros(100));
            }
            while start.elapsed() < target {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(Personality::by_name("MySQL").unwrap().name, "mysql");
        assert_eq!(Personality::by_name("postgresql").unwrap().name, "postgres");
        assert!(Personality::by_name("sqlserver").is_none());
    }

    #[test]
    fn all_personalities_distinct() {
        let all = Personality::all();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn jitter_bounds() {
        let p = Personality::mysql_like();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let c = p.jittered(100.0, &mut rng);
            assert!((85.0 - 1e-9..=115.0 + 1e-9).contains(&c), "cost {c}");
        }
    }

    #[test]
    fn zero_jitter_identity() {
        let p = Personality::test();
        let mut rng = Rng::new(2);
        assert_eq!(p.jittered(42.0, &mut rng), 42.0);
    }

    #[test]
    fn busy_delay_takes_time() {
        let start = Instant::now();
        apply_delay(DelayMode::Busy, 300.0);
        assert!(start.elapsed() >= Duration::from_micros(280));
    }

    #[test]
    fn none_delay_is_instant() {
        let start = Instant::now();
        apply_delay(DelayMode::None, 10_000.0);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn derby_is_coarse_grained() {
        assert!(!Personality::derby_like().row_locking);
        assert!(Personality::mysql_like().row_locking);
    }
}
