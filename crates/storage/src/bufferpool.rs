//! Simulated buffer pool with CLOCK replacement.
//!
//! Rows map to pages by `rowid / rows_per_page`. A page miss charges the
//! personality's IO cost and counts an IO read; evicting a dirty page counts
//! an IO write. This gives the working-set effects that make the monitor's
//! IO column meaningful ("lower the percentage of write-intensive
//! transactions if the disk IO activity seems to saturate", §4.2).

use std::collections::HashMap;
use std::sync::Arc;

use bp_obs::{EventJournal, Severity};
use bp_util::sync::Mutex;

use crate::metrics::ServerMetrics;

/// Accesses per pressure-detection epoch.
const PRESSURE_EPOCH: u64 = 1024;
/// Miss-ratio hysteresis: enter pressure above `HIGH`, leave below `LOW`.
const PRESSURE_HIGH: f64 = 0.5;
const PRESSURE_LOW: f64 = 0.3;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    pub table: u32,
    pub page: u64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    key: PageId,
    referenced: bool,
    dirty: bool,
}

#[derive(Debug)]
struct PoolState {
    map: HashMap<PageId, usize>,
    frames: Vec<Frame>,
    hand: usize,
    /// Accesses/misses in the current pressure epoch.
    epoch_accesses: u64,
    epoch_misses: u64,
    /// Whether the pool is currently in the "pressured" regime.
    pressured: bool,
}

/// The access outcome, used by the engine to charge IO cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    pub hit: bool,
    /// Number of simulated IOs performed (read miss and/or dirty eviction).
    pub ios: u32,
}

pub struct BufferPool {
    capacity: usize,
    rows_per_page: u64,
    state: Mutex<PoolState>,
    journal: Option<Arc<EventJournal>>,
}

impl BufferPool {
    pub fn new(capacity: usize, rows_per_page: u64) -> BufferPool {
        assert!(capacity > 0 && rows_per_page > 0);
        BufferPool {
            capacity,
            rows_per_page,
            state: Mutex::new(PoolState {
                map: HashMap::with_capacity(capacity),
                frames: Vec::with_capacity(capacity),
                hand: 0,
                epoch_accesses: 0,
                epoch_misses: 0,
                pressured: false,
            }),
            journal: None,
        }
    }

    /// Attach the event journal (pressure-crossing events) — builder style
    /// so the plain constructor keeps working everywhere.
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> BufferPool {
        self.journal = Some(journal);
        self
    }

    /// Close a pressure epoch: on a hysteresis crossing, flip the regime
    /// and journal it. Called with the state lock held.
    fn note_epoch(&self, st: &mut PoolState) {
        let ratio = st.epoch_misses as f64 / st.epoch_accesses as f64;
        st.epoch_accesses = 0;
        st.epoch_misses = 0;
        let crossed = if st.pressured { ratio < PRESSURE_LOW } else { ratio > PRESSURE_HIGH };
        if !crossed {
            return;
        }
        st.pressured = !st.pressured;
        let entering = st.pressured;
        if let Some(j) = &self.journal {
            let sev = if entering { Severity::Warn } else { Severity::Info };
            j.emit_with(sev, "storage", "buffer_pressure", || {
                (
                    format!(
                        "buffer pool {} pressure (miss ratio {:.0}% over {PRESSURE_EPOCH} accesses)",
                        if entering { "entered" } else { "left" },
                        ratio * 100.0,
                    ),
                    vec![
                        ("ratio", format!("{ratio:.3}")),
                        ("state", if entering { "pressured" } else { "ok" }.to_string()),
                    ],
                )
            });
        }
    }

    pub fn page_of(&self, table: u32, rowid: u64) -> PageId {
        PageId { table, page: rowid / self.rows_per_page }
    }

    /// Touch the page containing `rowid`; `write` marks it dirty.
    pub fn access(&self, table: u32, rowid: u64, write: bool, metrics: &ServerMetrics) -> Access {
        let key = self.page_of(table, rowid);
        let mut st = self.state.lock();
        st.epoch_accesses += 1;
        if let Some(&idx) = st.map.get(&key) {
            let f = &mut st.frames[idx];
            f.referenced = true;
            f.dirty |= write;
            metrics.inc_buf_hits();
            if st.epoch_accesses >= PRESSURE_EPOCH {
                self.note_epoch(&mut st);
            }
            return Access { hit: true, ios: 0 };
        }
        // Miss.
        st.epoch_misses += 1;
        metrics.inc_buf_misses();
        metrics.add_io_reads(1);
        let mut ios = 1;
        if st.frames.len() < self.capacity {
            let idx = st.frames.len();
            st.frames.push(Frame { key, referenced: true, dirty: write });
            st.map.insert(key, idx);
        } else {
            // CLOCK: find a frame with referenced == false.
            loop {
                let hand = st.hand;
                st.hand = (hand + 1) % self.capacity;
                let f = &mut st.frames[hand];
                if f.referenced {
                    f.referenced = false;
                    continue;
                }
                if f.dirty {
                    metrics.add_io_writes(1);
                    ios += 1;
                }
                let old = f.key;
                *f = Frame { key, referenced: true, dirty: write };
                st.map.remove(&old);
                st.map.insert(key, hand);
                break;
            }
        }
        if st.epoch_accesses >= PRESSURE_EPOCH {
            self.note_epoch(&mut st);
        }
        Access { hit: false, ios }
    }

    /// Drop all cached pages (database reset).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.frames.clear();
        st.hand = 0;
        st.epoch_accesses = 0;
        st.epoch_misses = 0;
        st.pressured = false;
    }

    pub fn resident_pages(&self) -> usize {
        self.state.lock().frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_access() {
        let m = ServerMetrics::new();
        let bp = BufferPool::new(8, 64);
        assert!(!bp.access(1, 0, false, &m).hit);
        assert!(bp.access(1, 5, false, &m).hit); // same page (rows 0..63)
        assert!(bp.access(1, 63, false, &m).hit);
        assert!(!bp.access(1, 64, false, &m).hit); // next page
        let s = m.snapshot();
        assert_eq!(s.buf_hits, 2);
        assert_eq!(s.buf_misses, 2);
    }

    #[test]
    fn eviction_when_full() {
        let m = ServerMetrics::new();
        let bp = BufferPool::new(4, 1);
        for r in 0..4 {
            bp.access(1, r, false, &m);
        }
        assert_eq!(bp.resident_pages(), 4);
        // Fifth distinct page forces an eviction.
        bp.access(1, 4, false, &m);
        assert_eq!(bp.resident_pages(), 4);
        assert_eq!(m.snapshot().io_reads, 5);
    }

    #[test]
    fn dirty_eviction_counts_write_io() {
        let m = ServerMetrics::new();
        let bp = BufferPool::new(2, 1);
        bp.access(1, 0, true, &m); // dirty
        bp.access(1, 1, false, &m);
        // Force eviction sweep past both (clears ref bits) then evicts dirty.
        bp.access(1, 2, false, &m);
        bp.access(1, 3, false, &m);
        assert!(m.snapshot().io_writes >= 1);
    }

    #[test]
    fn working_set_within_capacity_stays_hot() {
        let m = ServerMetrics::new();
        let bp = BufferPool::new(16, 64);
        // 1024 rows = 16 pages: exactly fits.
        for _ in 0..4 {
            for r in 0..1024u64 {
                bp.access(1, r, false, &m);
            }
        }
        let s = m.snapshot();
        assert_eq!(s.buf_misses, 16);
        assert_eq!(s.buf_hits, 4 * 1024 - 16);
    }

    #[test]
    fn pressure_crossings_journaled_with_hysteresis() {
        let m = ServerMetrics::new();
        let j = Arc::new(EventJournal::new());
        // Tiny pool, one row per page: distinct rows always miss.
        let bp = BufferPool::new(2, 1).with_journal(j.clone());
        // Epoch 1: all misses -> enter pressure.
        for r in 0..PRESSURE_EPOCH {
            bp.access(1, r, false, &m);
        }
        // Epoch 2: all hits on 2 resident pages -> leave pressure.
        for i in 0..PRESSURE_EPOCH {
            bp.access(1, PRESSURE_EPOCH - 2 + (i % 2), false, &m);
        }
        // Epoch 3: all hits again -> no new event (hysteresis).
        for i in 0..PRESSURE_EPOCH {
            bp.access(1, PRESSURE_EPOCH - 2 + (i % 2), false, &m);
        }
        let events = j.all();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].kind, "buffer_pressure");
        assert!(events[0].fields.contains(&("state", "pressured".to_string())));
        assert_eq!(events[0].severity, Severity::Warn);
        assert!(events[1].fields.contains(&("state", "ok".to_string())));
    }

    #[test]
    fn clear_resets() {
        let m = ServerMetrics::new();
        let bp = BufferPool::new(4, 1);
        bp.access(1, 0, false, &m);
        bp.clear();
        assert_eq!(bp.resident_pages(), 0);
        assert!(!bp.access(1, 0, false, &m).hit);
    }
}
