//! Server-side counters sampled by the resource monitor (`bp-monitor`).
//!
//! These play the role of the host metrics that OLTP-Bench gathers with
//! dstat [7]: CPU work, IO operations, lock activity, WAL traffic. All
//! counters are lock-free atomics so the data path stays cheap.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic counters describing the work the engine has performed.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    commits: AtomicU64,
    aborts: AtomicU64,
    user_aborts: AtomicU64,
    rows_read: AtomicU64,
    rows_written: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_micros: AtomicU64,
    deadlocks: AtomicU64,
    lock_timeouts: AtomicU64,
    io_reads: AtomicU64,
    io_writes: AtomicU64,
    buf_hits: AtomicU64,
    buf_misses: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    /// Time spent in WAL commit/fsync processing, µs (includes injected
    /// fsync stalls) — lets the doctor tell IO saturation from lock waits.
    fsync_micros: AtomicU64,
    /// Simulated CPU-busy time in µs (sum of service costs applied).
    busy_micros: AtomicU64,
    active_txns: AtomicI64,
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    pub user_aborts: u64,
    pub rows_read: u64,
    pub rows_written: u64,
    pub lock_waits: u64,
    pub lock_wait_micros: u64,
    pub deadlocks: u64,
    pub lock_timeouts: u64,
    pub io_reads: u64,
    pub io_writes: u64,
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub fsync_micros: u64,
    pub busy_micros: u64,
    pub active_txns: i64,
}

impl MetricsSnapshot {
    /// Per-field difference (`self` - `earlier`), used for rate windows.
    /// Saturating: two snapshots taken concurrently with the data path can
    /// observe individual counters "going backwards" relative to each
    /// other, and a window of 0 is the sane reading of such a race.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            user_aborts: self.user_aborts.saturating_sub(earlier.user_aborts),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            rows_written: self.rows_written.saturating_sub(earlier.rows_written),
            lock_waits: self.lock_waits.saturating_sub(earlier.lock_waits),
            lock_wait_micros: self.lock_wait_micros.saturating_sub(earlier.lock_wait_micros),
            deadlocks: self.deadlocks.saturating_sub(earlier.deadlocks),
            lock_timeouts: self.lock_timeouts.saturating_sub(earlier.lock_timeouts),
            io_reads: self.io_reads.saturating_sub(earlier.io_reads),
            io_writes: self.io_writes.saturating_sub(earlier.io_writes),
            buf_hits: self.buf_hits.saturating_sub(earlier.buf_hits),
            buf_misses: self.buf_misses.saturating_sub(earlier.buf_misses),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(earlier.wal_fsyncs),
            fsync_micros: self.fsync_micros.saturating_sub(earlier.fsync_micros),
            busy_micros: self.busy_micros.saturating_sub(earlier.busy_micros),
            active_txns: self.active_txns,
        }
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buf_hits + self.buf_misses;
        if total == 0 {
            1.0
        } else {
            self.buf_hits as f64 / total as f64
        }
    }
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    #[inline]
    pub fn inc_commits(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_aborts(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_user_aborts(&self) {
        self.user_aborts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_rows_read(&self, n: u64) {
        self.rows_read.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_rows_written(&self, n: u64) {
        self.rows_written.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn record_lock_wait(&self, waited: Duration) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_micros
            .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_deadlocks(&self) {
        self.deadlocks.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_lock_timeouts(&self) {
        self.lock_timeouts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_io_reads(&self, n: u64) {
        self.io_reads.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_io_writes(&self, n: u64) {
        self.io_writes.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_buf_hits(&self) {
        self.buf_hits.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_buf_misses(&self) {
        self.buf_misses.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_wal_bytes(&self, n: u64) {
        self.wal_bytes.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_wal_fsyncs(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_fsync_micros(&self, n: u64) {
        self.fsync_micros.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_busy_micros(&self, n: u64) {
        self.busy_micros.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn txn_started(&self) {
        self.active_txns.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn txn_ended(&self) {
        self.active_txns.fetch_sub(1, Ordering::Relaxed);
    }

    /// All counter fields as `(name, value)` pairs, in declaration order.
    /// One source of truth for the Prometheus exposition below and any
    /// other exhaustive dump.
    pub fn counter_fields(s: &MetricsSnapshot) -> [(&'static str, u64); 17] {
        [
            ("commits", s.commits),
            ("aborts", s.aborts),
            ("user_aborts", s.user_aborts),
            ("rows_read", s.rows_read),
            ("rows_written", s.rows_written),
            ("lock_waits", s.lock_waits),
            ("lock_wait_us", s.lock_wait_micros),
            ("deadlocks", s.deadlocks),
            ("lock_timeouts", s.lock_timeouts),
            ("io_reads", s.io_reads),
            ("io_writes", s.io_writes),
            ("buf_hits", s.buf_hits),
            ("buf_misses", s.buf_misses),
            ("wal_bytes", s.wal_bytes),
            ("wal_fsyncs", s.wal_fsyncs),
            ("fsync_us", s.fsync_micros),
            ("busy_us", s.busy_micros),
        ]
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_micros: self.lock_wait_micros.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            lock_timeouts: self.lock_timeouts.load(Ordering::Relaxed),
            io_reads: self.io_reads.load(Ordering::Relaxed),
            io_writes: self.io_writes.load(Ordering::Relaxed),
            buf_hits: self.buf_hits.load(Ordering::Relaxed),
            buf_misses: self.buf_misses.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            fsync_micros: self.fsync_micros.load(Ordering::Relaxed),
            busy_micros: self.busy_micros.load(Ordering::Relaxed),
            active_txns: self.active_txns.load(Ordering::Relaxed),
        }
    }
}

impl bp_obs::MetricsSource for ServerMetrics {
    fn collect(&self, buf: &mut bp_obs::MetricsBuf) {
        let s = self.snapshot();
        for (name, v) in ServerMetrics::counter_fields(&s) {
            let full = format!("bp_server_{name}_total");
            buf.counter(&full, "Storage engine counter", &[], v as f64);
        }
        buf.gauge(
            "bp_server_active_txns",
            "Transactions currently open in the storage engine",
            &[],
            s.active_txns as f64,
        );
        buf.gauge(
            "bp_server_buf_hit_ratio",
            "Buffer pool hit ratio over the whole run",
            &[],
            s.hit_ratio(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.inc_commits();
        m.inc_commits();
        m.add_rows_read(10);
        m.record_lock_wait(Duration::from_micros(1500));
        let s = m.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.rows_read, 10);
        assert_eq!(s.lock_waits, 1);
        assert_eq!(s.lock_wait_micros, 1500);
    }

    #[test]
    fn delta() {
        let m = ServerMetrics::new();
        m.inc_commits();
        let a = m.snapshot();
        m.inc_commits();
        m.inc_commits();
        let b = m.snapshot();
        assert_eq!(b.delta(&a).commits, 2);
    }

    #[test]
    fn delta_saturates_on_backwards_counters() {
        // A snapshot race can observe counters "earlier" than a snapshot
        // taken before it; the delta must clamp at 0, not wrap to ~2^64.
        let newer = MetricsSnapshot { commits: 5, busy_micros: 100, ..Default::default() };
        let older = MetricsSnapshot { commits: 9, busy_micros: 40, ..Default::default() };
        let d = newer.delta(&older);
        assert_eq!(d.commits, 0, "backwards counter clamps to 0");
        assert_eq!(d.busy_micros, 60, "forward counters unaffected");
    }

    #[test]
    fn metrics_source_exposes_all_counters() {
        use bp_obs::MetricsSource as _;
        let m = ServerMetrics::new();
        m.inc_commits();
        m.txn_started();
        let mut buf = bp_obs::MetricsBuf::new();
        m.collect(&mut buf);
        let samples = buf.into_samples();
        // 17 counters + 2 gauges.
        assert_eq!(samples.len(), 19);
        for (name, _) in ServerMetrics::counter_fields(&m.snapshot()) {
            let full = format!("bp_server_{name}_total");
            assert!(samples.iter().any(|s| s.name == full), "missing {full}");
        }
    }

    #[test]
    fn active_txn_gauge() {
        let m = ServerMetrics::new();
        m.txn_started();
        m.txn_started();
        m.txn_ended();
        assert_eq!(m.snapshot().active_txns, 1);
    }

    #[test]
    fn hit_ratio() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot().hit_ratio(), 1.0);
        m.inc_buf_hits();
        m.inc_buf_hits();
        m.inc_buf_misses();
        let r = m.snapshot().hit_ratio();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}
