//! Server-side counters sampled by the resource monitor (`bp-monitor`).
//!
//! These play the role of the host metrics that OLTP-Bench gathers with
//! dstat [7]: CPU work, IO operations, lock activity, WAL traffic. All
//! counters are lock-free atomics so the data path stays cheap.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic counters describing the work the engine has performed.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    commits: AtomicU64,
    aborts: AtomicU64,
    user_aborts: AtomicU64,
    rows_read: AtomicU64,
    rows_written: AtomicU64,
    lock_waits: AtomicU64,
    lock_wait_micros: AtomicU64,
    deadlocks: AtomicU64,
    lock_timeouts: AtomicU64,
    io_reads: AtomicU64,
    io_writes: AtomicU64,
    buf_hits: AtomicU64,
    buf_misses: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    /// Simulated CPU-busy time in µs (sum of service costs applied).
    busy_micros: AtomicU64,
    active_txns: AtomicI64,
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub commits: u64,
    pub aborts: u64,
    pub user_aborts: u64,
    pub rows_read: u64,
    pub rows_written: u64,
    pub lock_waits: u64,
    pub lock_wait_micros: u64,
    pub deadlocks: u64,
    pub lock_timeouts: u64,
    pub io_reads: u64,
    pub io_writes: u64,
    pub buf_hits: u64,
    pub buf_misses: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub busy_micros: u64,
    pub active_txns: i64,
}

impl MetricsSnapshot {
    /// Per-field difference (`self` - `earlier`), used for rate windows.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            user_aborts: self.user_aborts - earlier.user_aborts,
            rows_read: self.rows_read - earlier.rows_read,
            rows_written: self.rows_written - earlier.rows_written,
            lock_waits: self.lock_waits - earlier.lock_waits,
            lock_wait_micros: self.lock_wait_micros - earlier.lock_wait_micros,
            deadlocks: self.deadlocks - earlier.deadlocks,
            lock_timeouts: self.lock_timeouts - earlier.lock_timeouts,
            io_reads: self.io_reads - earlier.io_reads,
            io_writes: self.io_writes - earlier.io_writes,
            buf_hits: self.buf_hits - earlier.buf_hits,
            buf_misses: self.buf_misses - earlier.buf_misses,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
            busy_micros: self.busy_micros - earlier.busy_micros,
            active_txns: self.active_txns,
        }
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.buf_hits + self.buf_misses;
        if total == 0 {
            1.0
        } else {
            self.buf_hits as f64 / total as f64
        }
    }
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    #[inline]
    pub fn inc_commits(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_aborts(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_user_aborts(&self) {
        self.user_aborts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_rows_read(&self, n: u64) {
        self.rows_read.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_rows_written(&self, n: u64) {
        self.rows_written.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn record_lock_wait(&self, waited: Duration) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
        self.lock_wait_micros
            .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_deadlocks(&self) {
        self.deadlocks.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_lock_timeouts(&self) {
        self.lock_timeouts.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_io_reads(&self, n: u64) {
        self.io_reads.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_io_writes(&self, n: u64) {
        self.io_writes.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_buf_hits(&self) {
        self.buf_hits.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_buf_misses(&self) {
        self.buf_misses.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_wal_bytes(&self, n: u64) {
        self.wal_bytes.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn inc_wal_fsyncs(&self) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add_busy_micros(&self, n: u64) {
        self.busy_micros.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn txn_started(&self) {
        self.active_txns.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn txn_ended(&self) {
        self.active_txns.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            rows_written: self.rows_written.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_wait_micros: self.lock_wait_micros.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            lock_timeouts: self.lock_timeouts.load(Ordering::Relaxed),
            io_reads: self.io_reads.load(Ordering::Relaxed),
            io_writes: self.io_writes.load(Ordering::Relaxed),
            buf_hits: self.buf_hits.load(Ordering::Relaxed),
            buf_misses: self.buf_misses.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            busy_micros: self.busy_micros.load(Ordering::Relaxed),
            active_txns: self.active_txns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new();
        m.inc_commits();
        m.inc_commits();
        m.add_rows_read(10);
        m.record_lock_wait(Duration::from_micros(1500));
        let s = m.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.rows_read, 10);
        assert_eq!(s.lock_waits, 1);
        assert_eq!(s.lock_wait_micros, 1500);
    }

    #[test]
    fn delta() {
        let m = ServerMetrics::new();
        m.inc_commits();
        let a = m.snapshot();
        m.inc_commits();
        m.inc_commits();
        let b = m.snapshot();
        assert_eq!(b.delta(&a).commits, 2);
    }

    #[test]
    fn active_txn_gauge() {
        let m = ServerMetrics::new();
        m.txn_started();
        m.txn_started();
        m.txn_ended();
        assert_eq!(m.snapshot().active_txns, 1);
    }

    #[test]
    fn hit_ratio() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot().hit_ratio(), 1.0);
        m.inc_buf_hits();
        m.inc_buf_hits();
        m.inc_buf_misses();
        let r = m.snapshot().hit_ratio();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}
