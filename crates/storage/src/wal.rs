//! Simulated write-ahead log with group commit.
//!
//! Commits append their redo bytes and pay an fsync cost. When group commit
//! is enabled, commits landing within the personality's group window share
//! one fsync: the first commit in a window pays full price, followers pay
//! nothing extra. This is the main lever separating the "fast" and "slow"
//! personalities under write-heavy mixtures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bp_obs::{EventJournal, Severity};
use bp_util::sync::Mutex;

use crate::metrics::ServerMetrics;
use crate::recovery::{
    apply_record, decode_record, Checkpoint, CheckpointStats, Decoded, TableImage,
};

/// Default log-segment size; crossing it rotates to a new segment and
/// emits a `wal_rotate` journal event.
pub const DEFAULT_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

/// One redo-log segment: encoded records starting at `base_lsn`.
#[derive(Debug, Default)]
struct RedoSegment {
    #[cfg_attr(not(test), allow(dead_code))]
    base_lsn: u64,
    bytes: Vec<u8>,
}

/// The redo store behind the timing model: appended record bytes, the
/// latest checkpoint image and the durable-LSN watermark.
#[derive(Default)]
struct RedoState {
    segments: Vec<RedoSegment>,
    checkpoint: Option<Checkpoint>,
    durable_lsn: u64,
}

/// The redo tail materialized by [`Wal::recovered_image`].
pub struct RecoveredImage {
    pub tables: TableImage,
    pub replayed_records: u64,
    pub torn_truncated: u64,
    pub checkpoint_lsn: u64,
    pub durable_lsn: u64,
}

pub struct Wal {
    epoch: Instant,
    /// Time (µs since epoch) of the last fsync.
    last_fsync_us: AtomicU64,
    next_lsn: AtomicU64,
    group_window_us: u64,
    us_per_kb: f64,
    fsync_us: f64,
    /// Bytes appended since the current segment opened.
    segment_bytes: AtomicU64,
    segment_limit: u64,
    /// Segments rotated away so far (current segment index).
    segments_rotated: AtomicU64,
    journal: Option<Arc<EventJournal>>,
    redo: Mutex<RedoState>,
}

impl Wal {
    pub fn new(group_window_us: u64, us_per_kb: f64, fsync_us: f64) -> Wal {
        Wal {
            epoch: Instant::now(),
            last_fsync_us: AtomicU64::new(u64::MAX), // force first fsync
            next_lsn: AtomicU64::new(1),
            group_window_us,
            us_per_kb,
            fsync_us,
            segment_bytes: AtomicU64::new(0),
            segment_limit: DEFAULT_SEGMENT_BYTES,
            segments_rotated: AtomicU64::new(0),
            journal: None,
            redo: Mutex::new(RedoState::default()),
        }
    }

    /// Attach the event journal (rotation events) — builder style so the
    /// plain constructor keeps working everywhere.
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> Wal {
        self.journal = Some(journal);
        self
    }

    /// Override the segment-rotation threshold (tests use small segments).
    pub fn with_segment_bytes(mut self, limit: u64) -> Wal {
        self.segment_limit = limit.max(1);
        self
    }

    pub fn segments_rotated(&self) -> u64 {
        self.segments_rotated.load(Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a transaction commit writing `bytes` of redo.
    ///
    /// Returns `(lsn, cost_us)` — the service cost the committer must pay
    /// (log write + possibly an fsync).
    pub fn commit(&self, bytes: u64, metrics: &ServerMetrics) -> (u64, f64) {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        metrics.add_wal_bytes(bytes);
        let mut cost = self.us_per_kb * bytes as f64 / 1024.0;

        // Segment accounting: the committer that crosses the limit opens a
        // new segment and journals the rotation.
        let seg = self.segment_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if seg >= self.segment_limit && bytes > 0 {
            let over = seg - self.segment_limit;
            if self
                .segment_bytes
                .compare_exchange(seg, over, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let segment = self.segments_rotated.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(j) = &self.journal {
                    j.emit_with(Severity::Info, "storage", "wal_rotate", || {
                        (
                            format!("wal segment {segment} opened at lsn {lsn}"),
                            vec![
                                ("segment", segment.to_string()),
                                ("lsn", lsn.to_string()),
                                ("bytes", self.segment_limit.to_string()),
                            ],
                        )
                    });
                }
            }
        }

        let now = self.now_us();
        let last = self.last_fsync_us.load(Ordering::Relaxed);
        let need_fsync = if self.group_window_us == 0 {
            true
        } else {
            last == u64::MAX || now.saturating_sub(last) >= self.group_window_us
        };
        if need_fsync {
            // Only one committer in the window should pay; use CAS so racers
            // that lose ride along for free.
            if self
                .last_fsync_us
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                cost += self.fsync_us;
                metrics.inc_wal_fsyncs();
                metrics.add_io_writes(1);
            }
        }
        metrics.add_fsync_micros(cost as u64);
        (lsn, cost)
    }

    pub fn current_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Append one encoded redo record for `lsn`. With `torn` the record is
    /// cut mid-payload — the shape a crash between append and fsync leaves
    /// behind — and the durable watermark does not advance.
    pub fn append_redo(&self, lsn: u64, record: &[u8], torn: bool) {
        let mut redo = self.redo.lock();
        let open_new = match redo.segments.last() {
            None => true,
            Some(seg) => {
                !seg.bytes.is_empty()
                    && (seg.bytes.len() + record.len()) as u64 > self.segment_limit
            }
        };
        if open_new {
            redo.segments.push(RedoSegment { base_lsn: lsn, bytes: Vec::new() });
        }
        let seg = redo.segments.last_mut().expect("segment just ensured");
        if torn {
            seg.bytes.extend_from_slice(&record[..record.len() / 2]);
        } else {
            seg.bytes.extend_from_slice(record);
            redo.durable_lsn = lsn;
        }
    }

    /// Highest LSN whose redo record is fully appended.
    pub fn durable_lsn(&self) -> u64 {
        self.redo.lock().durable_lsn
    }

    /// Snapshot the committed state at the current stable LSN and truncate
    /// the consumed segments. Every record in the store belongs to a
    /// committed transaction, so the image is transaction-consistent
    /// without quiescing writers.
    pub fn take_checkpoint(&self) -> CheckpointStats {
        let mut redo = self.redo.lock();
        let mut image = redo.checkpoint.take().map(|c| c.tables).unwrap_or_default();
        let mut applied = 0u64;
        let mut lsn = redo.durable_lsn;
        for seg in &redo.segments {
            let mut at = 0;
            while at < seg.bytes.len() {
                match decode_record(&seg.bytes, at) {
                    Decoded::Record(rec, consumed) => {
                        apply_record(&mut image, &rec);
                        lsn = lsn.max(rec.lsn);
                        applied += 1;
                        at += consumed;
                    }
                    // A torn tail only exists in a crashed engine; the
                    // checkpointer never runs there. Stop defensively.
                    Decoded::Torn => break,
                }
            }
        }
        let truncated = redo.segments.len() as u64;
        redo.segments.clear();
        redo.checkpoint = Some(Checkpoint { lsn, tables: image });
        CheckpointStats { lsn, records_applied: applied, segments_truncated: truncated }
    }

    /// Rebuild the committed state: latest checkpoint plus the replayed
    /// redo tail. A torn final record is truncated from the store.
    pub fn recovered_image(&self) -> RecoveredImage {
        let mut redo = self.redo.lock();
        let checkpoint_lsn = redo.checkpoint.as_ref().map(|c| c.lsn).unwrap_or(0);
        let mut tables = redo.checkpoint.as_ref().map(|c| c.tables.clone()).unwrap_or_default();
        let mut replayed = 0u64;
        let mut torn = 0u64;
        let mut durable = checkpoint_lsn;
        for seg in &mut redo.segments {
            let mut at = 0;
            while at < seg.bytes.len() {
                match decode_record(&seg.bytes, at) {
                    Decoded::Record(rec, consumed) => {
                        apply_record(&mut tables, &rec);
                        durable = durable.max(rec.lsn);
                        replayed += 1;
                        at += consumed;
                    }
                    Decoded::Torn => {
                        seg.bytes.truncate(at);
                        torn += 1;
                        break;
                    }
                }
            }
        }
        redo.durable_lsn = durable;
        RecoveredImage {
            tables,
            replayed_records: replayed,
            torn_truncated: torn,
            checkpoint_lsn,
            durable_lsn: durable,
        }
    }

    /// Reset after a database reset.
    pub fn reset(&self) {
        self.last_fsync_us.store(u64::MAX, Ordering::Relaxed);
        self.segment_bytes.store(0, Ordering::Relaxed);
    }

    /// Full reset for `truncate_all`/`reset_schema`: also rewinds the LSN
    /// counter, rotation count and the redo store so back-to-back runs do
    /// not inherit the previous run's log state.
    pub fn reset_full(&self) {
        self.reset();
        self.next_lsn.store(1, Ordering::Relaxed);
        self.segments_rotated.store(0, Ordering::Relaxed);
        let mut redo = self.redo.lock();
        redo.segments.clear();
        redo.checkpoint = None;
        redo.durable_lsn = 0;
    }

    /// Test hook: pin the last-fsync timestamp (µs since epoch) to probe
    /// the group-commit window boundary deterministically.
    #[cfg(test)]
    fn set_last_fsync_rel_us(&self, us: u64) {
        self.last_fsync_us.store(us, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_monotonic() {
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 5.0, 100.0);
        let (a, _) = wal.commit(100, &m);
        let (b, _) = wal.commit(100, &m);
        assert!(b > a);
    }

    #[test]
    fn no_group_commit_every_commit_fsyncs() {
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 0.0, 100.0);
        for _ in 0..5 {
            let (_, cost) = wal.commit(0, &m);
            assert_eq!(cost, 100.0);
        }
        assert_eq!(m.snapshot().wal_fsyncs, 5);
    }

    #[test]
    fn group_commit_amortizes_fsync() {
        let m = ServerMetrics::new();
        // Huge window: only the first commit should fsync.
        let wal = Wal::new(60_000_000, 0.0, 100.0);
        let (_, first) = wal.commit(0, &m);
        assert_eq!(first, 100.0);
        for _ in 0..10 {
            let (_, cost) = wal.commit(0, &m);
            assert_eq!(cost, 0.0);
        }
        assert_eq!(m.snapshot().wal_fsyncs, 1);
    }

    #[test]
    fn bytes_cost_scales() {
        let m = ServerMetrics::new();
        let wal = Wal::new(60_000_000, 10.0, 0.0);
        let (_, c1) = wal.commit(1024, &m);
        let (_, c2) = wal.commit(4096, &m);
        assert!((c1 - 10.0).abs() < 1e-9);
        assert!((c2 - 40.0).abs() < 1e-9);
        assert_eq!(m.snapshot().wal_bytes, 5120);
    }

    #[test]
    fn segment_rotation_emits_journal_event() {
        let m = ServerMetrics::new();
        let j = Arc::new(EventJournal::new());
        let wal = Wal::new(0, 0.0, 10.0).with_journal(j.clone()).with_segment_bytes(1000);
        for _ in 0..5 {
            wal.commit(300, &m);
        }
        // 1500 bytes crosses at commit 4 (1200), remainder 200 + 300 = 500.
        assert_eq!(wal.segments_rotated(), 1);
        let events = j.all();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "wal_rotate");
        assert!(events[0].fields.iter().any(|(k, v)| *k == "segment" && v == "1"));
        assert!(m.snapshot().fsync_micros >= 50, "commit cost charged to fsync_us");
    }

    #[test]
    fn reset_forces_fsync_again() {
        let m = ServerMetrics::new();
        let wal = Wal::new(60_000_000, 0.0, 50.0);
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 50.0);
        wal.reset();
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 50.0);
    }

    #[test]
    fn first_commit_always_fsyncs() {
        // The u64::MAX sentinel must force an fsync on the very first
        // commit no matter how wide the group window is, and again after
        // every (full) reset.
        for window in [1, 1_000, 60_000_000] {
            let m = ServerMetrics::new();
            let wal = Wal::new(window, 0.0, 75.0);
            let (_, c) = wal.commit(10, &m);
            assert_eq!(c, 75.0, "window {window}: first commit must pay the fsync");
            wal.reset_full();
            let (_, c) = wal.commit(10, &m);
            assert_eq!(c, 75.0, "window {window}: first commit after reset_full");
        }
    }

    #[test]
    fn commit_exactly_at_window_edge_fsyncs() {
        let m = ServerMetrics::new();
        let wal = Wal::new(1_000, 0.0, 100.0);
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 100.0);
        // Pin the last fsync exactly one window before "now": the boundary
        // is inclusive (elapsed >= window), so this commit must fsync even
        // if zero additional time elapses before the check. The sleep puts
        // the clock past one window so the subtraction cannot clamp to the
        // epoch (which would leave elapsed < window).
        std::thread::sleep(std::time::Duration::from_millis(2));
        let now = wal.now_us();
        assert!(now >= 1_000, "clock advanced past one window");
        wal.set_last_fsync_rel_us(now - 1_000);
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 100.0, "elapsed == window must start a new group");
        // Just inside the window: the follower rides for free. The fsync
        // timestamp is re-pinned far enough ahead that wall-clock drift
        // between the store and the commit cannot close the window.
        wal.set_last_fsync_rel_us(wal.now_us() + 60_000_000);
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 0.0, "inside the window no fsync is due");
    }

    #[test]
    fn segment_rotation_mid_group_commit_window() {
        // A rotation landing inside an open group-commit window must not
        // force an early fsync: rotation and fsync scheduling are
        // independent.
        let m = ServerMetrics::new();
        let j = Arc::new(EventJournal::new());
        let wal = Wal::new(60_000_000, 0.0, 100.0)
            .with_journal(j.clone())
            .with_segment_bytes(1000);
        let (_, first) = wal.commit(300, &m);
        assert_eq!(first, 100.0, "window opener pays the fsync");
        for _ in 0..4 {
            let (_, c) = wal.commit(300, &m);
            assert_eq!(c, 0.0, "followers ride the open window across the rotation");
        }
        assert_eq!(wal.segments_rotated(), 1, "1500 bytes crossed the 1000-byte limit");
        assert_eq!(m.snapshot().wal_fsyncs, 1, "rotation must not trigger an extra fsync");
        assert!(j.all().iter().any(|e| e.kind == "wal_rotate"));
    }

    #[test]
    fn reset_full_rewinds_lsn_and_rotation_counters() {
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 0.0, 10.0).with_segment_bytes(100);
        for _ in 0..5 {
            wal.commit(60, &m);
        }
        assert!(wal.current_lsn() > 1);
        assert!(wal.segments_rotated() > 0);
        wal.append_redo(1, &[1, 2, 3, 4], false);
        wal.reset_full();
        assert_eq!(wal.current_lsn(), 1, "LSN counter rewound");
        assert_eq!(wal.segments_rotated(), 0, "rotation counter rewound");
        assert_eq!(wal.durable_lsn(), 0, "redo store cleared");
        let (lsn, _) = wal.commit(10, &m);
        assert_eq!(lsn, 1, "first commit after reset gets LSN 1");
    }

    #[test]
    fn redo_append_checkpoint_and_recovery_round_trip() {
        use crate::recovery::{RedoOp, RedoRecord};
        use crate::value::Value;
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 0.0, 0.0);
        for i in 0..4u64 {
            let (lsn, _) = wal.commit(32, &m);
            let rec = RedoRecord {
                lsn,
                txn: i,
                ops: vec![RedoOp::Insert { table: 1, rowid: i, row: vec![Value::Int(i as i64)] }],
            };
            wal.append_redo(lsn, &rec.encode(), false);
        }
        let cp = wal.take_checkpoint();
        assert_eq!(cp.records_applied, 4);
        assert_eq!(cp.segments_truncated, 1);
        assert_eq!(cp.lsn, 4);
        // Two more commits after the checkpoint, the last one torn.
        let (lsn, _) = wal.commit(32, &m);
        let rec = RedoRecord {
            lsn,
            txn: 10,
            ops: vec![RedoOp::Delete { table: 1, rowid: 0 }],
        };
        wal.append_redo(lsn, &rec.encode(), false);
        let (lsn2, _) = wal.commit(32, &m);
        let rec2 = RedoRecord {
            lsn: lsn2,
            txn: 11,
            ops: vec![RedoOp::Delete { table: 1, rowid: 1 }],
        };
        wal.append_redo(lsn2, &rec2.encode(), true);
        let image = wal.recovered_image();
        assert_eq!(image.checkpoint_lsn, 4);
        assert_eq!(image.replayed_records, 1, "only the complete tail record replays");
        assert_eq!(image.torn_truncated, 1, "the torn record is truncated");
        assert_eq!(image.durable_lsn, lsn);
        let t = &image.tables[&1];
        assert_eq!(t.len(), 3, "rows 1..4 minus the replayed delete of row 0");
        assert!(!t.contains_key(&0));
        assert!(t.contains_key(&1), "torn delete of row 1 must not apply");
    }

    #[test]
    fn redo_segments_rotate_by_size() {
        use crate::recovery::{RedoOp, RedoRecord};
        use crate::value::Value;
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 0.0, 0.0).with_segment_bytes(128);
        for i in 0..8u64 {
            let (lsn, _) = wal.commit(64, &m);
            let rec = RedoRecord {
                lsn,
                txn: i,
                ops: vec![RedoOp::Insert {
                    table: 1,
                    rowid: i,
                    row: vec![Value::Str("x".repeat(40))],
                }],
            };
            wal.append_redo(lsn, &rec.encode(), false);
        }
        {
            let redo = wal.redo.lock();
            assert!(redo.segments.len() > 1, "records spill into multiple segments");
            let bases: Vec<u64> = redo.segments.iter().map(|s| s.base_lsn).collect();
            assert!(bases.windows(2).all(|w| w[0] < w[1]), "segment base LSNs ascend: {bases:?}");
        }
        let image = wal.recovered_image();
        assert_eq!(image.replayed_records, 8, "replay walks every segment");
        assert_eq!(image.tables[&1].len(), 8);
    }
}
