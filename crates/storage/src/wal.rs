//! Simulated write-ahead log with group commit.
//!
//! Commits append their redo bytes and pay an fsync cost. When group commit
//! is enabled, commits landing within the personality's group window share
//! one fsync: the first commit in a window pays full price, followers pay
//! nothing extra. This is the main lever separating the "fast" and "slow"
//! personalities under write-heavy mixtures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bp_obs::{EventJournal, Severity};

use crate::metrics::ServerMetrics;

/// Default log-segment size; crossing it rotates to a new segment and
/// emits a `wal_rotate` journal event.
pub const DEFAULT_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

pub struct Wal {
    epoch: Instant,
    /// Time (µs since epoch) of the last fsync.
    last_fsync_us: AtomicU64,
    next_lsn: AtomicU64,
    group_window_us: u64,
    us_per_kb: f64,
    fsync_us: f64,
    /// Bytes appended since the current segment opened.
    segment_bytes: AtomicU64,
    segment_limit: u64,
    /// Segments rotated away so far (current segment index).
    segments_rotated: AtomicU64,
    journal: Option<Arc<EventJournal>>,
}

impl Wal {
    pub fn new(group_window_us: u64, us_per_kb: f64, fsync_us: f64) -> Wal {
        Wal {
            epoch: Instant::now(),
            last_fsync_us: AtomicU64::new(u64::MAX), // force first fsync
            next_lsn: AtomicU64::new(1),
            group_window_us,
            us_per_kb,
            fsync_us,
            segment_bytes: AtomicU64::new(0),
            segment_limit: DEFAULT_SEGMENT_BYTES,
            segments_rotated: AtomicU64::new(0),
            journal: None,
        }
    }

    /// Attach the event journal (rotation events) — builder style so the
    /// plain constructor keeps working everywhere.
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> Wal {
        self.journal = Some(journal);
        self
    }

    /// Override the segment-rotation threshold (tests use small segments).
    pub fn with_segment_bytes(mut self, limit: u64) -> Wal {
        self.segment_limit = limit.max(1);
        self
    }

    pub fn segments_rotated(&self) -> u64 {
        self.segments_rotated.load(Ordering::Relaxed)
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a transaction commit writing `bytes` of redo.
    ///
    /// Returns `(lsn, cost_us)` — the service cost the committer must pay
    /// (log write + possibly an fsync).
    pub fn commit(&self, bytes: u64, metrics: &ServerMetrics) -> (u64, f64) {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        metrics.add_wal_bytes(bytes);
        let mut cost = self.us_per_kb * bytes as f64 / 1024.0;

        // Segment accounting: the committer that crosses the limit opens a
        // new segment and journals the rotation.
        let seg = self.segment_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if seg >= self.segment_limit && bytes > 0 {
            let over = seg - self.segment_limit;
            if self
                .segment_bytes
                .compare_exchange(seg, over, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let segment = self.segments_rotated.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(j) = &self.journal {
                    j.emit_with(Severity::Info, "storage", "wal_rotate", || {
                        (
                            format!("wal segment {segment} opened at lsn {lsn}"),
                            vec![
                                ("segment", segment.to_string()),
                                ("lsn", lsn.to_string()),
                                ("bytes", self.segment_limit.to_string()),
                            ],
                        )
                    });
                }
            }
        }

        let now = self.now_us();
        let last = self.last_fsync_us.load(Ordering::Relaxed);
        let need_fsync = if self.group_window_us == 0 {
            true
        } else {
            last == u64::MAX || now.saturating_sub(last) >= self.group_window_us
        };
        if need_fsync {
            // Only one committer in the window should pay; use CAS so racers
            // that lose ride along for free.
            if self
                .last_fsync_us
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                cost += self.fsync_us;
                metrics.inc_wal_fsyncs();
                metrics.add_io_writes(1);
            }
        }
        metrics.add_fsync_micros(cost as u64);
        (lsn, cost)
    }

    pub fn current_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Reset after a database reset.
    pub fn reset(&self) {
        self.last_fsync_us.store(u64::MAX, Ordering::Relaxed);
        self.segment_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_monotonic() {
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 5.0, 100.0);
        let (a, _) = wal.commit(100, &m);
        let (b, _) = wal.commit(100, &m);
        assert!(b > a);
    }

    #[test]
    fn no_group_commit_every_commit_fsyncs() {
        let m = ServerMetrics::new();
        let wal = Wal::new(0, 0.0, 100.0);
        for _ in 0..5 {
            let (_, cost) = wal.commit(0, &m);
            assert_eq!(cost, 100.0);
        }
        assert_eq!(m.snapshot().wal_fsyncs, 5);
    }

    #[test]
    fn group_commit_amortizes_fsync() {
        let m = ServerMetrics::new();
        // Huge window: only the first commit should fsync.
        let wal = Wal::new(60_000_000, 0.0, 100.0);
        let (_, first) = wal.commit(0, &m);
        assert_eq!(first, 100.0);
        for _ in 0..10 {
            let (_, cost) = wal.commit(0, &m);
            assert_eq!(cost, 0.0);
        }
        assert_eq!(m.snapshot().wal_fsyncs, 1);
    }

    #[test]
    fn bytes_cost_scales() {
        let m = ServerMetrics::new();
        let wal = Wal::new(60_000_000, 10.0, 0.0);
        let (_, c1) = wal.commit(1024, &m);
        let (_, c2) = wal.commit(4096, &m);
        assert!((c1 - 10.0).abs() < 1e-9);
        assert!((c2 - 40.0).abs() < 1e-9);
        assert_eq!(m.snapshot().wal_bytes, 5120);
    }

    #[test]
    fn segment_rotation_emits_journal_event() {
        let m = ServerMetrics::new();
        let j = Arc::new(EventJournal::new());
        let wal = Wal::new(0, 0.0, 10.0).with_journal(j.clone()).with_segment_bytes(1000);
        for _ in 0..5 {
            wal.commit(300, &m);
        }
        // 1500 bytes crosses at commit 4 (1200), remainder 200 + 300 = 500.
        assert_eq!(wal.segments_rotated(), 1);
        let events = j.all();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "wal_rotate");
        assert!(events[0].fields.iter().any(|(k, v)| *k == "segment" && v == "1"));
        assert!(m.snapshot().fsync_micros >= 50, "commit cost charged to fsync_us");
    }

    #[test]
    fn reset_forces_fsync_again() {
        let m = ServerMetrics::new();
        let wal = Wal::new(60_000_000, 0.0, 50.0);
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 50.0);
        wal.reset();
        let (_, c) = wal.commit(0, &m);
        assert_eq!(c, 50.0);
    }
}
