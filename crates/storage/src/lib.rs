//! `bp-storage`: the embedded transactional storage engine that stands in
//! for the real DBMSs (MySQL, PostgreSQL, Apache Derby, Oracle) the
//! BenchPress demo runs against.
//!
//! The engine provides real concurrency semantics — multigranularity strict
//! two-phase locking with wait-die deadlock avoidance, undo-log rollback, a
//! simulated WAL with group commit and a CLOCK buffer pool — plus a
//! [`personality::Personality`] cost model that makes different "DBMS
//! stages" respond differently to the same requested load, which is the
//! behaviour the game exposes to players.

pub mod bufferpool;
pub mod engine;
pub mod error;
pub mod lock;
pub mod metrics;
pub mod personality;
pub mod recovery;
pub mod schema;
pub mod table;
pub mod value;
pub mod wal;

pub use engine::{Database, Session};
pub use error::{Result, StorageError};
pub use lock::{LockManager, LockMode, LockTarget, TxnId};
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use personality::{DelayMode, Personality};
pub use recovery::{
    CheckpointStats, CrashPoint, RecoveryReport, RecoveryStats, RecoveryStatus,
};
pub use schema::{Column, IndexDef, TableSchema};
pub use table::{RowId, Table};
pub use value::{DataType, Row, Value};
