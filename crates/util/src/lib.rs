//! `bp-util`: shared substrate for the BenchPress / OLTP-Bench reproduction.
//!
//! This crate contains the dependency-free building blocks the rest of the
//! workspace is made of:
//!
//! - [`rng`]: deterministic PRNG plus the workload distributions
//!   (uniform, zipfian, scrambled-zipfian, exponential, normal, TPC-C NURand,
//!   weighted discrete mixtures);
//! - [`histogram`]: HDR-style log-linear latency histograms;
//! - [`timeseries`]: per-second throughput/latency windows and summary
//!   statistics;
//! - [`clock`]: the wall/virtual clock abstraction that lets the same
//!   workload-control logic run in real time or in deterministic simulation;
//! - [`sync`]: std-only `Mutex`/`RwLock`/`Condvar` wrappers with a
//!   `parking_lot`-style call-site API (guards returned directly, poison
//!   ignored) so the workspace builds with zero external dependencies;
//! - [`json`]: the JSON value model used by the control API;
//! - [`xml`]: the `config.xml` parser for OLTP-Bench style workload files;
//! - [`text`]: synthetic text generators for benchmark data loaders.

pub mod clock;
pub mod histogram;
pub mod json;
pub mod rng;
pub mod sync;
pub mod text;
pub mod timeseries;
pub mod xml;

pub use clock::{Clock, Micros, SharedClock, SimClock, WallClock, MICROS_PER_SEC};
pub use histogram::Histogram;
pub use json::Json;
pub use rng::{Discrete, NuRand, Rng, ScrambledZipf, Zipf};
pub use timeseries::{Summary, TimeSeries};
pub use xml::XmlNode;
