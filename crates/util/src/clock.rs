//! Clock abstraction: wall-clock time for the threaded executor, virtual
//! time for the deterministic discrete-event executor.
//!
//! All timestamps in the testbed are microseconds (`u64`) since an arbitrary
//! epoch (process start for the wall clock, zero for simulated clocks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Microseconds since the clock's epoch.
pub type Micros = u64;

pub const MICROS_PER_SEC: u64 = 1_000_000;
pub const MICROS_PER_MILLI: u64 = 1_000;

/// A source of time. Implementations must be cheap and thread-safe.
pub trait Clock: Send + Sync {
    /// Current time in microseconds since the clock's epoch.
    fn now(&self) -> Micros;

    /// Block the calling thread for the given duration.
    ///
    /// For simulated clocks this advances virtual time instead of blocking.
    fn sleep(&self, micros: Micros);

    /// Sleep until an absolute deadline; no-op if it already passed.
    fn sleep_until(&self, deadline: Micros) {
        let now = self.now();
        if deadline > now {
            self.sleep(deadline - now);
        }
    }
}

/// Real time, anchored at construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Micros {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sleep(&self, micros: Micros) {
        std::thread::sleep(Duration::from_micros(micros));
    }
}

/// A virtual clock advanced explicitly by a simulator.
///
/// `sleep` advances the clock immediately: the discrete-event executor is
/// single-threaded, so "sleeping" is simply time passing. Shared via `Arc` so
/// every component observes the same virtual time.
#[derive(Debug, Default)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    pub fn new() -> Arc<Self> {
        Arc::new(SimClock { now: AtomicU64::new(0) })
    }

    pub fn starting_at(t: Micros) -> Arc<Self> {
        Arc::new(SimClock { now: AtomicU64::new(t) })
    }

    /// Advance to an absolute time. Time never moves backwards.
    pub fn advance_to(&self, t: Micros) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }

    /// Advance by a delta.
    pub fn advance(&self, delta: Micros) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Micros {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep(&self, micros: Micros) {
        self.advance(micros);
    }
}

/// Shared handle to any clock.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructors.
pub fn wall_clock() -> SharedClock {
    Arc::new(WallClock::new())
}

pub fn sim_clock() -> (Arc<SimClock>, SharedClock) {
    let c = SimClock::new();
    (c.clone(), c as SharedClock)
}

/// Format a microsecond duration as a human-readable string.
pub fn fmt_micros(us: Micros) -> String {
    if us >= MICROS_PER_SEC {
        format!("{:.2}s", us as f64 / MICROS_PER_SEC as f64)
    } else if us >= MICROS_PER_MILLI {
        format!("{:.2}ms", us as f64 / MICROS_PER_MILLI as f64)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_sleep() {
        let c = WallClock::new();
        let a = c.now();
        c.sleep(2_000);
        assert!(c.now() - a >= 2_000);
    }

    #[test]
    fn sim_clock_advances() {
        let (sim, clock) = sim_clock();
        assert_eq!(clock.now(), 0);
        sim.advance(500);
        assert_eq!(clock.now(), 500);
        clock.sleep(1_000);
        assert_eq!(clock.now(), 1_500);
        sim.advance_to(1_000); // backwards move ignored
        assert_eq!(clock.now(), 1_500);
        sim.advance_to(2_000);
        assert_eq!(clock.now(), 2_000);
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let (sim, clock) = sim_clock();
        sim.advance_to(100);
        clock.sleep_until(50);
        assert_eq!(clock.now(), 100);
        clock.sleep_until(250);
        assert_eq!(clock.now(), 250);
    }

    #[test]
    fn fmt() {
        assert_eq!(fmt_micros(500), "500µs");
        assert_eq!(fmt_micros(1_500), "1.50ms");
        assert_eq!(fmt_micros(2_500_000), "2.50s");
    }
}
