//! Per-interval aggregation of timestamped samples.
//!
//! The statistics collector bins completed requests into fixed-width windows
//! (one second by default) to produce the throughput and latency series that
//! the monitoring view and the game's status updates consume.

use crate::clock::{Micros, MICROS_PER_SEC};

/// One aggregated window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start, in µs since epoch.
    pub start: Micros,
    /// Number of samples in the window.
    pub count: u64,
    /// Sum of sample values (e.g. latencies, µs).
    pub sum: u128,
    pub min: u64,
    pub max: u64,
}

impl Window {
    fn empty(start: Micros) -> Window {
        Window { start, count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A series of fixed-width windows, extended on demand.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    width: Micros,
    origin: Micros,
    windows: Vec<Window>,
}

impl TimeSeries {
    pub fn new(width: Micros) -> TimeSeries {
        assert!(width > 0);
        TimeSeries { width, origin: 0, windows: Vec::new() }
    }

    /// Per-second series (the default used for throughput plots).
    pub fn per_second() -> TimeSeries {
        TimeSeries::new(MICROS_PER_SEC)
    }

    pub fn width(&self) -> Micros {
        self.width
    }

    /// Record a sample with value `value` at time `t`.
    pub fn record(&mut self, t: Micros, value: u64) {
        let idx = ((t.saturating_sub(self.origin)) / self.width) as usize;
        if idx >= self.windows.len() {
            let mut start = self.origin + self.windows.len() as u64 * self.width;
            while self.windows.len() <= idx {
                self.windows.push(Window::empty(start));
                start += self.width;
            }
        }
        let w = &mut self.windows[idx];
        w.count += 1;
        w.sum += value as u128;
        w.min = w.min.min(value);
        w.max = w.max.max(value);
    }

    /// Count-only sample (throughput accounting).
    pub fn tick(&mut self, t: Micros) {
        self.record(t, 0);
    }

    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum()
    }

    /// Rate (samples per second) for each window.
    pub fn rates(&self) -> Vec<f64> {
        let per_window_to_per_sec = MICROS_PER_SEC as f64 / self.width as f64;
        self.windows.iter().map(|w| w.count as f64 * per_window_to_per_sec).collect()
    }

    /// Mean value per window (0.0 where empty).
    pub fn means(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.mean()).collect()
    }

    /// Merge another series into this one. Same width and origin (the
    /// sharded-stats path) merges window-for-window, losslessly. A
    /// mismatched layout — a cluster peer binning at a different width or
    /// origin — re-bins each of the other's non-empty windows into the slot
    /// covering its start time, so aggregate count/sum/min/max are exact
    /// and only sub-window timing is coarsened; nothing panics.
    pub fn merge(&mut self, other: &TimeSeries) {
        if self.width == other.width && self.origin == other.origin {
            if other.windows.len() > self.windows.len() {
                let mut start = self.origin + self.windows.len() as u64 * self.width;
                while self.windows.len() < other.windows.len() {
                    self.windows.push(Window::empty(start));
                    start += self.width;
                }
            }
            for (w, o) in self.windows.iter_mut().zip(&other.windows) {
                w.count += o.count;
                w.sum += o.sum;
                w.min = w.min.min(o.min);
                w.max = w.max.max(o.max);
            }
            return;
        }
        for o in &other.windows {
            if o.count == 0 {
                continue;
            }
            let idx = ((o.start.saturating_sub(self.origin)) / self.width) as usize;
            if idx >= self.windows.len() {
                let mut start = self.origin + self.windows.len() as u64 * self.width;
                while self.windows.len() <= idx {
                    self.windows.push(Window::empty(start));
                    start += self.width;
                }
            }
            let w = &mut self.windows[idx];
            w.count += o.count;
            w.sum += o.sum;
            w.min = w.min.min(o.min);
            w.max = w.max.max(o.max);
        }
    }

    /// Sum of counts in the last `n` complete windows before `now`.
    pub fn recent_rate(&self, now: Micros, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let current = ((now.saturating_sub(self.origin)) / self.width) as usize;
        let end = current.min(self.windows.len());
        let start = end.saturating_sub(n);
        let count: u64 = self.windows[start..end].iter().map(|w| w.count).sum();
        let span = (end - start).max(1) as f64 * self.width as f64 / MICROS_PER_SEC as f64;
        count as f64 / span
    }
}

/// Summary statistics over a slice of f64 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std_dev: var.sqrt(), min, max }
    }

    /// Coefficient of variation (jitter measure used by the tunnel test).
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Mean absolute error between two equal-length series, used to quantify
/// how closely the delivered throughput tracks the requested schedule.
pub fn mean_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_per_second() {
        let mut ts = TimeSeries::per_second();
        for i in 0..2_000u64 {
            ts.tick(i * 1_000); // 1 event per ms for 2 seconds
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.windows()[0].count, 1_000);
        assert_eq!(ts.windows()[1].count, 1_000);
        assert_eq!(ts.rates(), vec![1_000.0, 1_000.0]);
    }

    #[test]
    fn gaps_are_zero_windows() {
        let mut ts = TimeSeries::per_second();
        ts.tick(100);
        ts.tick(3 * MICROS_PER_SEC + 5);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.windows()[1].count, 0);
        assert_eq!(ts.windows()[2].count, 0);
        assert_eq!(ts.total(), 2);
    }

    #[test]
    fn window_stats() {
        let mut ts = TimeSeries::per_second();
        ts.record(10, 100);
        ts.record(20, 300);
        let w = ts.windows()[0];
        assert_eq!(w.count, 2);
        assert_eq!(w.mean(), 200.0);
        assert_eq!(w.min, 100);
        assert_eq!(w.max, 300);
    }

    #[test]
    fn recent_rate_window() {
        let mut ts = TimeSeries::per_second();
        // 100/s in seconds 0..5
        for s in 0..5u64 {
            for i in 0..100u64 {
                ts.tick(s * MICROS_PER_SEC + i * 10_000);
            }
        }
        let now = 5 * MICROS_PER_SEC;
        assert!((ts.recent_rate(now, 3) - 100.0).abs() < 1e-9);
        // Partial current window excluded.
        ts.tick(now + 1);
        assert!((ts.recent_rate(now + 2, 3) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = TimeSeries::per_second();
        a.record(10, 100);
        a.record(MICROS_PER_SEC + 10, 200);
        let mut b = TimeSeries::per_second();
        b.record(20, 300);
        b.record(2 * MICROS_PER_SEC + 20, 400);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.windows()[0].count, 2);
        assert_eq!(a.windows()[0].min, 100);
        assert_eq!(a.windows()[0].max, 300);
        assert_eq!(a.windows()[1].count, 1);
        assert_eq!(a.windows()[2].count, 1);
        assert_eq!(a.total(), 4);
        // Merging an empty series is a no-op.
        let before = a.windows().to_vec();
        a.merge(&TimeSeries::per_second());
        assert_eq!(a.windows(), &before[..]);
    }

    #[test]
    fn merge_empty_operands() {
        // Empty into empty stays empty.
        let mut a = TimeSeries::per_second();
        a.merge(&TimeSeries::per_second());
        assert!(a.is_empty());
        assert_eq!(a.total(), 0);
        // Populated into empty adopts the windows verbatim.
        let mut b = TimeSeries::per_second();
        b.record(10, 100);
        b.record(2 * MICROS_PER_SEC, 300);
        let mut empty = TimeSeries::per_second();
        empty.merge(&b);
        assert_eq!(empty.windows(), b.windows());
        // Empty-but-mismatched-width into populated is a no-op.
        let before = b.windows().to_vec();
        b.merge(&TimeSeries::new(250_000));
        assert_eq!(b.windows(), &before[..]);
    }

    #[test]
    fn merge_mismatched_width_rebins() {
        // A peer binning at 250ms folded into a per-second series: each
        // fine window lands in the second covering its start; totals,
        // sums and extrema are preserved exactly.
        let mut coarse = TimeSeries::per_second();
        coarse.record(100, 500);
        let mut fine = TimeSeries::new(250_000);
        fine.record(300_000, 10); // second 0
        fine.record(750_000, 90); // second 0
        fine.record(MICROS_PER_SEC + 10, 40); // second 1
        coarse.merge(&fine);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse.windows()[0].count, 3);
        assert_eq!(coarse.windows()[0].min, 10);
        assert_eq!(coarse.windows()[0].max, 500);
        assert_eq!(coarse.windows()[0].sum, 600);
        assert_eq!(coarse.windows()[1].count, 1);
        assert_eq!(coarse.total(), 4);
    }

    #[test]
    fn merge_mismatched_origin_rebins() {
        let mut a = TimeSeries::per_second();
        a.record(10, 1);
        // Same width, shifted origin: re-binned by window start time.
        let mut b = TimeSeries { width: MICROS_PER_SEC, origin: 500_000, windows: Vec::new() };
        b.record(500_000, 7); // b's window 0 starts at 0.5s -> a's second 0
        b.record(1_600_000, 9); // b's window 1 starts at 1.5s -> a's second 1
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.windows()[0].count, 2);
        assert_eq!(a.windows()[1].count, 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn summary_stats() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn mae() {
        assert_eq!(mean_abs_error(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
    }
}
