//! Std-only synchronization primitives with a `parking_lot`-style API.
//!
//! The workspace builds hermetically — no registry access, no external
//! crates — so the locking idiom the codebase was written against
//! (`parking_lot`: `.lock()` / `.read()` / `.write()` return the guard
//! directly, no poisoning) is provided here as thin wrappers over
//! `std::sync`. Poisoning is deliberately ignored: a panic while holding a
//! lock in a benchmark worker should not cascade into every other thread;
//! the data protected by these locks is statistics and catalog state whose
//! invariants are re-established per operation.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Monotonic slot handed to each thread on first use. Sharded collectors
/// (statistics, span recorders) index their shard arrays with
/// `thread_slot() % shards` so a given thread always lands on the same
/// shard of a given collector and two collectors agree on the mapping.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's process-wide shard slot (stable for the thread's
/// lifetime, dense from 0 in thread-creation order).
#[inline]
pub fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly and
/// never observes poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so a
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place, like
/// `parking_lot::Condvar` (the guard is passed `&mut`, not by value).
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.0.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly and
/// never observe poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Pads and aligns a value to 64 bytes so adjacent shards in a `Vec` never
/// share a cache line (false sharing is the whole failure mode sharded
/// statistics exist to avoid).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded(value)
    }

    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_ignores_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let r = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn condvar_wait_for_timeout() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // Guard is intact and usable after the wait.
        *g = true;
        assert!(*g);
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                let r = cv.wait_for(&mut ready, Duration::from_secs(5));
                assert!(!r.timed_out(), "should be woken, not timed out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn thread_slots_stable_and_distinct() {
        let mine = thread_slot();
        assert_eq!(mine, thread_slot(), "slot must be stable per thread");
        let other = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(mine, other, "each thread gets its own slot");
    }

    #[test]
    fn cache_padded_layout() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(p.into_inner(), 6);
    }
}
