//! Synthetic text generators used by benchmark data loaders
//! (customer names, emails, URLs, document text, TPC-C last names).

use crate::rng::Rng;

/// TPC-C clause 4.3.2.3 last-name syllables.
pub const LAST_NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Build the TPC-C last name for a number in `[0, 999]`.
pub fn tpcc_last_name(num: i64) -> String {
    let num = num.clamp(0, 999) as usize;
    let mut s = String::new();
    s.push_str(LAST_NAME_SYLLABLES[num / 100]);
    s.push_str(LAST_NAME_SYLLABLES[(num / 10) % 10]);
    s.push_str(LAST_NAME_SYLLABLES[num % 10]);
    s
}

const FIRST_NAMES: [&str; 24] = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Dana", "Djellel", "Andy", "Carlo",
];

const LAST_NAMES: [&str; 16] = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Pavlo", "Curino", "VanAken", "Difallah", "Bailis", "Gray",
];

const WORDS: [&str; 32] = [
    "lorem", "ipsum", "dolor", "sit", "amet", "consectetur", "adipiscing", "elit",
    "sed", "do", "eiusmod", "tempor", "incididunt", "labore", "dolore", "magna",
    "aliqua", "enim", "minim", "veniam", "quis", "nostrud", "exercitation", "ullamco",
    "laboris", "nisi", "aliquip", "commodo", "consequat", "duis", "aute", "irure",
];

const DOMAINS: [&str; 6] = [
    "example.com", "mail.test", "web.org", "inbox.net", "cmu.edu", "unifr.ch",
];

/// A plausible first name.
pub fn first_name(rng: &mut Rng) -> String {
    (*rng.choose(&FIRST_NAMES)).to_string()
}

/// A plausible last name.
pub fn last_name(rng: &mut Rng) -> String {
    (*rng.choose(&LAST_NAMES)).to_string()
}

/// A full name.
pub fn full_name(rng: &mut Rng) -> String {
    format!("{} {}", first_name(rng), last_name(rng))
}

/// An email address.
pub fn email(rng: &mut Rng) -> String {
    format!(
        "{}.{}{}@{}",
        first_name(rng).to_lowercase(),
        last_name(rng).to_lowercase(),
        rng.int_range(1, 9999),
        rng.choose(&DOMAINS)
    )
}

/// A URL.
pub fn url(rng: &mut Rng) -> String {
    format!(
        "http://{}/{}/{}",
        rng.choose(&DOMAINS),
        rng.choose(&WORDS),
        rng.int_range(1, 100_000)
    )
}

/// `n` lorem words joined by spaces.
pub fn words(rng: &mut Rng, n: usize) -> String {
    let mut out = String::with_capacity(n * 7);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(rng.choose::<&str>(&WORDS));
    }
    out
}

/// Paragraph-ish text of roughly `len` bytes (used for article/page bodies).
pub fn text(rng: &mut Rng, len: usize) -> String {
    let mut out = String::with_capacity(len + 16);
    while out.len() < len {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(rng.choose::<&str>(&WORDS));
    }
    out.truncate(len);
    out
}

/// US-style phone number string.
pub fn phone(rng: &mut Rng) -> String {
    format!(
        "{}-{}-{}",
        rng.nstring(3, 3),
        rng.nstring(3, 3),
        rng.nstring(4, 4)
    )
}

/// 2-letter state code.
pub fn state(rng: &mut Rng) -> String {
    const STATES: [&str; 12] = [
        "PA", "CA", "NY", "TX", "WA", "MA", "IL", "OH", "GA", "NC", "MI", "VA",
    ];
    (*rng.choose(&STATES)).to_string()
}

/// Zip code in TPC-C style (4 random digits + "11111").
pub fn zip(rng: &mut Rng) -> String {
    format!("{}11111", rng.nstring(4, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcc_names_match_spec() {
        assert_eq!(tpcc_last_name(0), "BARBARBAR");
        assert_eq!(tpcc_last_name(371), "PRICALLYOUGHT");
        assert_eq!(tpcc_last_name(999), "EINGEINGEING");
    }

    #[test]
    fn tpcc_name_clamped() {
        assert_eq!(tpcc_last_name(-5), tpcc_last_name(0));
        assert_eq!(tpcc_last_name(5000), tpcc_last_name(999));
    }

    #[test]
    fn generators_are_nonempty_and_deterministic() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        assert_eq!(email(&mut a), email(&mut b));
        assert_eq!(url(&mut a), url(&mut b));
        assert!(!full_name(&mut a).is_empty());
    }

    #[test]
    fn text_has_requested_length() {
        let mut rng = Rng::new(2);
        for len in [1usize, 10, 100, 1000] {
            assert_eq!(text(&mut rng, len).len(), len);
        }
    }

    #[test]
    fn words_count() {
        let mut rng = Rng::new(3);
        let w = words(&mut rng, 5);
        assert_eq!(w.split(' ').count(), 5);
    }

    #[test]
    fn phone_and_zip_shapes() {
        let mut rng = Rng::new(4);
        let p = phone(&mut rng);
        assert_eq!(p.len(), 12);
        let z = zip(&mut rng);
        assert_eq!(z.len(), 9);
        assert!(z.ends_with("11111"));
    }
}
