//! Log-linear latency histogram (HdrHistogram-style).
//!
//! The statistics collector records one latency sample per executed
//! transaction; the control API reports averages and percentiles per
//! transaction type (§2.2.4). An exact list of samples would be unbounded,
//! so we bucket values with bounded relative error: each power-of-two range
//! is split into `1 << sub_bucket_bits` linear sub-buckets, giving a worst
//! case relative error of `2^-sub_bucket_bits`.

/// A histogram of non-negative integer values (e.g. latencies in µs).
#[derive(Debug, Clone)]
pub struct Histogram {
    sub_bucket_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with the given precision (sub-bucket bits).
    /// 5 bits ≈ 3% worst-case relative error, plenty for latency reporting.
    pub fn new(sub_bucket_bits: u32) -> Self {
        assert!((1..=12).contains(&sub_bucket_bits));
        Histogram {
            sub_bucket_bits,
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default precision for latency recording.
    pub fn latency() -> Self {
        Histogram::new(5)
    }

    #[inline]
    fn bucket_index(&self, value: u64) -> usize {
        let sb = self.sub_bucket_bits;
        if value < (1 << sb) {
            return value as usize;
        }
        // Position of the highest set bit beyond the linear region.
        let exp = 63 - value.leading_zeros(); // >= sb
        let shift = exp - sb;
        let sub = (value >> shift) as usize & ((1usize << sb) - 1);
        // Each exponent range above the linear region contributes 2^sb slots.
        ((shift as usize + 1) << sb) + sub
    }

    /// Lower bound of the values mapped to bucket `idx`.
    fn bucket_low(&self, idx: usize) -> u64 {
        let sb = self.sub_bucket_bits as usize;
        if idx < (1 << sb) {
            return idx as u64;
        }
        let shift = (idx >> sb) - 1;
        let sub = idx & ((1 << sb) - 1);
        (((1 << sb) | sub) as u64) << shift
    }

    /// Representative (midpoint) value for bucket `idx`.
    fn bucket_mid(&self, idx: usize) -> u64 {
        let low = self.bucket_low(idx);
        let high = self.bucket_low(idx + 1);
        low + (high - low) / 2
    }

    /// Record a single value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 { 0 } else { self.min }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at the given percentile (0..=100). Returns 0 when empty.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        let target = ((pct / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Clamp the bucket representative into the observed range so
                // p100 == recorded max for single-value histograms.
                return self.bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merge another histogram into this one. Same-precision histograms
    /// merge bucket-for-bucket (lossless). A mismatched precision — e.g. a
    /// cluster peer built with different sub-bucket bits — re-buckets each
    /// of the other's non-empty buckets at its representative value, so the
    /// result stays within the coarser side's relative-error bound instead
    /// of panicking. Count, sum, min, and max are exact either way.
    pub fn merge(&mut self, other: &Histogram) {
        if other.total == 0 {
            return;
        }
        if self.sub_bucket_bits == other.sub_bucket_bits {
            if other.counts.len() > self.counts.len() {
                self.counts.resize(other.counts.len(), 0);
            }
            for (i, &c) in other.counts.iter().enumerate() {
                self.counts[i] += c;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let idx = self.bucket_index(other.bucket_mid(i));
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += c;
            }
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset all recorded data, keeping precision.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Iterate `(bucket_low, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (self.bucket_low(i), *c))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency()
    }
}

/// A ring of per-second histograms for sliding-window percentiles.
///
/// `record(t, v)` lands `v` in the slot for `t`'s wall second, lazily
/// clearing the slot the first time a new second reuses it — no timer
/// thread, no extra locking (callers already hold their stats-shard
/// lock). `window(now, w)` merges the last `w` seconds (including the
/// current, partial one) into a plain [`Histogram`] on demand, so the
/// read cost stays on the cold path.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    slots: Vec<WindowSlot>,
}

#[derive(Debug, Clone)]
struct WindowSlot {
    /// Wall second this slot currently holds. Slot 0 starts live (second
    /// 0 is a real second); every other slot starts as a stale holder of
    /// a second it can never have observed, so it reads as empty until
    /// first written.
    second: u64,
    hist: Histogram,
}

impl WindowedHistogram {
    /// A ring covering `capacity_s` seconds at latency precision.
    pub fn new(capacity_s: usize) -> WindowedHistogram {
        let capacity_s = capacity_s.max(2);
        WindowedHistogram {
            slots: (0..capacity_s)
                .map(|i| WindowSlot {
                    second: if i == 0 { 0 } else { u64::MAX },
                    hist: Histogram::latency(),
                })
                .collect(),
        }
    }

    /// Seconds of history the ring can hold.
    pub fn capacity_s(&self) -> usize {
        self.slots.len()
    }

    /// Record `value` at time `t_us` (µs since run start).
    pub fn record(&mut self, t_us: u64, value: u64) {
        let sec = t_us / 1_000_000;
        let idx = (sec % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.second != sec {
            slot.hist.clear();
            slot.second = sec;
        }
        slot.hist.record(value);
    }

    /// Merge the last `window_s` seconds (ending at `now_us`'s second,
    /// inclusive) into one histogram. A window larger than the recorded
    /// history simply returns everything still in the ring, so
    /// `window(now, huge)` equals the cumulative histogram for runs no
    /// longer than the ring capacity.
    pub fn window(&self, now_us: u64, window_s: usize) -> Histogram {
        let window_s = window_s.max(1) as u64;
        let now_sec = now_us / 1_000_000;
        let lo = now_sec.saturating_sub(window_s - 1);
        let mut acc = Histogram::latency();
        for slot in &self.slots {
            if slot.second >= lo && slot.second <= now_sec && !slot.hist.is_empty() {
                acc.merge(&slot.hist);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::latency();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.p50(), 1234);
        assert_eq!(h.percentile(100.0), 1234);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new(5);
        for v in 0..32 {
            h.record(v);
        }
        // Linear region is exact.
        assert_eq!(h.percentile(100.0 / 32.0), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new(5);
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            h.clear();
            h.record(v);
            let p = h.p50();
            let err = (p as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} p={p} err={err}");
        }
    }

    #[test]
    fn percentile_ordering() {
        let mut h = Histogram::latency();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.percentile(100.0));
        // p50 of 1..=10000 should be near 5000 (3% precision).
        let p50 = h.p50() as f64;
        assert!((p50 - 5000.0).abs() < 5000.0 * 0.05, "p50 {p50}");
    }

    #[test]
    fn mean_exact() {
        let mut h = Histogram::latency();
        h.record(100);
        h.record(200);
        h.record(300);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Histogram::latency();
        let mut b = Histogram::latency();
        let mut both = Histogram::latency();
        for i in 0..1000u64 {
            if i % 2 == 0 {
                a.record(i * 3);
            } else {
                b.record(i * 3);
            }
            both.record(i * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.p95(), both.p95());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
    }

    #[test]
    fn merge_empty_operands() {
        // Empty into empty.
        let mut a = Histogram::latency();
        a.merge(&Histogram::latency());
        assert!(a.is_empty());
        assert_eq!(a.min(), 0);
        assert_eq!(a.p99(), 0);
        // Empty into populated: a no-op, even across precisions.
        let mut a = Histogram::latency();
        a.record(123);
        a.merge(&Histogram::new(8));
        assert_eq!(a.count(), 1);
        assert_eq!(a.p50(), 123);
        // Populated into empty: the empty side adopts everything exactly.
        let mut b = Histogram::latency();
        b.record(77);
        b.record(99_000);
        let mut empty = Histogram::latency();
        empty.merge(&b);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), 77);
        assert_eq!(empty.max(), 99_000);
        assert_eq!(empty.mean(), b.mean());
    }

    #[test]
    fn merge_mismatched_precision_rebuckets() {
        // A coarse peer (2 bits ≈ 25% error) folded into a fine histogram:
        // count/sum/min/max exact, percentiles within the coarse bound.
        let mut fine = Histogram::new(8);
        let mut coarse = Histogram::new(2);
        for i in 0..1_000u64 {
            let v = 50 + i * 37;
            if i % 2 == 0 {
                fine.record(v);
            } else {
                coarse.record(v);
            }
        }
        let (csum, ccount) = (coarse.mean() * coarse.count() as f64, coarse.count());
        let fmin = fine.min().min(coarse.min());
        let fmax = fine.max().max(coarse.max());
        let premerge_sum = fine.mean() * fine.count() as f64;
        fine.merge(&coarse);
        assert_eq!(fine.count(), 500 + ccount);
        assert_eq!(fine.min(), fmin);
        assert_eq!(fine.max(), fmax);
        let total_mean = (premerge_sum + csum) / fine.count() as f64;
        assert!((fine.mean() - total_mean).abs() < 1e-6);
        // p50 of 50 + i*37 over i in 0..1000 is ~18550; coarse buckets
        // bound the representative error at 25%.
        let p50 = fine.p50() as f64;
        assert!((p50 - 18_550.0).abs() < 18_550.0 * 0.30, "p50 {p50}");
        // And the reverse direction (fine into coarse) must not panic and
        // keeps exact aggregates too.
        let mut coarse2 = Histogram::new(2);
        coarse2.record(10);
        let mut fine2 = Histogram::new(8);
        fine2.record(1_000_000);
        coarse2.merge(&fine2);
        assert_eq!(coarse2.count(), 2);
        assert_eq!(coarse2.min(), 10);
        assert_eq!(coarse2.max(), 1_000_000);
    }

    #[test]
    fn record_n() {
        let mut h = Histogram::latency();
        h.record_n(500, 10);
        assert_eq!(h.count(), 10);
        assert_eq!(h.mean(), 500.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::latency();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn iter_counts_sum_to_total() {
        let mut h = Histogram::latency();
        for i in 0..5000u64 {
            h.record(i * 7 % 100_000);
        }
        let sum: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, h.count());
    }

    const SEC: u64 = 1_000_000;

    #[test]
    fn windowed_empty_window_is_zero() {
        let w = WindowedHistogram::new(10);
        let h = w.window(5 * SEC, 3);
        assert!(h.is_empty());
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn windowed_includes_current_partial_second() {
        let mut w = WindowedHistogram::new(10);
        w.record(2 * SEC + 500_000, 777);
        let h = w.window(2 * SEC + 600_000, 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 777);
    }

    #[test]
    fn windowed_excludes_old_seconds() {
        let mut w = WindowedHistogram::new(10);
        w.record(0, 100); // second 0
        w.record(SEC, 200); // second 1
        w.record(4 * SEC, 300); // second 4
        // Window of 2s ending in second 4 covers seconds 3..=4 only.
        let h = w.window(4 * SEC + 1, 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 300);
        // Widen to 5s: everything.
        let h = w.window(4 * SEC + 1, 5);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn windowed_ring_rollover_reuses_slots() {
        let mut w = WindowedHistogram::new(4);
        // Fill seconds 0..4, then wrap into seconds 4 and 5 which reuse
        // the slots of seconds 0 and 1.
        for sec in 0..6u64 {
            w.record(sec * SEC, 1_000 + sec);
        }
        // Ring capacity is 4: only seconds 2..=5 survive.
        let h = w.window(5 * SEC, 100);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1_002);
        assert_eq!(h.max(), 1_005);
        // A 1s window sees only second 5.
        let h = w.window(5 * SEC, 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1_005);
    }

    #[test]
    fn windowed_huge_window_equals_cumulative() {
        let mut w = WindowedHistogram::new(60);
        let mut cumulative = Histogram::latency();
        for i in 0..5_000u64 {
            let t = i * 7_000; // 35s of samples
            let v = 100 + (i * 13) % 20_000;
            w.record(t, v);
            cumulative.record(v);
        }
        let h = w.window(35 * SEC, usize::MAX);
        assert_eq!(h.count(), cumulative.count());
        assert_eq!(h.mean(), cumulative.mean());
        assert_eq!(h.p50(), cumulative.p50());
        assert_eq!(h.p99(), cumulative.p99());
        assert_eq!(h.min(), cumulative.min());
        assert_eq!(h.max(), cumulative.max());
    }

    #[test]
    fn windowed_gap_then_resume() {
        let mut w = WindowedHistogram::new(8);
        w.record(0, 50);
        // Long silence, then activity far beyond one ring revolution.
        w.record(100 * SEC, 60);
        let h = w.window(100 * SEC, 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 60);
        // The stale second-0 slot must not leak into wide windows either:
        // second 0 is outside [99, 100] regardless of ring position.
        let h = w.window(100 * SEC, 8);
        assert_eq!(h.count(), 1);
    }
}
