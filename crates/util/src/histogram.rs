//! Log-linear latency histogram (HdrHistogram-style).
//!
//! The statistics collector records one latency sample per executed
//! transaction; the control API reports averages and percentiles per
//! transaction type (§2.2.4). An exact list of samples would be unbounded,
//! so we bucket values with bounded relative error: each power-of-two range
//! is split into `1 << sub_bucket_bits` linear sub-buckets, giving a worst
//! case relative error of `2^-sub_bucket_bits`.

/// A histogram of non-negative integer values (e.g. latencies in µs).
#[derive(Debug, Clone)]
pub struct Histogram {
    sub_bucket_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with the given precision (sub-bucket bits).
    /// 5 bits ≈ 3% worst-case relative error, plenty for latency reporting.
    pub fn new(sub_bucket_bits: u32) -> Self {
        assert!((1..=12).contains(&sub_bucket_bits));
        Histogram {
            sub_bucket_bits,
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default precision for latency recording.
    pub fn latency() -> Self {
        Histogram::new(5)
    }

    #[inline]
    fn bucket_index(&self, value: u64) -> usize {
        let sb = self.sub_bucket_bits;
        if value < (1 << sb) {
            return value as usize;
        }
        // Position of the highest set bit beyond the linear region.
        let exp = 63 - value.leading_zeros(); // >= sb
        let shift = exp - sb;
        let sub = (value >> shift) as usize & ((1usize << sb) - 1);
        // Each exponent range above the linear region contributes 2^sb slots.
        ((shift as usize + 1) << sb) + sub
    }

    /// Lower bound of the values mapped to bucket `idx`.
    fn bucket_low(&self, idx: usize) -> u64 {
        let sb = self.sub_bucket_bits as usize;
        if idx < (1 << sb) {
            return idx as u64;
        }
        let shift = (idx >> sb) - 1;
        let sub = idx & ((1 << sb) - 1);
        (((1 << sb) | sub) as u64) << shift
    }

    /// Representative (midpoint) value for bucket `idx`.
    fn bucket_mid(&self, idx: usize) -> u64 {
        let low = self.bucket_low(idx);
        let high = self.bucket_low(idx + 1);
        low + (high - low) / 2
    }

    /// Record a single value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 { 0 } else { self.min }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at the given percentile (0..=100). Returns 0 when empty.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        let target = ((pct / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Clamp the bucket representative into the observed range so
                // p100 == recorded max for single-value histograms.
                return self.bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Merge another histogram into this one. Precisions must match.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.sub_bucket_bits, other.sub_bucket_bits);
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset all recorded data, keeping precision.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Iterate `(bucket_low, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (self.bucket_low(i), *c))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::latency();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1234);
        assert_eq!(h.max(), 1234);
        assert_eq!(h.p50(), 1234);
        assert_eq!(h.percentile(100.0), 1234);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new(5);
        for v in 0..32 {
            h.record(v);
        }
        // Linear region is exact.
        assert_eq!(h.percentile(100.0 / 32.0), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new(5);
        for exp in 0..40u32 {
            let v = 1u64 << exp;
            h.clear();
            h.record(v);
            let p = h.p50();
            let err = (p as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} p={p} err={err}");
        }
    }

    #[test]
    fn percentile_ordering() {
        let mut h = Histogram::latency();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.percentile(100.0));
        // p50 of 1..=10000 should be near 5000 (3% precision).
        let p50 = h.p50() as f64;
        assert!((p50 - 5000.0).abs() < 5000.0 * 0.05, "p50 {p50}");
    }

    #[test]
    fn mean_exact() {
        let mut h = Histogram::latency();
        h.record(100);
        h.record(200);
        h.record(300);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Histogram::latency();
        let mut b = Histogram::latency();
        let mut both = Histogram::latency();
        for i in 0..1000u64 {
            if i % 2 == 0 {
                a.record(i * 3);
            } else {
                b.record(i * 3);
            }
            both.record(i * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.p95(), both.p95());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
    }

    #[test]
    fn record_n() {
        let mut h = Histogram::latency();
        h.record_n(500, 10);
        assert_eq!(h.count(), 10);
        assert_eq!(h.mean(), 500.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::latency();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn iter_counts_sum_to_total() {
        let mut h = Histogram::latency();
        for i in 0..5000u64 {
            h.record(i * 7 % 100_000);
        }
        let sum: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, h.count());
    }
}
