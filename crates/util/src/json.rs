//! Minimal JSON: value model, parser and serializer.
//!
//! The control API (§2.2.4) exchanges JSON request/response bodies, and the
//! game consumes JSON status updates. We implement the small subset of JSON
//! we need (full spec for values we produce; numbers parsed as f64).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve deterministic (sorted) key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Builder-style insertion; panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|f| {
            if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                Some(f as u64)
            } else {
                None
            }
        })
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { message: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Handle surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = if c >= 0xF0 {
                            4
                        } else if c >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let j = Json::obj()
            .set("name", "tpcc")
            .set("rate", 500u64)
            .set("active", true)
            .set("weights", vec![45.0, 43.0, 4.0, 4.0, 4.0])
            .set("note", Json::Null);
        let s = j.to_string();
        let back = Json::parse(&s).unwrap();
        assert_eq!(j, back);
    }

    #[test]
    fn parse_nested() {
        let j = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(j.get("c").unwrap().as_str(), Some("x"));
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert!(Json::parse("-1").unwrap().as_u64().is_none());
    }

    #[test]
    fn parse_escapes() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let j = Json::parse(r#""😀""#).unwrap();
        assert_eq!(j.as_str(), Some("😀"));
    }

    #[test]
    fn parse_unicode_passthrough() {
        let j = Json::parse("\"héllo — ∑\"").unwrap();
        assert_eq!(j.as_str(), Some("héllo — ∑"));
        let s = j.to_string();
        assert_eq!(Json::parse(&s).unwrap(), j);
    }

    #[test]
    fn errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("123x").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let j = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_serialized_without_fraction() {
        assert_eq!(Json::Num(500.0).to_string(), "500");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::obj());
        assert_eq!(Json::obj().to_string(), "{}");
    }
}
