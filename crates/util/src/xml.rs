//! Minimal XML parser for OLTP-Bench style `config.xml` workload files.
//!
//! Supports elements, attributes, text content, comments, CDATA and the XML
//! declaration — the subset used by benchmark configuration files. It is not
//! a validating parser and ignores DTDs, namespaces and processing
//! instructions other than the declaration.

use std::fmt;

/// An XML element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl XmlNode {
    pub fn new(name: &str) -> XmlNode {
        XmlNode { name: name.to_string(), attrs: Vec::new(), children: Vec::new(), text: String::new() }
    }

    /// Parse a document, returning the root element.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut p = XmlParser { bytes: input.as_bytes(), pos: 0 };
        p.skip_misc()?;
        let root = p.element()?;
        p.skip_misc()?;
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(root)
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child element with the given name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text.as_str())
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Parse the text of a named child as `T`.
    pub fn child_parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.child_text(name).and_then(|t| t.trim().parse().ok())
    }

    /// Serialize back to XML (pretty, for writing sample configs).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        if let Some(semi) = rest.find(';') {
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    if let Ok(cp) = u32::from_str_radix(&ent[2..], 16) {
                        if let Some(c) = char::from_u32(cp) {
                            out.push(c);
                        }
                    }
                }
                _ if ent.starts_with('#') => {
                    if let Ok(cp) = ent[1..].parse::<u32>() {
                        if let Some(c) = char::from_u32(cp) {
                            out.push(c);
                        }
                    }
                }
                _ => {
                    out.push('&');
                    out.push_str(ent);
                    out.push(';');
                }
            }
            rest = &rest[semi + 1..];
        } else {
            out.push_str(rest);
            rest = "";
        }
    }
    out.push_str(rest);
    out
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: &str) -> XmlError {
        XmlError { message: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match self.find(end) {
            Some(i) => {
                self.pos = i + end.len();
                Ok(())
            }
            None => Err(self.err(&format!("unterminated construct, expected '{end}'"))),
        }
    }

    fn find(&self, needle: &str) -> Option<usize> {
        let hay = &self.bytes[self.pos..];
        hay.windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|i| self.pos + i)
    }

    /// Skip whitespace, comments, declaration, doctype between elements.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in name"))?
            .to_string())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(node);
                    }
                    return Err(self.err("expected '>' after '/'"));
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == q {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in attribute"))?;
                    node.attrs.push((key, unescape(raw)));
                    self.pos += 1;
                }
                None => return Err(self.err("unexpected end inside tag")),
            }
        }

        // Content.
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched close tag: <{name}> vs </{close}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                node.text = text.trim().to_string();
                return Ok(node);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                let end = self.find("]]>").ok_or_else(|| self.err("unterminated CDATA"))?;
                text.push_str(
                    std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in CDATA"))?,
                );
                self.pos = end + 3;
            } else if self.peek() == Some(b'<') {
                node.children.push(self.element()?);
            } else {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos == self.bytes.len() {
                    return Err(self.err(&format!("unterminated element <{name}>")));
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in text"))?;
                text.push_str(&unescape(raw));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!-- OLTP-Bench style configuration -->
<parameters>
    <dbtype>mysql</dbtype>
    <scalefactor>2</scalefactor>
    <terminals>8</terminals>
    <works>
        <work>
            <time>60</time>
            <rate>500</rate>
            <weights>45,43,4,4,4</weights>
        </work>
        <work arrival="exponential">
            <time>30</time>
            <rate>unlimited</rate>
            <weights>100,0,0,0,0</weights>
        </work>
    </works>
</parameters>"#;

    #[test]
    fn parse_sample_config() {
        let root = XmlNode::parse(SAMPLE).unwrap();
        assert_eq!(root.name, "parameters");
        assert_eq!(root.child_text("dbtype"), Some("mysql"));
        assert_eq!(root.child_parse::<u32>("scalefactor"), Some(2));
        assert_eq!(root.child_parse::<u32>("terminals"), Some(8));
        let works = root.child("works").unwrap();
        let phases: Vec<_> = works.children_named("work").collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].child_text("rate"), Some("500"));
        assert_eq!(phases[1].attr("arrival"), Some("exponential"));
        assert_eq!(phases[1].child_text("rate"), Some("unlimited"));
    }

    #[test]
    fn self_closing_and_attrs() {
        let root = XmlNode::parse(r#"<a x="1" y='2'><b/><c z="&lt;&amp;&gt;"/></a>"#).unwrap();
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.attr("y"), Some("2"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].attr("z"), Some("<&>"));
    }

    #[test]
    fn entities_in_text() {
        let root = XmlNode::parse("<t>a &amp; b &lt;c&gt; &#65;&#x42;</t>").unwrap();
        assert_eq!(root.text, "a & b <c> AB");
    }

    #[test]
    fn cdata() {
        let root = XmlNode::parse("<q><![CDATA[SELECT * FROM t WHERE a < 5 && b > 1]]></q>").unwrap();
        assert_eq!(root.text, "SELECT * FROM t WHERE a < 5 && b > 1");
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(XmlNode::parse("<a><b></a></b>").is_err());
        assert!(XmlNode::parse("<a>").is_err());
        assert!(XmlNode::parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn roundtrip() {
        let root = XmlNode::parse(SAMPLE).unwrap();
        let xml = root.to_xml();
        let back = XmlNode::parse(&xml).unwrap();
        assert_eq!(root, back);
    }

    #[test]
    fn comments_inside_elements() {
        let root = XmlNode::parse("<a><!-- hi --><b>1</b><!-- bye --></a>").unwrap();
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.child_text("b"), Some("1"));
    }
}
