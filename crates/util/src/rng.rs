//! Deterministic pseudo-random number generation and the workload
//! distributions used throughout the testbed.
//!
//! OLTP-Bench's data generators and transaction-parameter generators rely on
//! uniform, zipfian, scrambled-zipfian, exponential and TPC-C `NURand`
//! distributions. We implement them here on top of a xoshiro256** generator
//! seeded via SplitMix64 so that every experiment in the repository is
//! reproducible from a single `u64` seed.

/// SplitMix64 step; used for seeding and as a cheap scrambler.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a 64-bit value to another 64-bit value (stateless scrambler).
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut s = v;
    splitmix64(&mut s)
}

/// Capped exponential backoff with deterministic ("equal") jitter.
///
/// `attempt` is zero-based: attempt 0 is the delay before the *first*
/// retry. The unjittered ceiling doubles each attempt
/// (`base_us << attempt`, saturating) and is clamped to `cap_us`; the
/// returned delay is drawn uniformly from `[ceiling/2, ceiling]` so
/// concurrently-aborted transactions spread out instead of stampeding the
/// same locks in lockstep. The draw is a pure function of
/// `(attempt, seed)` — same inputs, same delay, forever — which keeps
/// retry schedules reproducible across runs (callers derive `seed` from
/// the run seed and the request's identity).
///
/// `base_us == 0` disables backoff (returns 0 for every attempt).
pub fn next_backoff(attempt: u32, base_us: u64, cap_us: u64, seed: u64) -> u64 {
    if base_us == 0 {
        return 0;
    }
    let cap = cap_us.max(base_us);
    // Saturate on bit overflow (checked_shl only guards the shift amount).
    let exp = 1u64
        .checked_shl(attempt)
        .and_then(|m| base_us.checked_mul(m))
        .unwrap_or(u64::MAX);
    let ceiling = exp.min(cap);
    let half = ceiling / 2;
    // Span is at least 1, so the modulo is always valid.
    let span = ceiling - half + 1;
    half + mix64(seed ^ ((attempt as u64) << 32) ^ 0xC2B2_AE3D_27D4_EB4F) % span
}

/// A deterministic xoshiro256** PRNG.
///
/// Not cryptographically secure; chosen for speed, quality and tiny state.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child generator (stream splitting).
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ mix64(salt))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    #[inline]
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_range: lo {lo} > hi {hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.bounded(span) as i64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection-free multiply-shift with a correction loop.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.bounded(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// Used for exponential inter-arrival times in the rate controller
    /// (§2.2.1 of the paper).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Sample from a normal distribution via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Random alphanumeric string of length in `[min_len, max_len]`
    /// (TPC-C "a-string").
    pub fn astring(&mut self, min_len: usize, max_len: usize) -> String {
        const ALPHA: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let len = self.int_range(min_len as i64, max_len as i64) as usize;
        (0..len).map(|_| ALPHA[self.index(ALPHA.len())] as char).collect()
    }

    /// Random numeric string of length in `[min_len, max_len]`
    /// (TPC-C "n-string").
    pub fn nstring(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.int_range(min_len as i64, max_len as i64) as usize;
        (0..len).map(|_| (b'0' + self.bounded(10) as u8) as char).collect()
    }
}

/// TPC-C non-uniform random, `NURand(A, x, y)` (clause 2.1.6).
///
/// `c` is the per-run constant; the standard requires particular relations
/// between load-time and run-time constants, which callers may enforce.
#[derive(Debug, Clone, Copy)]
pub struct NuRand {
    pub a: i64,
    pub c: i64,
}

impl NuRand {
    pub fn new(a: i64, c: i64) -> Self {
        NuRand { a, c }
    }

    pub fn sample(&self, rng: &mut Rng, x: i64, y: i64) -> i64 {
        let r1 = rng.int_range(0, self.a);
        let r2 = rng.int_range(x, y);
        (((r1 | r2) + self.c) % (y - x + 1)) + x
    }
}

/// Zipfian distribution over `[0, n)` with exponent `theta`, as used by YCSB.
///
/// Uses the Gray et al. rejection-free inversion method with a precomputed
/// zeta value, so sampling is O(1).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipf { n, theta, alpha, zeta_n, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; only run at construction. Cap the exact sum and
        // approximate the tail with an integral for very large n.
        const EXACT: u64 = 1_000_000;
        let m = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=m {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > m {
            // integral of x^-theta from m to n
            let t = 1.0 - theta;
            sum += ((n as f64).powf(t) - (m as f64).powf(t)) / t;
        }
        sum
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u) - self.eta + 1.0).powf(self.alpha);
        let idx = (self.n as f64 * v) as u64;
        idx.min(self.n - 1)
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Grow the domain (used by YCSB inserts); recomputes zeta incrementally
    /// only when the domain actually changed.
    pub fn resize(&mut self, n: u64) {
        if n != self.n {
            *self = Zipf::new(n, self.theta);
            let _ = self.zeta2; // keep field used
        }
    }
}

/// Scrambled zipfian: zipfian ranks hashed over the full domain so that the
/// popular items are spread out (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipf { inner: Zipf::new(n, theta) }
    }

    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let rank = self.inner.sample(rng);
        mix64(rank) % self.inner.n()
    }
}

/// Weighted discrete distribution over `0..weights.len()`.
///
/// This is the transaction-mixture sampler: workers draw the next transaction
/// type from the current mixture (§2.2.2). Weights need not sum to anything
/// in particular; they are normalized internally.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "discrete distribution needs >= 1 weight");
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect::<Vec<_>>();
        Discrete { cumulative }
    }

    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in cumulative"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of index `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.int_range(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.int_range(3, 3), 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_uniformity_rough() {
        let mut rng = Rng::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.bounded(10) as usize] += 1;
        }
        for c in counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "count {c}");
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(5);
        let mean = 250.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < mean * 0.02, "mean {got}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(6);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_skew() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mut head = 0usize;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 items get a large share.
        assert!(head as f64 / n as f64 > 0.3, "head share {}", head as f64 / n as f64);
    }

    #[test]
    fn zipf_zero_theta_is_uniformish() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = Rng::new(4);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 2, "max {max} min {min}");
    }

    #[test]
    fn zipf_in_domain() {
        let zipf = Zipf::new(10, 0.9);
        let mut rng = Rng::new(8);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn scrambled_zipf_spreads_head() {
        let sz = ScrambledZipf::new(1_000_000, 0.99);
        let mut rng = Rng::new(10);
        // The most popular items should not be concentrated at low ids.
        let low = (0..10_000)
            .filter(|_| sz.sample(&mut rng) < 1_000)
            .count();
        assert!(low < 500, "low-id share too big: {low}");
    }

    #[test]
    fn discrete_probabilities() {
        let d = Discrete::new(&[45.0, 43.0, 4.0, 4.0, 4.0]);
        let mut rng = Rng::new(12);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|c| *c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.45).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 0.43).abs() < 0.01, "{freqs:?}");
        assert!((freqs[2] - 0.04).abs() < 0.005, "{freqs:?}");
    }

    #[test]
    fn discrete_zero_weight_never_sampled() {
        let d = Discrete::new(&[1.0, 0.0, 1.0]);
        let mut rng = Rng::new(13);
        for _ in 0..10_000 {
            assert_ne!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn nurand_in_range() {
        let nu = NuRand::new(255, 123);
        let mut rng = Rng::new(14);
        for _ in 0..10_000 {
            let v = nu.sample(&mut rng, 0, 999);
            assert!((0..=999).contains(&v));
        }
    }

    #[test]
    fn nurand_nonuniform() {
        let nu = NuRand::new(255, 42);
        let mut rng = Rng::new(15);
        let mut counts = vec![0usize; 1000];
        for _ in 0..200_000 {
            counts[nu.sample(&mut rng, 0, 999) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // NURand is decidedly non-uniform.
        assert!(max > min * 1.5);
    }

    #[test]
    fn astring_nstring() {
        let mut rng = Rng::new(16);
        for _ in 0..100 {
            let a = rng.astring(8, 16);
            assert!((8..=16).contains(&a.len()));
            assert!(a.chars().all(|c| c.is_ascii_alphanumeric()));
            let n = rng.nstring(4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Rng::new(99);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn backoff_exact_sequence() {
        // Pins the exact schedule so retry timing is reproducible across
        // releases: any change to the jitter math is a deliberate,
        // test-visible event.
        let seq: Vec<u64> = (0..6).map(|a| next_backoff(a, 100, 10_000, 42)).collect();
        assert_eq!(seq, vec![69, 124, 376, 645, 904, 1876]);
        let other_seed: Vec<u64> = (0..6).map(|a| next_backoff(a, 100, 10_000, 43)).collect();
        assert_eq!(other_seed, vec![58, 132, 315, 746, 880, 3029]);
        assert_ne!(seq, other_seed);
    }

    #[test]
    fn backoff_deterministic_and_bounded() {
        for seed in 0..200u64 {
            for attempt in 0..20u32 {
                let d = next_backoff(attempt, 500, 50_000, seed);
                assert_eq!(d, next_backoff(attempt, 500, 50_000, seed), "pure function");
                let ceiling = (500u64 << attempt.min(30)).min(50_000);
                assert!(d >= ceiling / 2, "attempt {attempt}: {d} < {}", ceiling / 2);
                assert!(d <= ceiling, "attempt {attempt}: {d} > {ceiling}");
            }
        }
    }

    #[test]
    fn backoff_caps_and_saturates() {
        // Past the cap every attempt draws from [cap/2, cap].
        for attempt in [10u32, 31, 63, 64, 65, 1000] {
            let d = next_backoff(attempt, 1_000, 8_000, 7);
            assert!((4_000..=8_000).contains(&d), "attempt {attempt}: {d}");
        }
        // cap < base is treated as cap == base.
        let d = next_backoff(0, 1_000, 10, 7);
        assert!((500..=1_000).contains(&d));
        // base 0 disables backoff entirely.
        assert_eq!(next_backoff(5, 0, 10_000, 7), 0);
    }
}
