//! The `Workload` abstraction: what a ported benchmark must provide.
//!
//! Mirrors OLTP-Bench's benchmark modules: a schema (DDL), a data loader
//! parameterized by scale factor, and a set of transaction types with
//! *transaction control code* (parameterized statements executed inside an
//! explicit transaction). `bp-workloads` implements this trait for the 15
//! benchmarks of Table 1.

use bp_sql::{Connection, Result as SqlResult};
use bp_util::rng::Rng;

/// Table 1 groups benchmarks into three classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkClass {
    Transactional,
    WebOriented,
    FeatureTesting,
}

impl BenchmarkClass {
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkClass::Transactional => "Transactional",
            BenchmarkClass::WebOriented => "Web-Oriented",
            BenchmarkClass::FeatureTesting => "Feature Testing",
        }
    }
}

/// One transaction type of a benchmark (e.g. TPC-C NewOrder).
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionType {
    pub name: &'static str,
    /// Weight in the benchmark's default mixture.
    pub default_weight: f64,
    /// Whether the transaction only reads (drives the read-only preset).
    pub read_only: bool,
    /// Rough relative service cost, used by the analytic capacity model.
    pub relative_cost: f64,
}

impl TransactionType {
    pub fn new(name: &'static str, default_weight: f64, read_only: bool) -> TransactionType {
        TransactionType { name, default_weight, read_only, relative_cost: 1.0 }
    }

    pub fn with_cost(mut self, cost: f64) -> TransactionType {
        self.relative_cost = cost;
        self
    }
}

/// What the loader produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSummary {
    pub tables: usize,
    pub rows: u64,
}

/// Outcome of one transaction-control-code invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed successfully.
    Committed,
    /// The benchmark's own logic aborted (e.g. TPC-C's 1% NewOrder
    /// rollback); counted separately from lock-conflict aborts.
    UserAborted,
}

/// A benchmark that can be driven by the testbed.
pub trait Workload: Send + Sync {
    /// Short identifier ("tpcc", "ycsb", ...).
    fn name(&self) -> &'static str;

    /// Table 1 class.
    fn class(&self) -> BenchmarkClass;

    /// Table 1 application domain.
    fn domain(&self) -> &'static str;

    /// Transaction types; index order is the mixture's weight order.
    fn transaction_types(&self) -> Vec<TransactionType>;

    /// Create tables and indexes.
    fn create_schema(&self, conn: &mut Connection) -> SqlResult<()>;

    /// Populate with data; `scale` scales the database size.
    fn load(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary>;

    /// Execute one transaction of type `txn_idx` (index into
    /// `transaction_types`). Must run inside its own transaction and leave
    /// the connection idle (committed or rolled back) on return.
    fn execute(&self, txn_idx: usize, conn: &mut Connection, rng: &mut Rng) -> SqlResult<TxnOutcome>;

    /// Convenience: full setup (schema + load).
    fn setup(&self, conn: &mut Connection, scale: f64, rng: &mut Rng) -> SqlResult<LoadSummary> {
        self.create_schema(conn)?;
        self.load(conn, scale, rng)
    }

    /// Default mixture weights in `transaction_types` order.
    fn default_weights(&self) -> Vec<f64> {
        self.transaction_types().iter().map(|t| t.default_weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(BenchmarkClass::Transactional.label(), "Transactional");
        assert_eq!(BenchmarkClass::WebOriented.label(), "Web-Oriented");
        assert_eq!(BenchmarkClass::FeatureTesting.label(), "Feature Testing");
    }

    #[test]
    fn txn_type_builder() {
        let t = TransactionType::new("NewOrder", 45.0, false).with_cost(2.5);
        assert_eq!(t.relative_cost, 2.5);
        assert!(!t.read_only);
    }
}
