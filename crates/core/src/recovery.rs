//! The recovery supervisor: a watchdog thread that restarts a crashed
//! storage engine and takes periodic checkpoints.
//!
//! The storage engine never recovers itself — a crash (injected via the
//! chaos layer's `ServerCrash` fault or, in a real deployment, a process
//! kill) leaves every operation failing with the retryable
//! `StorageError::Crashed` until *someone* runs [`Database::recover`].
//! That someone is this supervisor: armed via `POST /recovery`, it polls
//! the crashed flag, replays the redo log when the flag trips, and takes
//! periodic checkpoints so replay stays short. Client-side resilience
//! (breaker + retry budget) rides through the outage; the workload resumes
//! as soon as recovery completes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bp_storage::Database;
use bp_util::sync::Mutex;

/// Supervisor tuning. The defaults poll fast enough that a crash costs
/// milliseconds of downtime, and checkpoint rarely enough that the
/// checkpointer never competes with the workload for the redo mutex.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// How often the watchdog checks the crashed flag, µs.
    pub poll_interval_us: u64,
    /// Periodic checkpoint cadence, µs; `0` disables the checkpointer
    /// (recovery then replays from the last explicit checkpoint, or the
    /// whole log).
    pub checkpoint_interval_us: u64,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig { poll_interval_us: 5_000, checkpoint_interval_us: 2_000_000 }
    }
}

/// Shared supervisor state: config, liveness, and loop counters. One per
/// controller lineage (all clones share it), same pattern as `SloHandle`.
pub struct RecoveryHandle {
    cfg: Mutex<Option<RecoveryConfig>>,
    active: AtomicBool,
    /// Bumped on every start/stop; a running loop exits when its epoch is
    /// stale, so re-`POST /recovery` cleanly replaces the old watchdog.
    epoch: AtomicU64,
    recoveries_run: AtomicU64,
    checkpoints_run: AtomicU64,
    ticks: AtomicU64,
}

impl Default for RecoveryHandle {
    fn default() -> RecoveryHandle {
        RecoveryHandle::new()
    }
}

impl RecoveryHandle {
    pub fn new() -> RecoveryHandle {
        RecoveryHandle {
            cfg: Mutex::new(None),
            active: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            recoveries_run: AtomicU64::new(0),
            checkpoints_run: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn config(&self) -> Option<RecoveryConfig> {
        self.cfg.lock().clone()
    }

    /// Recoveries this supervisor has executed (distinct from the
    /// engine-side `bp_recovery_recoveries_total`, which also counts
    /// manual `Database::recover` calls).
    pub fn recoveries_run(&self) -> u64 {
        self.recoveries_run.load(Ordering::Relaxed)
    }

    pub fn checkpoints_run(&self) -> u64 {
        self.checkpoints_run.load(Ordering::Relaxed)
    }

    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Arm: store the config, mark active, bump the epoch. Returns the new
    /// epoch for the loop to hold.
    pub(crate) fn arm(&self, cfg: &RecoveryConfig) -> u64 {
        *self.cfg.lock() = Some(cfg.clone());
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.active.store(true, Ordering::SeqCst);
        epoch
    }

    pub(crate) fn disarm(&self) {
        self.active.store(false, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
}

/// The watchdog body. Runs on its own thread ("bp-recovery"); exits when
/// disarmed or replaced (stale epoch).
pub(crate) fn recovery_loop(
    db: Arc<Database>,
    handle: Arc<RecoveryHandle>,
    cfg: RecoveryConfig,
    epoch: u64,
) {
    let poll = Duration::from_micros(cfg.poll_interval_us.max(100));
    let mut last_checkpoint = Instant::now();
    loop {
        if !handle.is_active() || handle.epoch() != epoch {
            return;
        }
        if db.is_crashed() {
            // `recover()` journals recovery_begin/recovery_complete and
            // bumps the engine-side stats; the handle only counts that this
            // particular watchdog did the work.
            let _ = db.recover();
            handle.recoveries_run.fetch_add(1, Ordering::Relaxed);
            // A fresh checkpoint right after recovery bounds the next
            // replay to the post-crash tail.
            if db.checkpoint().is_some() {
                handle.checkpoints_run.fetch_add(1, Ordering::Relaxed);
            }
            last_checkpoint = Instant::now();
        } else if cfg.checkpoint_interval_us > 0
            && last_checkpoint.elapsed().as_micros() as u64 >= cfg.checkpoint_interval_us
        {
            if db.checkpoint().is_some() {
                handle.checkpoints_run.fetch_add(1, Ordering::Relaxed);
            }
            last_checkpoint = Instant::now();
        }
        handle.ticks.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_arm_disarm_epochs() {
        let h = RecoveryHandle::new();
        assert!(!h.is_active());
        assert_eq!(h.config(), None);
        let e1 = h.arm(&RecoveryConfig::default());
        assert!(h.is_active());
        assert_eq!(h.epoch(), e1);
        assert_eq!(h.config(), Some(RecoveryConfig::default()));
        h.disarm();
        assert!(!h.is_active());
        assert!(h.epoch() > e1, "disarm invalidates the running loop");
        let e2 = h.arm(&RecoveryConfig { poll_interval_us: 1_000, checkpoint_interval_us: 0 });
        assert!(e2 > e1);
    }
}
